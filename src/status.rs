//! The scenario behind `bistro status`: a seeded, fully simulated run
//! whose health snapshot is byte-identical for the same seed.
//!
//! There is no long-running daemon to query, so `status` demonstrates
//! the observability surface the way the experiments do — by driving a
//! server deterministically (SimClock + seeded fault plan) and rendering
//! its [`Server::status_json`] / [`Server::status_text`] at the end. The
//! scenario is E5b-flavoured: one subscriber link is completely dead, so
//! the retry budget runs out and the `retry-exhaustion` telemetry alarm
//! demonstrably fires into the event log; an unclassifiable file
//! exercises the `ingest.unknown` path as well.

use crate::base::{Clock, SimClock, TimePoint, TimeSpan};
use crate::config::parse_config;
use crate::server::Server;
use crate::telemetry::Json;
use crate::transport::{FaultPlan, FaultSpec, LinkSpec, RetryPolicy, SimNetwork, SubscriberClient};
use crate::vfs::MemFs;
use std::sync::Arc;

const START: TimePoint = TimePoint::from_secs(1_285_372_800);

const CONFIG: &str = r#"
    feed F { pattern "f_%i.csv"; }
    subscriber alpha { endpoint "alpha"; subscribe F; delivery push; }
    subscriber beta  { endpoint "beta";  subscribe F; delivery push; }
"#;

/// Drive the demo scenario to completion and hand back the server so
/// callers can render whichever status form they want. `workers` sizes
/// the parallel ingest pool and `group` sets the WAL group-commit flush
/// knob; by the `deposit_batch` determinism contract the returned
/// server's status snapshot is byte-identical for any worker count *and*
/// any group size.
pub fn demo_server(seed: u64, workers: usize, group: usize) -> Server {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 1_000_000,
        latency: TimeSpan::from_millis(10),
    }));
    // mild loss everywhere, and a dead link to alpha: its deliveries
    // exhaust the retry policy and trip the retry-exhaustion alarm
    net.install_fault_plan(FaultPlan {
        seed,
        default_faults: FaultSpec::lossy(0.2, 0.1),
        link_faults: vec![(
            "b".to_string(),
            "alpha".to_string(),
            FaultSpec::lossy(1.0, 0.0),
        )],
        flaps: Vec::new(),
    });

    let policy = RetryPolicy {
        base_timeout: TimeSpan::from_secs(2),
        backoff: 2,
        max_timeout: TimeSpan::from_secs(8),
        max_attempts: 3,
        jitter: 0.1,
    };
    let mut server = Server::new("b", parse_config(CONFIG).unwrap(), clock.clone(), store)
        .unwrap()
        .with_network(net.clone())
        .with_reliable_delivery(policy, seed)
        .with_workers(workers)
        .with_commit_group(group);
    let mut alpha = SubscriberClient::new("alpha", "b");
    let mut beta = SubscriberClient::new("beta", "b");

    for round in 0..40u64 {
        clock.advance(TimeSpan::from_secs(1));
        let now = clock.now();
        if round < 6 {
            // a burst of four poller files per round, ingested through
            // the batch entry point so the worker pool actually fans out
            let mut batch: Vec<(String, Vec<u8>)> = (0..4)
                .map(|k| {
                    (
                        format!("f_{}.csv", round * 10 + k),
                        b"payload-bytes".to_vec(),
                    )
                })
                .collect();
            if round == 3 {
                // a name no feed matches: parked for the analyzer
                batch.push(("mystery_3.dat".to_string(), b"???".to_vec()));
            }
            server.deposit_batch(batch).unwrap();
        }
        alpha.poll_notifications(&net, now);
        beta.poll_notifications(&net, now);
        server.poll_network().unwrap();
        server.retry_tick().unwrap();
        server.tick();
    }
    server
}

/// The `bistro status --json` document for `seed`.
pub fn status_json(seed: u64, workers: usize, group: usize) -> Json {
    demo_server(seed, workers, group).status_json()
}

/// The human-readable `bistro status` report for `seed`.
pub fn status_text(seed: u64, workers: usize, group: usize) -> String {
    demo_server(seed, workers, group).status_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::log::LogLevel;
    use crate::server::DEFAULT_COMMIT_GROUP;

    #[test]
    fn demo_fires_retry_exhaustion_alarm_into_event_log() {
        let server = demo_server(7, 1, DEFAULT_COMMIT_GROUP);
        let alarms = server.event_log().alarms();
        assert!(
            alarms
                .iter()
                .any(|e| e.component == "telemetry" && e.message.contains("retry-exhaustion")),
            "no telemetry alarm in {alarms:?}"
        );
        // the underlying metric agrees
        assert!(
            server
                .telemetry()
                .counter_value("reliable.exhausted")
                .unwrap()
                >= 1
        );
        assert!(server.event_log().count(LogLevel::Alarm) > 0);
    }

    #[test]
    fn same_seed_renders_byte_identical_json() {
        let a = status_json(42, 1, DEFAULT_COMMIT_GROUP).render();
        let b = status_json(42, 1, DEFAULT_COMMIT_GROUP).render();
        assert_eq!(a, b);
        assert!(a.contains("\"delivery.receipts\""), "{a}");
    }

    #[test]
    fn worker_count_does_not_change_the_snapshot() {
        let reference = status_json(42, 1, DEFAULT_COMMIT_GROUP).render();
        for workers in [2, 4, 8] {
            assert_eq!(
                status_json(42, workers, DEFAULT_COMMIT_GROUP).render(),
                reference,
                "workers={workers}"
            );
        }
        // the fan-out itself is visible in the separate pool registry
        let server = demo_server(42, 4, DEFAULT_COMMIT_GROUP);
        assert!(
            server
                .pool_telemetry()
                .counter_value("pool.batches")
                .unwrap()
                >= 6
        );
        assert!(
            server
                .pool_telemetry()
                .counter_value("pool.worker3.files")
                .unwrap()
                >= 1
        );
    }

    #[test]
    fn commit_group_does_not_change_the_snapshot() {
        let reference = status_json(42, 1, 1).render();
        for group in [2, 7, DEFAULT_COMMIT_GROUP, 1024] {
            assert_eq!(
                status_json(42, 1, group).render(),
                reference,
                "group={group}"
            );
        }
        // the batching itself is visible in the separate pool registry:
        // with group ≥ batch size, one physical append per 4-file batch
        let server = demo_server(42, 1, DEFAULT_COMMIT_GROUP);
        let appends = server
            .pool_telemetry()
            .counter_value("wal.physical_appends")
            .unwrap();
        assert!(appends >= 6, "one grouped append per batch: {appends}");
        let server1 = demo_server(42, 1, 1);
        assert!(
            server1
                .pool_telemetry()
                .counter_value("wal.physical_appends")
                .unwrap()
                > appends,
            "group=1 degenerates to per-record appends"
        );
    }
}
