//! `bistro` — command-line companion for the Bistro feed manager.
//!
//! ```text
//! bistro check <config>             validate a configuration file
//! bistro render <config>            print the canonical form of a configuration
//! bistro classify <config> <name>…  show which feeds the given filenames match
//! bistro discover <dir> [min]       run new-feed discovery over a real directory
//! bistro analyze <config> <dir>     full analyzer pass: classify a directory,
//!                                   then report unknowns, suggestions, drift
//! bistro status [--json] [--seed N] [--workers W] [--group G]
//!                                   one-screen health report from the seeded
//!                                   demo scenario (same seed → same bytes,
//!                                   for any ingest worker count W and any
//!                                   WAL group-commit size G)
//! ```

use bistro::analyzer::{infer_schema, suggest_groups, FeedDiscoverer, FnDetector};
use bistro::config::parse_config;
use bistro::server::Classifier;
use bistro::vfs::{walk_files, DiskFs, FileStore};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("discover") => cmd_discover(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        _ => {
            eprintln!(
                "usage: bistro <check|render|classify|discover|analyze|status> …\n\
                 \n\
                 bistro check <config>             validate a configuration file\n\
                 bistro render <config>            print the canonical form\n\
                 bistro classify <config> <name>…  match filenames against feeds\n\
                 bistro discover <dir> [min]       suggest feed definitions for a directory\n\
                 bistro analyze <config> <dir>     classify a directory and report drift\n\
                 bistro status [--json] [--seed N] [--workers W] [--group G]\n\
                 \u{20}                                 health report from the seeded demo run"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_config(path: &str) -> Result<bistro::config::Config, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_config(&src).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: bistro check <config>")?;
    let cfg = load_config(path)?;
    println!(
        "ok: {} feeds, {} groups, {} subscribers",
        cfg.feeds.len(),
        cfg.groups.len(),
        cfg.subscribers.len()
    );
    for sub in &cfg.subscribers {
        let feeds = cfg.subscriber_feeds(&sub.name).map_err(|e| e.to_string())?;
        println!("  subscriber {} receives {} feeds", sub.name, feeds.len());
    }
    Ok(())
}

fn cmd_render(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: bistro render <config>")?;
    print!("{}", load_config(path)?.to_source());
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let (path, names) = args
        .split_first()
        .ok_or("usage: bistro classify <config> <name>…")?;
    if names.is_empty() {
        return Err("no filenames given".to_string());
    }
    let cfg = load_config(path)?;
    let classifier = Classifier::compile(&cfg);
    for name in names {
        let feeds = classifier.feeds_for(name);
        if feeds.is_empty() {
            println!("{name}: (unknown feed)");
        } else {
            println!("{name}: {}", feeds.join(", "));
        }
    }
    Ok(())
}

fn cmd_discover(args: &[String]) -> Result<(), String> {
    let dir = args
        .first()
        .ok_or("usage: bistro discover <dir> [min-support]")?;
    let min_support: usize = args
        .get(1)
        .map(|s| s.parse().map_err(|_| format!("bad min-support: {s}")))
        .transpose()?
        .unwrap_or(3);

    let store = DiskFs::open(dir).map_err(|e| e.to_string())?;
    let files = walk_files(&store, "").map_err(|e| e.to_string())?;
    if files.is_empty() {
        return Err(format!("{dir}: no files found"));
    }
    let mut disc = FeedDiscoverer::new();
    for f in &files {
        disc.observe(f);
    }
    let suggestions = disc.suggestions(min_support);
    println!(
        "{} files → {} suggested feeds (min support {min_support}):\n",
        files.len(),
        suggestions.len()
    );
    for s in &suggestions {
        println!("feed ? {{");
        println!("    pattern \"{}\";", s.pattern.text().replace('"', "\\\""));
        println!("    # support {} files; {}", s.support, s.description);
        if let Some(p) = s.period {
            println!("    # inferred period {p}");
        }
        if let Some(n) = s.sources {
            println!("    # inferred sources {n}");
        }
        // content-based schema for the first example we can read
        if let Some(example) = s.examples.first() {
            if let Ok(data) = store.read(example) {
                if let Some(schema) = infer_schema(&data) {
                    println!("    # content schema {schema}");
                }
            }
        }
        println!("}}");
    }
    let groups = suggest_groups(&suggestions, 0.7);
    if !groups.is_empty() {
        println!("\nsuggested groupings:");
        for g in groups {
            let members: Vec<&str> = g
                .members
                .iter()
                .map(|&i| suggestions[i].pattern.text())
                .collect();
            println!(
                "  {} (cohesion {:.2}): {}",
                g.suggested_name,
                g.cohesion,
                members.join("  ")
            );
        }
    }
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut seed: u64 = 0xB157_0057;
    let mut workers: usize = 1;
    let mut group: usize = bistro::server::DEFAULT_COMMIT_GROUP;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                workers = v.parse().map_err(|_| format!("bad workers: {v}"))?;
            }
            "--group" => {
                let v = it.next().ok_or("--group needs a value")?;
                group = v.parse().map_err(|_| format!("bad group: {v}"))?;
            }
            other => return Err(format!("unknown status flag {other}")),
        }
    }
    if json {
        println!(
            "{}",
            bistro::status::status_json(seed, workers, group).render()
        );
    } else {
        print!("{}", bistro::status::status_text(seed, workers, group));
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let [config_path, dir] = args else {
        return Err("usage: bistro analyze <config> <dir>".to_string());
    };
    let cfg = load_config(config_path)?;
    let classifier = Classifier::compile(&cfg);
    let store = DiskFs::open(dir).map_err(|e| e.to_string())?;
    let files = walk_files(&store, "").map_err(|e| e.to_string())?;

    let mut matched = 0usize;
    let mut discoverer = FeedDiscoverer::new();
    let mut fn_det = FnDetector::new(
        cfg.feeds
            .iter()
            .map(|f| (f.name.clone(), f.patterns.clone()))
            .collect(),
    );
    for f in &files {
        let name = f.rsplit('/').next().unwrap_or(f);
        if classifier.classify(name).is_empty() {
            discoverer.observe(name);
            fn_det.observe(name);
        } else {
            matched += 1;
        }
    }
    println!(
        "{} files: {} matched, {} unknown",
        files.len(),
        matched,
        files.len() - matched
    );

    let warnings = fn_det.warnings();
    if !warnings.is_empty() {
        println!("\npossible false negatives (naming drift):");
        for w in warnings {
            println!(
                "  {} ← {} files like {} (similarity {:.2})",
                w.feed, w.file_count, w.suggested_pattern, w.similarity
            );
        }
    }
    let suggestions = discoverer.suggestions(3);
    if !suggestions.is_empty() {
        println!("\nsuggested new feeds:");
        for s in suggestions {
            println!("  pattern \"{}\" ({} files)", s.pattern, s.support);
        }
    }
    Ok(())
}
