//! Umbrella crate re-exporting the Bistro workspace.
pub mod status;

pub use bistro_analyzer as analyzer;
pub use bistro_base as base;
pub use bistro_compress as compress;
pub use bistro_config as config;
pub use bistro_core as server;
pub use bistro_mc as mc;
pub use bistro_pattern as pattern;
pub use bistro_receipts as receipts;
pub use bistro_scheduler as scheduler;
pub use bistro_simnet as simnet;
pub use bistro_telemetry as telemetry;
pub use bistro_transport as transport;
pub use bistro_vfs as vfs;
