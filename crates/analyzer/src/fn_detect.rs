//! False-negative detection (paper §5.2).
//!
//! An unmatched file may be a *false negative* for an existing feed: the
//! source changed its naming convention ("poller" → "Poller"), new
//! sources appeared, or the original pattern was fit to an
//! unrepresentative sample. Bistro's approach:
//!
//! 1. generalize unmatched files into patterns (via the discovery
//!    machinery), deduplicating — "a warning is only generated once for
//!    each generalized file pattern";
//! 2. compare each generalized pattern against every registered feed
//!    pattern with token-level [`bistro_pattern::pattern_similarity`];
//! 3. report candidates above a similarity threshold, with the suggested
//!    addition to the feed definition.
//!
//! The byte-edit-distance baseline ([`FnDetector::edit_distance_candidates`])
//! is retained for experiment E9, which reproduces the paper's TRAP
//! example showing why it fails.

use bistro_pattern::generalize::generalize;
use bistro_pattern::{levenshtein, pattern_similarity, Pattern};
use std::collections::BTreeMap;

/// Default similarity threshold for flagging a candidate false negative.
pub const DEFAULT_SIMILARITY_THRESHOLD: f64 = 0.55;

/// A suspected false-negative report.
#[derive(Clone, Debug)]
pub struct FnWarning {
    /// The feed the files probably belong to.
    pub feed: String,
    /// The feed's closest existing pattern.
    pub feed_pattern: Pattern,
    /// The generalized pattern of the unmatched files.
    pub suggested_pattern: Pattern,
    /// Similarity score in `[0, 1]`.
    pub similarity: f64,
    /// How many unmatched files share the suggested pattern.
    pub file_count: usize,
    /// Example filenames (capped).
    pub examples: Vec<String>,
}

struct UnmatchedGroup {
    pattern: Pattern,
    count: usize,
    examples: Vec<String>,
}

/// Detects false negatives among unmatched files.
pub struct FnDetector {
    feeds: Vec<(String, Vec<Pattern>)>,
    groups: BTreeMap<String, UnmatchedGroup>,
    threshold: f64,
}

const EXAMPLE_CAP: usize = 3;

impl FnDetector {
    /// A detector for the given registered feeds
    /// (`(feed name, patterns)`).
    pub fn new(feeds: Vec<(String, Vec<Pattern>)>) -> FnDetector {
        FnDetector {
            feeds,
            groups: BTreeMap::new(),
            threshold: DEFAULT_SIMILARITY_THRESHOLD,
        }
    }

    /// Override the similarity threshold.
    pub fn with_threshold(mut self, threshold: f64) -> FnDetector {
        self.threshold = threshold;
        self
    }

    /// Ingest one unmatched filename.
    pub fn observe(&mut self, name: &str) {
        let pat = generalize(name).to_pattern();
        let key = pat.text().to_string();
        let group = self.groups.entry(key).or_insert_with(|| UnmatchedGroup {
            pattern: pat,
            count: 0,
            examples: Vec::new(),
        });
        group.count += 1;
        if group.examples.len() < EXAMPLE_CAP {
            group.examples.push(name.to_string());
        }
    }

    /// Number of distinct generalized patterns among unmatched files —
    /// the number of *warnings* Bistro would emit (vs one per file for
    /// naive approaches).
    pub fn distinct_patterns(&self) -> usize {
        self.groups.len()
    }

    /// Produce false-negative warnings: for each unmatched pattern, the
    /// best-matching feed above the threshold.
    ///
    /// Candidates are gated on a compatible *leading name token*: an
    /// unmatched `BPS_…` file is never reported against a `MEMORY_…`
    /// feed no matter how similar the rest of the structure is — poller
    /// output is structurally uniform across metrics, and the name token
    /// is the discriminating evidence. Drifted spellings (`CPU` →
    /// `CPUX`, `TRAP` vs `TRAP`) stay within the gate.
    pub fn warnings(&self) -> Vec<FnWarning> {
        let mut out = Vec::new();
        for group in self.groups.values() {
            let group_lead = leading_alpha(group.pattern.text());
            let mut best: Option<(f64, &str, &Pattern)> = None;
            for (feed, patterns) in &self.feeds {
                for fp in patterns {
                    if !leads_compatible(leading_alpha(fp.text()), group_lead) {
                        continue;
                    }
                    let sim = pattern_similarity(fp, &group.pattern);
                    if best.map(|(s, _, _)| sim > s).unwrap_or(true) {
                        best = Some((sim, feed, fp));
                    }
                }
            }
            if let Some((sim, feed, fp)) = best {
                if sim >= self.threshold {
                    out.push(FnWarning {
                        feed: feed.to_string(),
                        feed_pattern: fp.clone(),
                        suggested_pattern: group.pattern.clone(),
                        similarity: sim,
                        file_count: group.count,
                        examples: group.examples.clone(),
                    });
                }
            }
        }
        out.sort_by(|a, b| b.similarity.partial_cmp(&a.similarity).unwrap());
        out
    }

    /// The paper's strawman: flag `name` as a false negative for feeds
    /// whose pattern text is within `max_distance` byte edits. Kept for
    /// the E9 comparison.
    pub fn edit_distance_candidates(
        &self,
        name: &str,
        max_distance: usize,
    ) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for (feed, patterns) in &self.feeds {
            if let Some(d) = patterns.iter().map(|p| levenshtein(p.text(), name)).min() {
                if d <= max_distance {
                    out.push((feed.clone(), d));
                }
            }
        }
        out.sort_by_key(|(_, d)| *d);
        out
    }
}

/// The first alphabetic run of a pattern's text (its "name token").
fn leading_alpha(text: &str) -> &str {
    let end = text
        .char_indices()
        .find(|(_, c)| !c.is_ascii_alphabetic())
        .map(|(i, _)| i)
        .unwrap_or(text.len());
    &text[..end]
}

/// Two name tokens are compatible when they are case-insensitively equal
/// or within a small edit distance (spelling drift), but not when they
/// are entirely different words.
fn leads_compatible(a: &str, b: &str) -> bool {
    if a.is_empty() || b.is_empty() {
        return true; // patterns starting with a field gate nothing
    }
    let (la, lb) = (a.to_ascii_lowercase(), b.to_ascii_lowercase());
    if la == lb {
        return true;
    }
    let d = levenshtein(&la, &lb);
    d <= 1 + la.len().min(lb.len()) / 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feeds() -> Vec<(String, Vec<Pattern>)> {
        vec![
            (
                "SNMP/MEMORY".to_string(),
                vec![Pattern::parse("MEMORY_poller%i_%Y%m%d.gz").unwrap()],
            ),
            (
                "TRAPS".to_string(),
                vec![Pattern::parse("TRAP__%Y%m%d_DCTAGN_klpi.txt").unwrap()],
            ),
            (
                "SNMP/CPU".to_string(),
                vec![Pattern::parse("CPU_POLL%i_%Y%m%d%H%M.txt").unwrap()],
            ),
        ]
    }

    #[test]
    fn capitalization_drift_flagged() {
        // §5.2: "MEMORY_Poller1_20100926.gz" must be flagged for
        // SNMP/MEMORY.
        let mut det = FnDetector::new(feeds());
        det.observe("MEMORY_Poller1_20100926.gz");
        det.observe("MEMORY_Poller2_20100926.gz");
        det.observe("MEMORY_Poller1_20100927.gz");
        let warnings = det.warnings();
        assert!(!warnings.is_empty());
        assert_eq!(warnings[0].feed, "SNMP/MEMORY");
        assert_eq!(warnings[0].file_count, 3);
        assert!(warnings[0]
            .suggested_pattern
            .is_match("MEMORY_Poller9_20101231.gz"));
    }

    #[test]
    fn one_warning_per_pattern_not_per_file() {
        let mut det = FnDetector::new(feeds());
        for day in 1..=28 {
            det.observe(&format!("MEMORY_Poller1_201009{day:02}.gz"));
        }
        assert_eq!(det.distinct_patterns(), 1);
        assert_eq!(det.warnings().len(), 1);
        assert_eq!(det.warnings()[0].file_count, 28);
    }

    #[test]
    fn paper_trap_example() {
        // Edit distance is 51 — any per-file distance threshold that
        // catches it would drown in noise; pattern similarity catches it.
        let mut det = FnDetector::new(feeds());
        let file = "TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt";
        det.observe(file);
        // baseline: edit distance
        let d = levenshtein("TRAP__%Y%m%d_DCTAGN_klpi.txt", file);
        assert!(d >= 45, "paper reports distance 51, got {d}");
        let by_edit = det.edit_distance_candidates(file, 10);
        assert!(by_edit.is_empty(), "edit-distance misses the TRAP file");
        // Bistro's approach
        let mut det = det.with_threshold(0.4);
        let warnings = det.warnings();
        assert!(
            warnings.iter().any(|w| w.feed == "TRAPS"),
            "pattern similarity finds it: {warnings:#?}"
        );
        let _ = &mut det;
    }

    #[test]
    fn unrelated_files_not_flagged() {
        let mut det = FnDetector::new(feeds());
        det.observe("completely-unrelated-9234.bin");
        det.observe("other.dat");
        let warnings = det.warnings();
        assert!(warnings.is_empty(), "{warnings:#?}");
    }

    #[test]
    fn new_source_format_flagged() {
        // §2.1.3.1: more pollers / format change
        let mut det = FnDetector::new(feeds());
        det.observe("CPU_POLL7_201009251505.txt"); // poller 7 is new but matches? no — it matches the pattern!
                                                   // this file actually matches CPU's %i; simulate a format change:
        det.observe("CPU_POLLER7_201009251505.txt"); // POLL→POLLER drift
        let warnings = det.warnings();
        assert!(
            warnings.iter().any(|w| w.feed == "SNMP/CPU"),
            "{warnings:#?}"
        );
    }

    #[test]
    fn ranking_most_similar_first() {
        let mut det = FnDetector::new(feeds()).with_threshold(0.3);
        det.observe("MEMORY_Poller1_20100926.gz"); // very close to MEMORY
        det.observe("CPUX_POLL1_201009251505.txt"); // weaker CPU drift
        let warnings = det.warnings();
        assert!(warnings.len() >= 2, "{warnings:#?}");
        assert!(warnings[0].similarity >= warnings[1].similarity);
    }
}
