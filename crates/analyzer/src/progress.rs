//! Feed progress monitoring (paper §3.2).
//!
//! "An important feature of Bistro is to perform extensive logging to
//! track the status of all the feeds, monitor their progress (e.g., if
//! the expected data is incomplete), detect and correct any errors, and
//! alarm if it is unable to correct errors."
//!
//! [`FeedProgress`] tracks one feed's arrivals bucketed by feed
//! timestamp: given the expected period and source count (configured or
//! inferred by discovery), it reports intervals with missing or surplus
//! files, and feeds that have gone silent.

use bistro_base::{TimePoint, TimeSpan};
use std::collections::BTreeMap;

/// An alert raised by progress monitoring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgressAlert {
    /// An interval received fewer files than expected.
    MissingData {
        /// Start of the affected interval.
        interval: TimePoint,
        /// Files expected (the source count).
        expected: usize,
        /// Files actually received.
        got: usize,
    },
    /// An interval received more files than expected (possible duplicate
    /// or misclassified data).
    SurplusData {
        /// Start of the affected interval.
        interval: TimePoint,
        /// Files expected.
        expected: usize,
        /// Files received.
        got: usize,
    },
    /// No data at all for at least `silent_for`, measured at `since`.
    FeedSilent {
        /// The last interval that had data.
        since: TimePoint,
        /// How long the feed has been silent.
        silent_for: TimeSpan,
    },
}

/// Tracks per-interval arrival counts for one feed.
#[derive(Debug)]
pub struct FeedProgress {
    period: TimeSpan,
    expected_per_interval: usize,
    counts: BTreeMap<TimePoint, usize>,
}

impl FeedProgress {
    /// A monitor for a feed expected to deliver `expected_per_interval`
    /// files every `period`.
    pub fn new(period: TimeSpan, expected_per_interval: usize) -> FeedProgress {
        FeedProgress {
            period,
            expected_per_interval: expected_per_interval.max(1),
            counts: BTreeMap::new(),
        }
    }

    /// Record a file whose feed timestamp is `feed_time`.
    pub fn record(&mut self, feed_time: TimePoint) {
        let bucket = feed_time.truncate_to(self.period);
        *self.counts.entry(bucket).or_insert(0) += 1;
    }

    /// Number of intervals with any data.
    pub fn intervals_seen(&self) -> usize {
        self.counts.len()
    }

    /// Audit the stream as of `now`: deficits, surpluses and silence.
    /// Only closed intervals (`interval + period <= now`) are audited, so
    /// in-flight intervals don't alarm spuriously.
    pub fn audit(&self, now: TimePoint) -> Vec<ProgressAlert> {
        let mut alerts = Vec::new();
        let Some((&first, _)) = self.counts.iter().next() else {
            return alerts;
        };
        let Some((&last, _)) = self.counts.iter().next_back() else {
            return alerts;
        };

        // every interval between first and last data (plus trailing up to
        // now) should have the expected count
        let mut interval = first;
        while interval + self.period <= now {
            let got = self.counts.get(&interval).copied().unwrap_or(0);
            if got < self.expected_per_interval {
                alerts.push(ProgressAlert::MissingData {
                    interval,
                    expected: self.expected_per_interval,
                    got,
                });
            } else if got > self.expected_per_interval {
                alerts.push(ProgressAlert::SurplusData {
                    interval,
                    expected: self.expected_per_interval,
                    got,
                });
            }
            if interval > last && interval - last > self.period.saturating_mul(3) {
                break; // silence handled below, stop enumerating holes
            }
            interval += self.period;
        }

        // silence: nothing for more than 2 periods
        let silent_for = now.since(last + self.period);
        if silent_for > self.period.saturating_mul(2) {
            alerts.push(ProgressAlert::FeedSilent {
                since: last,
                silent_for,
            });
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> TimePoint {
        TimePoint::from_secs(mins * 60)
    }

    #[test]
    fn complete_stream_is_quiet() {
        let mut p = FeedProgress::new(TimeSpan::from_mins(5), 2);
        for slot in 0..12 {
            p.record(t(slot * 5));
            p.record(t(slot * 5) + TimeSpan::from_secs(30));
        }
        let alerts = p.audit(t(60));
        assert!(alerts.is_empty(), "{alerts:?}");
        assert_eq!(p.intervals_seen(), 12);
    }

    #[test]
    fn missing_poller_detected() {
        let mut p = FeedProgress::new(TimeSpan::from_mins(5), 2);
        for slot in 0..6 {
            p.record(t(slot * 5));
            if slot != 3 {
                p.record(t(slot * 5) + TimeSpan::from_secs(10));
            }
        }
        let alerts = p.audit(t(30));
        assert_eq!(
            alerts,
            vec![ProgressAlert::MissingData {
                interval: t(15),
                expected: 2,
                got: 1
            }]
        );
    }

    #[test]
    fn whole_interval_hole_detected() {
        let mut p = FeedProgress::new(TimeSpan::from_mins(5), 1);
        p.record(t(0));
        p.record(t(10)); // t(5) missing entirely
        let alerts = p.audit(t(15));
        assert!(alerts.contains(&ProgressAlert::MissingData {
            interval: t(5),
            expected: 1,
            got: 0
        }));
    }

    #[test]
    fn surplus_detected() {
        let mut p = FeedProgress::new(TimeSpan::from_mins(5), 1);
        p.record(t(0));
        p.record(t(0) + TimeSpan::from_secs(1));
        let alerts = p.audit(t(5));
        assert!(matches!(
            alerts[0],
            ProgressAlert::SurplusData { got: 2, .. }
        ));
    }

    #[test]
    fn silence_detected() {
        let mut p = FeedProgress::new(TimeSpan::from_mins(5), 1);
        p.record(t(0));
        let alerts = p.audit(t(60));
        assert!(
            alerts
                .iter()
                .any(|a| matches!(a, ProgressAlert::FeedSilent { .. })),
            "{alerts:?}"
        );
    }

    #[test]
    fn open_interval_not_audited() {
        let mut p = FeedProgress::new(TimeSpan::from_mins(5), 2);
        p.record(t(0));
        p.record(t(0) + TimeSpan::from_secs(5));
        p.record(t(5)); // current interval, only 1 of 2 so far
        let alerts = p.audit(t(7)); // interval [5,10) still open
        assert!(alerts.is_empty(), "{alerts:?}");
    }

    #[test]
    fn empty_monitor_is_quiet() {
        let p = FeedProgress::new(TimeSpan::from_mins(5), 1);
        assert!(p.audit(t(100)).is_empty());
    }
}
