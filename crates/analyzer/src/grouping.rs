//! Automatic grouping of atomic feeds into feed groups.
//!
//! The paper's stated direction (§5.1): "Developing tools for automatic
//! grouping of related or structurally similar atomic feeds into more
//! complex logical feed groups is one of the research directions we are
//! planning to undertake in the future."
//!
//! [`suggest_groups`] clusters discovered feeds by structural similarity
//! of their patterns (the same token-level alignment used for
//! false-negative detection): feeds whose patterns differ essentially
//! only in the name token — `BPS_poller%i_TS`, `PPS_poller%i_TS`,
//! `CPU_poller%i_TS` — form one suggested group, matching the paper's
//! SNMP → {BPS, PPS, CPU, MEMORY} hierarchy example (§3.1). Like every
//! analyzer output, the suggestion goes to a human for naming and
//! approval.

use crate::discovery::DiscoveredFeed;
use bistro_pattern::pattern_similarity;

/// A suggested feed group.
#[derive(Clone, Debug)]
pub struct GroupSuggestion {
    /// Indices into the input feed list.
    pub members: Vec<usize>,
    /// A suggested group name: the members' longest common name prefix,
    /// or a structural label when there is none.
    pub suggested_name: String,
    /// The minimum pairwise similarity inside the group.
    pub cohesion: f64,
}

/// Default similarity threshold for grouping.
pub const DEFAULT_GROUP_THRESHOLD: f64 = 0.7;

/// Cluster discovered feeds into suggested groups by single-linkage
/// similarity ≥ `threshold`. Singleton groups are omitted.
pub fn suggest_groups(feeds: &[DiscoveredFeed], threshold: f64) -> Vec<GroupSuggestion> {
    let n = feeds.len();
    // union-find over single-linkage edges
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut sim = vec![vec![1.0f64; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let s = pattern_similarity(&feeds[i].pattern, &feeds[j].pattern);
            sim[i][j] = s;
            sim[j][i] = s;
            if s >= threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        clusters.entry(r).or_default().push(i);
    }

    clusters
        .into_values()
        .filter(|members| members.len() >= 2)
        .map(|members| {
            let mut cohesion = 1.0f64;
            for (ai, &a) in members.iter().enumerate() {
                for &b in &members[ai + 1..] {
                    cohesion = cohesion.min(sim[a][b]);
                }
            }
            let names: Vec<&str> = members.iter().map(|&i| feeds[i].pattern.text()).collect();
            let prefix = common_prefix(&names);
            let suggested_name = if prefix.len() >= 3 {
                prefix.trim_end_matches(['_', '-', '.']).to_string()
            } else {
                format!("GROUP_{}", members.len())
            };
            GroupSuggestion {
                members,
                suggested_name,
                cohesion,
            }
        })
        .collect()
}

fn common_prefix(names: &[&str]) -> String {
    let Some(first) = names.first() else {
        return String::new();
    };
    let mut len = first.len();
    for name in &names[1..] {
        len = len.min(
            first
                .bytes()
                .zip(name.bytes())
                .take_while(|(a, b)| a == b)
                .count(),
        );
    }
    first[..len].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::FeedDiscoverer;

    fn discover(names: &[String]) -> Vec<DiscoveredFeed> {
        let mut d = FeedDiscoverer::new();
        for n in names {
            d.observe(n);
        }
        d.suggestions(1)
    }

    #[test]
    fn snmp_style_feeds_group_together() {
        // the paper's SNMP hierarchy: structurally identical subfeeds
        // with different name tokens, plus one structurally alien feed
        let mut names = Vec::new();
        for kind in ["BPS", "PPS", "CPU", "MEMORY"] {
            for d in 10..15 {
                names.push(format!("{kind}_poller1_201009{d}0000.csv"));
            }
        }
        for d in 10..15 {
            names.push(format!("alarm-log.{d}.of.september.txt"));
        }
        let feeds = discover(&names);
        assert_eq!(feeds.len(), 5);
        let groups = suggest_groups(&feeds, DEFAULT_GROUP_THRESHOLD);
        assert_eq!(groups.len(), 1, "{groups:#?}");
        assert_eq!(groups[0].members.len(), 4);
        assert!(groups[0].cohesion >= DEFAULT_GROUP_THRESHOLD);
    }

    #[test]
    fn shared_prefix_names_the_group() {
        let mut names = Vec::new();
        for kind in ["SNMPBPS", "SNMPPPS"] {
            for d in 10..15 {
                names.push(format!("{kind}_p1_201009{d}.csv"));
            }
        }
        let feeds = discover(&names);
        let groups = suggest_groups(&feeds, 0.6);
        assert_eq!(groups.len(), 1);
        assert!(
            groups[0].suggested_name.starts_with("SNMP"),
            "{}",
            groups[0].suggested_name
        );
    }

    #[test]
    fn unrelated_feeds_stay_ungrouped() {
        let mut names = Vec::new();
        for d in 10..15 {
            names.push(format!("BPS_poller1_201009{d}0000.csv"));
            names.push(format!("totally.different.thing.{d}"));
        }
        let feeds = discover(&names);
        let groups = suggest_groups(&feeds, DEFAULT_GROUP_THRESHOLD);
        assert!(groups.is_empty(), "{groups:#?}");
    }

    #[test]
    fn empty_input() {
        assert!(suggest_groups(&[], 0.7).is_empty());
    }
}
