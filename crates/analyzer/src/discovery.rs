//! New-feed discovery (paper §5.1).
//!
//! Files that match no registered feed are generalized into
//! [`bistro_pattern::Shape`]s and clustered into *atomic feeds*: "a
//! sequence of files sharing the same structure of the filename".
//! Clustering is two-phase:
//!
//! 1. exact shape-signature clustering (cheap hash lookup per file);
//! 2. a merge pass that folds signature-clusters with the same abstract
//!    structure together, widening variable alpha tokens into
//!    categorical fields — but only when the clusters share the same
//!    *leading name token* (`MEMORY_…` never merges with `CPU_…`; the
//!    paper notes Bistro "cannot automatically determine if both of the
//!    classes of files belong to the same feed", so we stay conservative
//!    and leave cross-name grouping to the human expert).
//!
//! Per cluster the discoverer infers the inter-arrival period (median of
//! feed-timestamp deltas) and the number of contributing sources (the
//! domain size of a small integer field, e.g. the poller id).

use bistro_base::{TimePoint, TimeSpan};
use bistro_pattern::generalize::{generalize, Shape, ShapeElem};
use bistro_pattern::Pattern;
use std::collections::BTreeMap;

/// A suggested feed definition produced by discovery.
#[derive(Clone, Debug)]
pub struct DiscoveredFeed {
    /// The suggested pattern.
    pub pattern: Pattern,
    /// How many files support it.
    pub support: usize,
    /// Example filenames (capped).
    pub examples: Vec<String>,
    /// Inferred interval between consecutive feed timestamps.
    pub period: Option<TimeSpan>,
    /// Inferred number of contributing sources (e.g. pollers).
    pub sources: Option<usize>,
    /// Human-readable field/domain description.
    pub description: String,
}

const EXAMPLE_CAP: usize = 5;

struct Cluster {
    shape: Shape,
    examples: Vec<String>,
    feed_times: Vec<TimePoint>,
}

/// Incremental atomic-feed discoverer.
#[derive(Default)]
pub struct FeedDiscoverer {
    clusters: BTreeMap<String, Cluster>,
    total_files: usize,
}

impl FeedDiscoverer {
    /// Fresh discoverer.
    pub fn new() -> FeedDiscoverer {
        FeedDiscoverer::default()
    }

    /// Ingest one unmatched filename.
    pub fn observe(&mut self, name: &str) {
        self.total_files += 1;
        let shape = generalize(name);
        let feed_time = shape_feed_time(name, &shape);
        let sig = shape.signature();
        match self.clusters.get_mut(&sig) {
            Some(cluster) => {
                let merged = cluster.shape.merge(&shape, false);
                debug_assert!(merged, "equal signatures must merge");
                if cluster.examples.len() < EXAMPLE_CAP {
                    cluster.examples.push(name.to_string());
                }
                if let Some(t) = feed_time {
                    cluster.feed_times.push(t);
                }
            }
            None => {
                self.clusters.insert(
                    sig,
                    Cluster {
                        shape,
                        examples: vec![name.to_string()],
                        feed_times: feed_time.into_iter().collect(),
                    },
                );
            }
        }
    }

    /// Total files observed.
    pub fn total_files(&self) -> usize {
        self.total_files
    }

    /// Number of raw (pre-merge) clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Produce suggested feed definitions: merge compatible clusters,
    /// then rank by support. `min_support` filters noise clusters.
    pub fn suggestions(&self, min_support: usize) -> Vec<DiscoveredFeed> {
        // merge pass: group by (structure signature, leading name token)
        let mut merged: BTreeMap<(String, String), Cluster> = BTreeMap::new();
        for cluster in self.clusters.values() {
            let key = (
                cluster.shape.structure_signature(),
                leading_name(&cluster.shape).unwrap_or_default().to_string(),
            );
            match merged.get_mut(&key) {
                Some(target) => {
                    if target.shape.merge(&cluster.shape, true) {
                        target.examples.extend(
                            cluster
                                .examples
                                .iter()
                                .take(EXAMPLE_CAP.saturating_sub(target.examples.len()))
                                .cloned(),
                        );
                        target.feed_times.extend(&cluster.feed_times);
                    } else {
                        // structurally incompatible despite equal keys —
                        // keep separate under a disambiguated key
                        let alt = (
                            key.0.clone(),
                            format!("{}#{}", key.1, cluster.shape.to_pattern()),
                        );
                        merged.insert(
                            alt,
                            Cluster {
                                shape: cluster.shape.clone(),
                                examples: cluster.examples.clone(),
                                feed_times: cluster.feed_times.clone(),
                            },
                        );
                    }
                }
                None => {
                    merged.insert(
                        key,
                        Cluster {
                            shape: cluster.shape.clone(),
                            examples: cluster.examples.clone(),
                            feed_times: cluster.feed_times.clone(),
                        },
                    );
                }
            }
        }

        let mut out: Vec<DiscoveredFeed> = merged
            .into_values()
            .filter(|c| c.shape.support >= min_support)
            .map(|c| {
                let period = infer_period(&c.feed_times);
                let sources = infer_sources(&c.shape);
                DiscoveredFeed {
                    pattern: c.shape.to_pattern(),
                    support: c.shape.support,
                    examples: c.examples,
                    period,
                    sources,
                    description: c.shape.describe(),
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.support
                .cmp(&a.support)
                .then(a.pattern.text().cmp(b.pattern.text()))
        });
        out
    }
}

/// The first alphabetic literal token of a shape (the "name" of the
/// data-generating software, e.g. `MEMORY`).
pub(crate) fn leading_name(shape: &Shape) -> Option<&str> {
    for e in shape.elems() {
        match e {
            ShapeElem::Lit(s) if s.chars().all(|c| c.is_ascii_alphabetic()) => return Some(s),
            ShapeElem::Lit(_) => continue, // leading punctuation
            _ => return None,              // starts with a variable field
        }
    }
    None
}

/// Extract the feed timestamp embedded in a filename via its shape.
fn shape_feed_time(name: &str, shape: &Shape) -> Option<TimePoint> {
    if !shape.has_timestamp() {
        return None;
    }
    shape.to_pattern().match_str(name)?.timestamp()
}

/// Median of consecutive deltas between sorted distinct timestamps.
fn infer_period(times: &[TimePoint]) -> Option<TimeSpan> {
    if times.len() < 3 {
        return None;
    }
    let mut sorted: Vec<u64> = times.iter().map(|t| t.as_micros()).collect();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() < 3 {
        return None;
    }
    let mut deltas: Vec<u64> = sorted.windows(2).map(|w| w[1] - w[0]).collect();
    deltas.sort_unstable();
    Some(TimeSpan::from_micros(deltas[deltas.len() / 2]))
}

/// If the shape has exactly one small-domain integer field, its domain
/// size is the number of contributing sources.
fn infer_sources(shape: &Shape) -> Option<usize> {
    let mut candidates: Vec<usize> = Vec::new();
    for e in shape.elems() {
        if let ShapeElem::IntVar {
            domain, min, max, ..
        } = e
        {
            // a source-id field: small domain, small values
            if domain.len() >= 2 && domain.len() <= 32 && *max - *min <= 64 {
                candidates.push(domain.len());
            }
        }
    }
    if candidates.len() == 1 {
        Some(candidates[0])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §5.1 worked example.
    fn paper_stream() -> Vec<&'static str> {
        vec![
            "MEMORY_POLLER1_2010092504_51.csv.gz",
            "CPU_POLL1_201009250502.txt",
            "MEMORY_POLLER2_2010092504_59.csv.gz",
            "MEMORY_POLLER1_2010092509_58.csv.gz",
            "CPU_POLL2_201009250503.txt",
            "MEMORY_POLLER2_2010092510_02.csv.gz",
            "CPU_POLL2_201009251001.txt",
            "CPU_POLL2_201009250959.txt",
        ]
    }

    #[test]
    fn paper_example_finds_two_atomic_feeds() {
        let mut d = FeedDiscoverer::new();
        for name in paper_stream() {
            d.observe(name);
        }
        let feeds = d.suggestions(1);
        assert_eq!(feeds.len(), 2, "{feeds:#?}");
        let patterns: Vec<_> = feeds.iter().map(|f| f.pattern.text().to_string()).collect();
        assert!(
            patterns.contains(&"MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz".to_string()),
            "{patterns:?}"
        );
        assert!(
            patterns.contains(&"CPU_POLL%i_%Y%m%d%H%M.txt".to_string()),
            "{patterns:?}"
        );
        // the id field domain {1, 2} ⇒ two sources
        for f in &feeds {
            assert_eq!(f.sources, Some(2), "feed {}", f.pattern);
        }
    }

    #[test]
    fn period_inference_five_minutes() {
        // "both classes of files should expect to see a new file generated
        // every 5 minutes from each of the pollers"
        let mut d = FeedDiscoverer::new();
        for slot in 0..12 {
            let h = 4 + (slot * 5 + 51) / 60;
            let m = (slot * 5 + 51) % 60;
            for poller in 1..=2 {
                d.observe(&format!("MEMORY_POLLER{poller}_201009250{h}_{m:02}.csv.gz"));
            }
        }
        let feeds = d.suggestions(1);
        assert_eq!(feeds.len(), 1);
        assert_eq!(feeds[0].period, Some(TimeSpan::from_mins(5)), "{feeds:#?}");
        assert_eq!(feeds[0].support, 24);
    }

    #[test]
    fn bps_and_pps_stay_separate() {
        // identical structure, different name token ⇒ distinct feeds
        let mut d = FeedDiscoverer::new();
        for day in 10..20 {
            d.observe(&format!("BPS_poller1_201009{day}.csv"));
            d.observe(&format!("PPS_poller1_201009{day}.csv"));
        }
        let feeds = d.suggestions(2);
        assert_eq!(feeds.len(), 2, "{feeds:#?}");
    }

    #[test]
    fn min_support_filters_noise() {
        let mut d = FeedDiscoverer::new();
        for day in 10..20 {
            d.observe(&format!("GOOD_p1_201009{day}.csv"));
        }
        d.observe("stray-file.tmp");
        let feeds = d.suggestions(3);
        assert_eq!(feeds.len(), 1);
        assert!(feeds[0].pattern.text().starts_with("GOOD"));
    }

    #[test]
    fn discovered_patterns_match_their_files() {
        let mut d = FeedDiscoverer::new();
        let names: Vec<String> = (0..20)
            .map(|i| format!("LOG_host{}_2010_12_{:02}.txt", i % 3, 1 + i % 28))
            .collect();
        for n in &names {
            d.observe(n);
        }
        let feeds = d.suggestions(1);
        for name in &names {
            assert!(
                feeds.iter().any(|f| f.pattern.is_match(name)),
                "no discovered pattern covers {name}"
            );
        }
    }

    #[test]
    fn merge_pass_widens_categorical_alpha() {
        // same leading name, varying later alpha token ⇒ categorical
        let mut d = FeedDiscoverer::new();
        for region in ["east", "west", "north"] {
            for day in 10..15 {
                d.observe(&format!("TRAFFIC_{region}_201009{day}.csv"));
            }
        }
        let feeds = d.suggestions(1);
        assert_eq!(feeds.len(), 1, "{feeds:#?}");
        assert_eq!(feeds[0].pattern.text(), "TRAFFIC_%a_%Y%m%d.csv");
        assert!(feeds[0].description.contains("categorical"));
        assert_eq!(feeds[0].support, 15);
    }

    #[test]
    fn ranking_by_support() {
        let mut d = FeedDiscoverer::new();
        for day in 10..20 {
            d.observe(&format!("BIG_p1_201009{day}.csv"));
        }
        for day in 10..13 {
            d.observe(&format!("SMALL_p1_201009{day}.csv"));
        }
        let feeds = d.suggestions(1);
        assert!(feeds[0].pattern.text().starts_with("BIG"));
        assert!(feeds[0].support > feeds[1].support);
    }
}
