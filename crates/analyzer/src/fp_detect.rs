//! False-positive detection (paper §5.3).
//!
//! "Instead of directly identifying false positives Bistro feed analyzer
//! explores the stream of files matching existing feed definition and
//! identifies all the contained atomic feeds … the system identifies and
//! marks outliers that do not share filename structure with the rest of
//! the matching files. A list of atomic feed definitions is then
//! forwarded to all the feed subscribers."
//!
//! [`fp_report`] runs the discovery clustering over a feed's *matched*
//! files and splits the resulting atomic feeds into the dominant
//! composition and outliers (low relative support).

use crate::discovery::{DiscoveredFeed, FeedDiscoverer};

/// The composition report for one feed.
#[derive(Clone, Debug)]
pub struct FpReport {
    /// The feed under analysis.
    pub feed: String,
    /// Total matched files analyzed.
    pub total_files: usize,
    /// The atomic subfeeds that make up the bulk of the feed.
    pub composition: Vec<DiscoveredFeed>,
    /// Atomic feeds flagged as probable false positives (outlier
    /// structure with low support).
    pub outliers: Vec<DiscoveredFeed>,
}

/// Fraction of total files below which an atomic feed counts as an
/// outlier (when it also has few absolute files).
pub const OUTLIER_FRACTION: f64 = 0.05;

/// Cluster the files matching `feed` and split composition from
/// outliers.
///
/// `outlier_fraction` — atomic feeds carrying less than this fraction of
/// files are flagged (default [`OUTLIER_FRACTION`]).
pub fn fp_report<'a>(
    feed: &str,
    matched_files: impl Iterator<Item = &'a str>,
    outlier_fraction: f64,
) -> FpReport {
    let mut disc = FeedDiscoverer::new();
    let mut total = 0usize;
    for name in matched_files {
        disc.observe(name);
        total += 1;
    }
    let all = disc.suggestions(1);
    let threshold = ((total as f64) * outlier_fraction).ceil() as usize;
    let (composition, outliers): (Vec<_>, Vec<_>) =
        all.into_iter().partition(|f| f.support >= threshold.max(1));
    FpReport {
        feed: feed.to_string(),
        total_files: total,
        composition,
        outliers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_pps_leaking_into_bps() {
        // §2.1.3.2: "if a data feed composed of bytes per second
        // measurement also starts receiving packets per second data with
        // an identical schema, problem detection might be arbitrarily
        // delayed" — the wildcard pattern *_%Y%m%d.csv.gz matched both.
        let mut files: Vec<String> = Vec::new();
        for day in 1..=28 {
            for poller in 1..=4 {
                files.push(format!("BPS_poller{poller}_201009{day:02}.csv"));
            }
        }
        // a trickle of PPS files leaks in
        files.push("PPS_poller1_20100901.csv".to_string());
        files.push("PPS_poller1_20100902.csv".to_string());

        let report = fp_report("BILLING/BPS", files.iter().map(|s| s.as_str()), 0.05);
        assert_eq!(report.total_files, 114);
        assert_eq!(report.composition.len(), 1);
        assert!(report.composition[0].pattern.text().starts_with("BPS"));
        assert_eq!(report.outliers.len(), 1, "{report:#?}");
        assert!(report.outliers[0].pattern.text().starts_with("PPS"));
        assert_eq!(report.outliers[0].support, 2);
    }

    #[test]
    fn clean_feed_has_no_outliers() {
        let files: Vec<String> = (1..=28)
            .map(|d| format!("CPU_POLL1_201009{d:02}0000.txt"))
            .collect();
        let report = fp_report("CPU", files.iter().map(|s| s.as_str()), 0.05);
        assert_eq!(report.outliers.len(), 0);
        assert_eq!(report.composition.len(), 1);
    }

    #[test]
    fn aggregate_feed_composition_listed() {
        // a deliberately aggregate feed: subscriber sees all subfeeds to
        // verify each is intentional
        let mut files: Vec<String> = Vec::new();
        for day in 1..=10 {
            files.push(format!("BPS_p1_201009{day:02}.csv"));
            files.push(format!("PPS_p1_201009{day:02}.csv"));
            files.push(format!("CPU_p1_201009{day:02}.csv"));
        }
        let report = fp_report("SNMP_ALL", files.iter().map(|s| s.as_str()), 0.05);
        assert_eq!(report.composition.len(), 3);
        assert!(report.outliers.is_empty());
    }

    #[test]
    fn empty_feed() {
        let report = fp_report("EMPTY", std::iter::empty(), 0.05);
        assert_eq!(report.total_files, 0);
        assert!(report.composition.is_empty());
        assert!(report.outliers.is_empty());
    }
}
