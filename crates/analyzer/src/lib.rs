//! # bistro-analyzer
//!
//! The Bistro feed analyzer (paper §5): proactive monitoring of the
//! file-to-feed classification stream.
//!
//! Three modes of use, mirroring §5.1–§5.3:
//!
//! * **New feed discovery** ([`discovery::FeedDiscoverer`]) — cluster the
//!   files that matched *no* registered feed into *atomic feeds*
//!   (homogeneous filename structures), infer field types/domains and
//!   arrival patterns, and emit suggested feed definitions for human
//!   review.
//! * **False-negative detection** ([`fn_detect::FnDetector`]) — find
//!   unmatched files that are structurally similar to an existing feed
//!   (naming-convention drift), using generalized-pattern similarity
//!   rather than the byte-edit-distance strawman the paper rejects. One
//!   warning per generalized pattern, not per file.
//! * **False-positive detection** ([`fp_detect::fp_report`]) — cluster the
//!   files *matching* a feed and flag outlier atomic feeds that probably
//!   don't belong (over-generic wildcard patterns).
//!
//! The analyzer never changes feed definitions itself: every output is a
//! *suggestion* for subscribers to approve — "the ultimate responsibility
//! of approving or rejecting the suggested feed configuration changes is
//! in the hands of feed subscribers."

pub mod content;
pub mod discovery;
pub mod fn_detect;
pub mod fp_detect;
pub mod grouping;
pub mod progress;

pub use content::{infer_schema, ColumnType, RecordSchema};
pub use discovery::{DiscoveredFeed, FeedDiscoverer};
pub use fn_detect::{FnDetector, FnWarning};
pub use fp_detect::{fp_report, FpReport};
pub use grouping::{suggest_groups, GroupSuggestion};
pub use progress::{FeedProgress, ProgressAlert};
