//! Content-based record structure inference.
//!
//! The paper's stated direction (§3.2): "Incorporating tools such as
//! LEARNPADS for automatic discovery of the structure of data files into
//! the feed classification process and Bistro feed analyzer is one of
//! the directions we are planning to take in the future."
//!
//! This module implements the pragmatic core of that idea: given a
//! sample of a file's bytes, [`infer_schema`] detects the delimiter,
//! header presence, column count and per-column types. Two files with
//! the same [`RecordSchema`] probably carry the same kind of data even
//! when their names differ — extra evidence for the analyzer's
//! false-positive reports (a PPS file leaking into a BPS feed has the
//! same *filename* shape but its schema equality is what makes the leak
//! dangerous, §2.1.3.2).

use std::fmt;

/// The inferred type of one column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// All sampled values parse as integers.
    Integer,
    /// All sampled values parse as floats (and not all as integers).
    Float,
    /// Values look like epoch seconds or `YYYY…` timestamps.
    Timestamp,
    /// Anything else.
    Text,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Integer => write!(f, "int"),
            ColumnType::Float => write!(f, "float"),
            ColumnType::Timestamp => write!(f, "ts"),
            ColumnType::Text => write!(f, "text"),
        }
    }
}

/// An inferred record schema for a delimited text file.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RecordSchema {
    /// The detected field delimiter.
    pub delimiter: char,
    /// Whether the first line looks like a header (all-text row over a
    /// typed body).
    pub has_header: bool,
    /// Per-column types.
    pub columns: Vec<ColumnType>,
}

impl fmt::Display for RecordSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self.columns.iter().map(|c| c.to_string()).collect();
        write!(
            f,
            "{}({}){}",
            match self.delimiter {
                '\t' => "tsv".to_string(),
                ',' => "csv".to_string(),
                d => format!("'{d}'-delimited"),
            },
            cols.join(","),
            if self.has_header { " +header" } else { "" }
        )
    }
}

const CANDIDATE_DELIMITERS: [char; 4] = [',', '\t', '|', ';'];
const SAMPLE_LINES: usize = 50;

fn classify_value(v: &str) -> ColumnType {
    let v = v.trim();
    if v.is_empty() {
        return ColumnType::Text;
    }
    if let Ok(n) = v.parse::<i64>() {
        // plausible epoch seconds (2001..2100) or YYYYMMDD-ish
        if (1_000_000_000..4_102_444_800).contains(&n) {
            return ColumnType::Timestamp;
        }
        if (8..=14).contains(&v.len())
            && bistro_pattern::token::classify_digits(v) != bistro_pattern::token::DigitsFormat::Int
        {
            return ColumnType::Timestamp;
        }
        return ColumnType::Integer;
    }
    if v.parse::<f64>().is_ok() {
        return ColumnType::Float;
    }
    ColumnType::Text
}

fn merge_type(a: ColumnType, b: ColumnType) -> ColumnType {
    use ColumnType::*;
    match (a, b) {
        (x, y) if x == y => x,
        (Integer, Float) | (Float, Integer) => Float,
        (Timestamp, Integer) | (Integer, Timestamp) => Integer,
        _ => Text,
    }
}

/// Infer a record schema from a sample of file bytes. Returns `None`
/// when the content is not line-delimited text (binary, or no consistent
/// delimiter).
pub fn infer_schema(data: &[u8]) -> Option<RecordSchema> {
    let text = std::str::from_utf8(&data[..data.len().min(64 * 1024)]).ok()?;
    let lines: Vec<&str> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .take(SAMPLE_LINES)
        .collect();
    if lines.len() < 2 {
        return None;
    }

    // the delimiter is the candidate with the highest *consistent*
    // per-line count (>0)
    let mut best: Option<(char, usize)> = None;
    for d in CANDIDATE_DELIMITERS {
        let counts: Vec<usize> = lines.iter().map(|l| l.matches(d).count()).collect();
        let first = counts[0];
        if first == 0 {
            continue;
        }
        if counts.iter().all(|&c| c == first) && best.map(|(_, n)| first > n).unwrap_or(true) {
            best = Some((d, first));
        }
    }
    let (delimiter, _) = best?;

    let typed_rows: Vec<Vec<ColumnType>> = lines
        .iter()
        .map(|l| l.split(delimiter).map(classify_value).collect())
        .collect();

    // header detection: first row all-text while the body has any
    // non-text column
    let body_start = {
        let first_all_text = typed_rows[0].iter().all(|&t| t == ColumnType::Text);
        let body_has_typed = typed_rows[1..]
            .iter()
            .any(|r| r.iter().any(|&t| t != ColumnType::Text));
        usize::from(first_all_text && body_has_typed)
    };
    let has_header = body_start == 1;

    let ncols = typed_rows[body_start].len();
    let mut columns = typed_rows[body_start].clone();
    for row in &typed_rows[body_start + 1..] {
        for (i, &t) in row.iter().enumerate().take(ncols) {
            columns[i] = merge_type(columns[i], t);
        }
    }
    Some(RecordSchema {
        delimiter,
        has_header,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_with_header() {
        let data = b"timestamp,element,metric,value\n\
            1285372800,router_001,memory,563412\n\
            1285372805,router_002,memory,123456\n\
            1285372810,router_003,memory,777777\n";
        let s = infer_schema(data).unwrap();
        assert_eq!(s.delimiter, ',');
        assert!(s.has_header);
        assert_eq!(
            s.columns,
            vec![
                ColumnType::Timestamp,
                ColumnType::Text,
                ColumnType::Text,
                ColumnType::Integer
            ]
        );
        assert_eq!(s.to_string(), "csv(ts,text,text,int) +header");
    }

    #[test]
    fn headerless_tsv_with_floats() {
        let data = b"a1\t1.5\t10\nb2\t2.25\t20\nc3\t0.5\t30\n";
        let s = infer_schema(data).unwrap();
        assert_eq!(s.delimiter, '\t');
        assert!(!s.has_header);
        assert_eq!(
            s.columns,
            vec![ColumnType::Text, ColumnType::Float, ColumnType::Integer]
        );
    }

    #[test]
    fn int_float_mix_becomes_float() {
        let data = b"1,2\n3,4.5\n5,6\n";
        let s = infer_schema(data).unwrap();
        assert_eq!(s.columns, vec![ColumnType::Integer, ColumnType::Float]);
    }

    #[test]
    fn binary_rejected() {
        let data: Vec<u8> = (0..255u8).cycle().take(1000).collect();
        assert_eq!(infer_schema(&data), None);
    }

    #[test]
    fn inconsistent_columns_rejected() {
        let data = b"a,b,c\nx,y\nq,r,s,t\n";
        assert_eq!(infer_schema(data), None);
    }

    #[test]
    fn single_line_rejected() {
        assert_eq!(infer_schema(b"just one line, no body\n"), None);
    }

    #[test]
    fn schema_equality_detects_same_kind_of_data() {
        // the §2.1.3.2 hazard: BPS and PPS files carry an identical schema
        let bps = b"1285372800,router_001,1024\n1285372805,router_002,2048\n";
        let pps = b"1285372800,router_001,17\n1285372805,router_002,23\n";
        let alarm =
            b"1285372800,router_001,LINK_DOWN,critical\n1285372805,router_002,LINK_UP,info\n";
        assert_eq!(infer_schema(bps), infer_schema(pps));
        assert_ne!(infer_schema(bps), infer_schema(alarm));
    }

    #[test]
    fn yyyymmdd_column_is_timestamp() {
        let data = b"20100925,5\n20100926,6\n20100927,7\n";
        let s = infer_schema(data).unwrap();
        assert_eq!(s.columns[0], ColumnType::Timestamp);
    }

    #[test]
    fn pipe_delimiter() {
        let data = b"a|1\nb|2\nc|3\n";
        let s = infer_schema(data).unwrap();
        assert_eq!(s.delimiter, '|');
    }
}
