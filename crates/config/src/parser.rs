//! Recursive-descent parser for the configuration language.

use crate::lexer::{lex, Tok, TokKind};
use crate::types::*;
use crate::validate::validate;
use bistro_base::TimeSpan;
use bistro_compress::Codec;
use bistro_pattern::{Pattern, Template};

/// Parse and validate a configuration source text.
pub fn parse_config(src: &str) -> Result<Config, ConfigError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let cfg = p.config()?;
    validate(&cfg)?;
    Ok(cfg)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn line(&self) -> usize {
        self.peek()
            .map(|t| t.line)
            .or_else(|| self.toks.last().map(|t| t.line))
            .unwrap_or(1)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ConfigError> {
        Err(ConfigError::Parse {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn next(&mut self, what: &str) -> Result<Tok, ConfigError> {
        match self.toks.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(t.clone())
            }
            None => Err(ConfigError::Parse {
                line: self.line(),
                msg: format!("unexpected end of input, expected {what}"),
            }),
        }
    }

    fn expect(&mut self, kind: &TokKind) -> Result<(), ConfigError> {
        let t = self.next(&kind.to_string())?;
        if &t.kind == kind {
            Ok(())
        } else {
            Err(ConfigError::Parse {
                line: t.line,
                msg: format!("expected {kind}, found {}", t.kind),
            })
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ConfigError> {
        let t = self.next(what)?;
        match t.kind {
            TokKind::Ident(s) => Ok(s),
            other => Err(ConfigError::Parse {
                line: t.line,
                msg: format!("expected {what}, found {other}"),
            }),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, ConfigError> {
        let t = self.next(what)?;
        match t.kind {
            TokKind::Str(s) => Ok(s),
            other => Err(ConfigError::Parse {
                line: t.line,
                msg: format!("expected {what} (a quoted string), found {other}"),
            }),
        }
    }

    fn duration(&mut self, what: &str) -> Result<TimeSpan, ConfigError> {
        let t = self.next(what)?;
        match t.kind {
            TokKind::Duration(d) => Ok(d),
            TokKind::Int(v) => Ok(TimeSpan::from_secs(v)), // bare seconds
            other => Err(ConfigError::Parse {
                line: t.line,
                msg: format!("expected {what} (a duration), found {other}"),
            }),
        }
    }

    fn integer(&mut self, what: &str) -> Result<u64, ConfigError> {
        let t = self.next(what)?;
        match t.kind {
            TokKind::Int(v) => Ok(v),
            other => Err(ConfigError::Parse {
                line: t.line,
                msg: format!("expected {what} (an integer), found {other}"),
            }),
        }
    }

    fn config(&mut self) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        while self.peek().is_some() {
            let kw = self.ident("'server', 'feed', 'group' or 'subscriber'")?;
            match kw.as_str() {
                "server" => cfg.server = self.server_block()?,
                "feed" => cfg.feeds.push(self.feed_block()?),
                "group" => cfg.groups.push(self.group_block()?),
                "subscriber" => cfg.subscribers.push(self.subscriber_block()?),
                other => {
                    return self.err(format!(
                        "unknown top-level block '{other}' (expected server/feed/group/subscriber)"
                    ))
                }
            }
        }
        Ok(cfg)
    }

    fn server_block(&mut self) -> Result<ServerDef, ConfigError> {
        let mut def = ServerDef::default();
        self.expect(&TokKind::LBrace)?;
        loop {
            if matches!(self.peek().map(|t| &t.kind), Some(TokKind::RBrace)) {
                self.pos += 1;
                break;
            }
            let key = self.ident("a server setting")?;
            match key.as_str() {
                "retention" => def.retention = self.duration("retention")?,
                "landing" => def.landing = self.string("landing directory")?,
                "staging" => def.staging = self.string("staging directory")?,
                "scheduler_partitions" => {
                    let v = self.integer("scheduler_partitions")?;
                    if v == 0 || v > 64 {
                        return Err(ConfigError::BadValue {
                            line: self.line(),
                            msg: format!("scheduler_partitions must be 1..=64, got {v}"),
                        });
                    }
                    def.scheduler_partitions = v as usize;
                }
                "archive" => {
                    let v = self.ident("'on' or 'off'")?;
                    def.archive = match v.as_str() {
                        "on" | "true" => true,
                        "off" | "false" => false,
                        other => return self.err(format!("expected on/off, found '{other}'")),
                    };
                }
                other => return self.err(format!("unknown server setting '{other}'")),
            }
            self.expect(&TokKind::Semi)?;
        }
        Ok(def)
    }

    fn feed_block(&mut self) -> Result<FeedDef, ConfigError> {
        let name = self.ident("a feed name")?;
        let mut def = FeedDef {
            name: name.clone(),
            patterns: Vec::new(),
            normalize: None,
            compress: CompressOpt::Keep,
            policy: FeedPolicy::default(),
            description: None,
        };
        self.expect(&TokKind::LBrace)?;
        loop {
            if matches!(self.peek().map(|t| &t.kind), Some(TokKind::RBrace)) {
                self.pos += 1;
                break;
            }
            let key = self.ident("a feed setting")?;
            match key.as_str() {
                "pattern" => {
                    let text = self.string("pattern")?;
                    let pat = Pattern::parse(&text).map_err(|e| ConfigError::BadPattern {
                        feed: name.clone(),
                        pattern: text.clone(),
                        msg: e.to_string(),
                    })?;
                    def.patterns.push(pat);
                }
                "normalize" => {
                    let text = self.string("normalize template")?;
                    let tpl = Template::parse(&text).map_err(|e| ConfigError::BadTemplate {
                        owner: format!("feed {name}"),
                        template: text.clone(),
                        msg: e.to_string(),
                    })?;
                    def.normalize = Some(tpl);
                }
                "compress" => {
                    let v = self.ident("a compression option")?;
                    def.compress = match v.as_str() {
                        "keep" => CompressOpt::Keep,
                        "expand" | "none" => CompressOpt::Expand,
                        "rle" => CompressOpt::To(Codec::Rle),
                        "lzss" | "lz" => CompressOpt::To(Codec::Lzss),
                        other => {
                            return self.err(format!(
                                "unknown compression '{other}' (keep/expand/rle/lzss)"
                            ))
                        }
                    };
                }
                "policy" => {
                    let v = self.ident("a fault-tolerance policy")?;
                    def.policy = match v.as_str() {
                        "discard" => FeedPolicy::Discard,
                        "spill" => FeedPolicy::Spill,
                        "failover" => FeedPolicy::Failover,
                        other => {
                            return self
                                .err(format!("unknown policy '{other}' (discard/spill/failover)"))
                        }
                    };
                }
                "description" => def.description = Some(self.string("description")?),
                other => return self.err(format!("unknown feed setting '{other}'")),
            }
            self.expect(&TokKind::Semi)?;
        }
        Ok(def)
    }

    fn group_block(&mut self) -> Result<GroupDef, ConfigError> {
        let name = self.ident("a group name")?;
        let mut members = Vec::new();
        let mut relay = None;
        self.expect(&TokKind::LBrace)?;
        loop {
            if matches!(self.peek().map(|t| &t.kind), Some(TokKind::RBrace)) {
                self.pos += 1;
                break;
            }
            let key = self.ident("'members' or 'relay'")?;
            match key.as_str() {
                "members" => loop {
                    members.push(self.ident("a member name")?);
                    match self.peek().map(|t| &t.kind) {
                        Some(TokKind::Comma) => {
                            self.pos += 1;
                        }
                        _ => break,
                    }
                },
                "relay" => relay = Some(self.string("relay endpoint")?),
                other => return self.err(format!("unknown group setting '{other}'")),
            }
            self.expect(&TokKind::Semi)?;
        }
        Ok(GroupDef {
            name,
            members,
            relay,
        })
    }

    fn subscriber_block(&mut self) -> Result<SubscriberDef, ConfigError> {
        let name = self.ident("a subscriber name")?;
        let mut def = SubscriberDef {
            name: name.clone(),
            endpoint: String::new(),
            subscriptions: Vec::new(),
            delivery: DeliveryMode::Push,
            deadline: TimeSpan::from_mins(1),
            batch: BatchSpec::per_file(),
            trigger: None,
            dest: None,
        };
        self.expect(&TokKind::LBrace)?;
        loop {
            if matches!(self.peek().map(|t| &t.kind), Some(TokKind::RBrace)) {
                self.pos += 1;
                break;
            }
            let key = self.ident("a subscriber setting")?;
            match key.as_str() {
                "endpoint" => def.endpoint = self.string("endpoint")?,
                "subscribe" => loop {
                    def.subscriptions.push(self.ident("a feed/group name")?);
                    match self.peek().map(|t| &t.kind) {
                        Some(TokKind::Comma) => {
                            self.pos += 1;
                        }
                        _ => break,
                    }
                },
                "delivery" => {
                    let v = self.ident("'push' or 'notify'")?;
                    def.delivery = match v.as_str() {
                        "push" => DeliveryMode::Push,
                        "notify" => DeliveryMode::Notify,
                        other => return self.err(format!("unknown delivery mode '{other}'")),
                    };
                }
                "deadline" => def.deadline = self.duration("deadline")?,
                "batch" => {
                    // one or both of: `count N`, `window DUR`
                    loop {
                        match self.peek().map(|t| t.kind.clone()) {
                            Some(TokKind::Ident(w)) if w == "count" => {
                                self.pos += 1;
                                let v = self.integer("batch count")?;
                                if v == 0 {
                                    return Err(ConfigError::BadValue {
                                        line: self.line(),
                                        msg: "batch count must be positive".to_string(),
                                    });
                                }
                                def.batch.count = Some(v as u32);
                            }
                            Some(TokKind::Ident(w)) if w == "window" => {
                                self.pos += 1;
                                let d = self.duration("batch window")?;
                                if d == TimeSpan::ZERO {
                                    return Err(ConfigError::BadValue {
                                        line: self.line(),
                                        msg: "batch window must be positive".to_string(),
                                    });
                                }
                                def.batch.window = Some(d);
                            }
                            _ => break,
                        }
                    }
                    if def.batch.is_per_file() {
                        return self.err("batch requires 'count N' and/or 'window DUR'");
                    }
                }
                "trigger" => {
                    let kind = self.ident("'remote' or 'local'")?;
                    let kind = match kind.as_str() {
                        "remote" => TriggerKind::Remote,
                        "local" => TriggerKind::Local,
                        other => return self.err(format!("unknown trigger kind '{other}'")),
                    };
                    let command = self.string("trigger command")?;
                    def.trigger = Some(TriggerDef { kind, command });
                }
                "dest" => {
                    let text = self.string("dest template")?;
                    let tpl = Template::parse(&text).map_err(|e| ConfigError::BadTemplate {
                        owner: format!("subscriber {name}"),
                        template: text.clone(),
                        msg: e.to_string(),
                    })?;
                    def.dest = Some(tpl);
                }
                other => return self.err(format!("unknown subscriber setting '{other}'")),
            }
            self.expect(&TokKind::Semi)?;
        }
        Ok(def)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_config() {
        let cfg = parse_config(
            r#"feed F { pattern "f_%i.csv"; }
               subscriber s { endpoint "h:1"; subscribe F; }"#,
        )
        .unwrap();
        assert_eq!(cfg.feeds.len(), 1);
        assert_eq!(cfg.subscribers[0].subscriptions, vec!["F"]);
        assert_eq!(cfg.subscribers[0].deadline, TimeSpan::from_mins(1));
    }

    #[test]
    fn empty_config_is_valid() {
        let cfg = parse_config("").unwrap();
        assert!(cfg.feeds.is_empty());
    }

    #[test]
    fn batch_hybrid_spec() {
        let cfg = parse_config(
            r#"feed F { pattern "f_%i"; }
               subscriber s { endpoint "h:1"; subscribe F; batch count 5 window 2m; }"#,
        )
        .unwrap();
        let b = cfg.subscribers[0].batch;
        assert_eq!(b.count, Some(5));
        assert_eq!(b.window, Some(TimeSpan::from_mins(2)));
    }

    #[test]
    fn syntax_errors_carry_lines() {
        let err = parse_config("feed F {\n  pattern ;\n}").unwrap_err();
        match err {
            ConfigError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn bad_pattern_reported() {
        let err = parse_config(r#"feed F { pattern "a%z"; }"#).unwrap_err();
        assert!(matches!(err, ConfigError::BadPattern { .. }));
    }

    #[test]
    fn bad_template_reported() {
        let err = parse_config(r#"feed F { pattern "a%i"; normalize "%Q"; }"#).unwrap_err();
        assert!(matches!(err, ConfigError::BadTemplate { .. }));
    }

    #[test]
    fn unknown_settings_rejected() {
        assert!(parse_config("feed F { frobnicate 3; }").is_err());
        assert!(parse_config("server { volume 11; }").is_err());
        assert!(parse_config("widget W { }").is_err());
    }

    #[test]
    fn zero_batch_count_rejected() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               subscriber s { endpoint "h"; subscribe F; batch count 0; }"#,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::BadValue { .. }));
    }

    #[test]
    fn bare_int_deadline_is_seconds() {
        let cfg = parse_config(
            r#"feed F { pattern "a%i"; }
               subscriber s { endpoint "h"; subscribe F; deadline 45; }"#,
        )
        .unwrap();
        assert_eq!(cfg.subscribers[0].deadline, TimeSpan::from_secs(45));
    }

    #[test]
    fn relay_group_parsing() {
        let cfg = parse_config(
            r#"feed F { pattern "a%i"; }
               subscriber s1 { endpoint "h:1"; subscribe F; }
               subscriber s2 { endpoint "h:2"; subscribe F; }
               group EAST { members s1, s2; relay "relay-east:9"; }"#,
        )
        .unwrap();
        let g = cfg.group("EAST").unwrap();
        assert!(g.is_relay());
        assert_eq!(g.relay.as_deref(), Some("relay-east:9"));
        assert_eq!(g.members, vec!["s1", "s2"]);
    }

    #[test]
    fn relay_must_be_quoted_endpoint() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               subscriber s1 { endpoint "h:1"; subscribe F; }
               group EAST { members s1; relay bare_ident; }"#,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::Parse { .. }));
    }

    #[test]
    fn trigger_parsing() {
        let cfg = parse_config(
            r#"feed F { pattern "a%i"; }
               subscriber s {
                   endpoint "h"; subscribe F;
                   trigger local "notify-send %N";
               }"#,
        )
        .unwrap();
        let t = cfg.subscribers[0].trigger.as_ref().unwrap();
        assert_eq!(t.kind, TriggerKind::Local);
        assert_eq!(t.command, "notify-send %N");
    }
}
