//! Rendering a [`Config`] back to configuration-language source.
//!
//! The inverse of [`crate::parse_config`]: lets a server persist its
//! *current* configuration — including subscribers added at runtime and
//! analyzer-suggested feed redefinitions approved by subscribers — so a
//! restart reloads exactly what was running (§4.2's durability story for
//! configuration, not just receipts).

use crate::types::{CompressOpt, Config, DeliveryMode, FeedPolicy, TriggerKind};
use bistro_base::TimeSpan;
use std::fmt::Write as _;

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn duration(d: TimeSpan) -> String {
    // pick the largest exact unit
    let us = d.as_micros();
    if us == 0 {
        return "0s".to_string();
    }
    if us.is_multiple_of(86_400 * 1_000_000) {
        return format!("{}d", us / (86_400 * 1_000_000));
    }
    if us.is_multiple_of(3_600 * 1_000_000) {
        return format!("{}h", us / (3_600 * 1_000_000));
    }
    if us.is_multiple_of(60 * 1_000_000) {
        return format!("{}m", us / (60 * 1_000_000));
    }
    if us.is_multiple_of(1_000_000) {
        return format!("{}s", us / 1_000_000);
    }
    format!("{}ms", us / 1_000) // sub-ms precision is not expressible; round down
}

/// Render the configuration as parseable source text.
pub fn to_source(cfg: &Config) -> String {
    let mut out = String::new();
    let s = &cfg.server;
    let _ = writeln!(out, "server {{");
    let _ = writeln!(out, "    retention {};", duration(s.retention));
    let _ = writeln!(out, "    landing {};", quote(&s.landing));
    let _ = writeln!(out, "    staging {};", quote(&s.staging));
    let _ = writeln!(out, "    scheduler_partitions {};", s.scheduler_partitions);
    let _ = writeln!(out, "    archive {};", if s.archive { "on" } else { "off" });
    let _ = writeln!(out, "}}\n");

    for f in &cfg.feeds {
        let _ = writeln!(out, "feed {} {{", f.name);
        for p in &f.patterns {
            let _ = writeln!(out, "    pattern {};", quote(p.text()));
        }
        if let Some(t) = &f.normalize {
            let _ = writeln!(out, "    normalize {};", quote(t.text()));
        }
        match f.compress {
            CompressOpt::Keep => {}
            CompressOpt::Expand => {
                let _ = writeln!(out, "    compress expand;");
            }
            CompressOpt::To(codec) => {
                let _ = writeln!(out, "    compress {codec};");
            }
        }
        if f.policy != FeedPolicy::default() {
            let _ = writeln!(out, "    policy {};", f.policy);
        }
        if let Some(d) = &f.description {
            let _ = writeln!(out, "    description {};", quote(d));
        }
        let _ = writeln!(out, "}}\n");
    }

    for g in &cfg.groups {
        let _ = writeln!(out, "group {} {{", g.name);
        let _ = writeln!(out, "    members {};", g.members.join(", "));
        if let Some(relay) = &g.relay {
            let _ = writeln!(out, "    relay {};", quote(relay));
        }
        let _ = writeln!(out, "}}\n");
    }

    for sub in &cfg.subscribers {
        let _ = writeln!(out, "subscriber {} {{", sub.name);
        let _ = writeln!(out, "    endpoint {};", quote(&sub.endpoint));
        let _ = writeln!(out, "    subscribe {};", sub.subscriptions.join(", "));
        let _ = writeln!(
            out,
            "    delivery {};",
            match sub.delivery {
                DeliveryMode::Push => "push",
                DeliveryMode::Notify => "notify",
            }
        );
        let _ = writeln!(out, "    deadline {};", duration(sub.deadline));
        if !sub.batch.is_per_file() {
            let mut parts = String::new();
            if let Some(c) = sub.batch.count {
                let _ = write!(parts, "count {c}");
            }
            if let Some(w) = sub.batch.window {
                if !parts.is_empty() {
                    parts.push(' ');
                }
                let _ = write!(parts, "window {}", duration(w));
            }
            let _ = writeln!(out, "    batch {parts};");
        }
        if let Some(t) = &sub.trigger {
            let _ = writeln!(
                out,
                "    trigger {} {};",
                match t.kind {
                    TriggerKind::Remote => "remote",
                    TriggerKind::Local => "local",
                },
                quote(&t.command)
            );
        }
        if let Some(d) = &sub.dest {
            let _ = writeln!(out, "    dest {};", quote(d.text()));
        }
        let _ = writeln!(out, "}}\n");
    }
    out
}

impl Config {
    /// Render as parseable configuration source (see [`to_source`]).
    pub fn to_source(&self) -> String {
        to_source(self)
    }
}

#[cfg(test)]
mod tests {

    use crate::parse_config;

    const FULL: &str = r#"
        server { retention 7d; landing "in"; staging "out"; scheduler_partitions 4; archive on; }
        feed SNMP/MEMORY {
            pattern "MEMORY_poller%i_%Y%m%d.gz";
            pattern "MEMORY_Poller%i_%Y%m%d.gz";
            normalize "%Y/%m/%d/%f";
            compress lzss;
            description "memory stats \"quoted\"";
        }
        feed SNMP/CPU { pattern "CPU_%i.txt"; compress expand; policy spill; }
        group CORE { members SNMP/MEMORY, SNMP/CPU; }
        group EDGE { members wh, wh2; relay "relay-east:9"; }
        subscriber wh {
            endpoint "wh-host:7070";
            subscribe CORE;
            delivery notify;
            deadline 90s;
            batch count 3 window 5m;
            trigger remote "load %N %f";
            dest "incoming/%N/%f";
        }
        subscriber wh2 { endpoint "wh2-host:7070"; subscribe CORE; }
    "#;

    #[test]
    fn roundtrip_preserves_everything() {
        let cfg = parse_config(FULL).unwrap();
        let rendered = cfg.to_source();
        let reparsed = parse_config(&rendered)
            .unwrap_or_else(|e| panic!("rendered config failed to parse: {e}\n{rendered}"));

        assert_eq!(reparsed.server.retention, cfg.server.retention);
        assert_eq!(reparsed.server.landing, cfg.server.landing);
        assert_eq!(reparsed.server.scheduler_partitions, 4);
        assert!(reparsed.server.archive);

        assert_eq!(reparsed.feeds.len(), cfg.feeds.len());
        let mem = reparsed.feed("SNMP/MEMORY").unwrap();
        assert_eq!(mem.patterns.len(), 2);
        assert_eq!(mem.normalize.as_ref().unwrap().text(), "%Y/%m/%d/%f");
        assert_eq!(mem.description.as_deref(), Some("memory stats \"quoted\""));
        // default policy is elided from rendering; non-defaults survive
        assert_eq!(mem.policy, crate::types::FeedPolicy::Failover);
        assert_eq!(
            reparsed.feed("SNMP/CPU").unwrap().policy,
            crate::types::FeedPolicy::Spill
        );

        assert_eq!(reparsed.groups.len(), 2);
        let edge = reparsed.group("EDGE").unwrap();
        assert_eq!(edge.relay.as_deref(), Some("relay-east:9"));
        assert_eq!(edge.members, vec!["wh", "wh2"]);
        let sub = reparsed.subscriber("wh").unwrap();
        assert_eq!(sub.batch.count, Some(3));
        assert_eq!(sub.deadline, cfg.subscriber("wh").unwrap().deadline);
        assert_eq!(sub.dest.as_ref().unwrap().text(), "incoming/%N/%f");

        // double roundtrip is a fixed point
        assert_eq!(parse_config(&rendered).unwrap().to_source(), rendered);
    }

    #[test]
    fn default_config_roundtrips() {
        let cfg = parse_config("").unwrap();
        let reparsed = parse_config(&cfg.to_source()).unwrap();
        assert_eq!(reparsed.feeds.len(), 0);
        assert_eq!(reparsed.server.retention, cfg.server.retention);
    }
}
