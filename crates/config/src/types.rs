//! Configuration data model.

use bistro_base::TimeSpan;
use bistro_compress::Codec;
use bistro_pattern::{Pattern, Template};
use std::collections::BTreeSet;
use std::fmt;

/// What the normalizer does about compression for a feed (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CompressOpt {
    /// Leave files exactly as the source delivered them.
    #[default]
    Keep,
    /// Decompress on ingest (subscribers receive expanded data).
    Expand,
    /// (Re-)compress with the given codec before staging.
    To(Codec),
}

impl fmt::Display for CompressOpt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressOpt::Keep => write!(f, "keep"),
            CompressOpt::Expand => write!(f, "expand"),
            CompressOpt::To(c) => write!(f, "{c}"),
        }
    }
}

/// What happens to a feed's ingest while its home server is down
/// (cluster fault-tolerance policy, after the AsterixDB feeds taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FeedPolicy {
    /// Drop files deposited while the home is unreachable.
    Discard,
    /// Buffer ("spill") files at the ingress and replay them when the
    /// home server comes back; the feed is never re-homed.
    Spill,
    /// Re-home the feed's group to a standby server: deposits are
    /// replicated to the standby, subscribers are re-homed on failure,
    /// and the standby backfills from the failed server's receipts.
    #[default]
    Failover,
}

impl fmt::Display for FeedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedPolicy::Discard => write!(f, "discard"),
            FeedPolicy::Spill => write!(f, "spill"),
            FeedPolicy::Failover => write!(f, "failover"),
        }
    }
}

/// A consumer feed definition (§3.1).
#[derive(Clone, Debug)]
pub struct FeedDef {
    /// Hierarchical name, e.g. `SNMP/MEMORY`.
    pub name: String,
    /// Filename patterns; a file belongs to the feed if any pattern
    /// matches.
    pub patterns: Vec<Pattern>,
    /// Optional staging-layout template.
    pub normalize: Option<Template>,
    /// Compression handling.
    pub compress: CompressOpt,
    /// Cluster fault-tolerance policy (ignored by a singleton server).
    pub policy: FeedPolicy,
    /// Free-text description.
    pub description: Option<String>,
}

/// An explicit (non-prefix) feed group, or — when `relay` is set — a
/// **subscriber group with a shared delivery plan** (§3 delivery
/// network): members are subscriber names and the server delivers each
/// file once to the relay endpoint, which fans out to the members and
/// reports coverage with a compact ack bitmap.
#[derive(Clone, Debug)]
pub struct GroupDef {
    /// Group name.
    pub name: String,
    /// Member feed or group names (feed group), or member subscriber
    /// names (relay group).
    pub members: Vec<String>,
    /// Relay endpoint for shared delivery; `None` = plain feed group.
    pub relay: Option<String>,
}

impl GroupDef {
    /// True if this group is a shared-delivery subscriber group.
    pub fn is_relay(&self) -> bool {
        self.relay.is_some()
    }
}

/// How files reach a subscriber (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Bistro pushes file contents to the subscriber.
    #[default]
    Push,
    /// Hybrid push-pull: Bistro pushes a notification; the subscriber
    /// retrieves the file at a time of its choosing.
    Notify,
}

/// Where a trigger program runs (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerKind {
    /// Invoked on the subscriber's host on delivery.
    Remote,
    /// Invoked locally by the Bistro server.
    Local,
}

/// A trigger registration.
#[derive(Clone, Debug)]
pub struct TriggerDef {
    /// Where the program runs.
    pub kind: TriggerKind,
    /// The command line (template specifiers `%N`/`%f` are expanded by
    /// the transport layer at invocation time).
    pub command: String,
}

/// Batch boundary specification (§2.3, §4.1): files accumulate into a
/// batch until `count` files have arrived, `window` has elapsed since the
/// batch opened, or the source emits an explicit end-of-batch punctuation.
/// When both `count` and `window` are set the spec is the paper's
/// recommended *hybrid*: "a combination of count and time-based batch
/// specification works well in practice".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchSpec {
    /// Close the batch after this many files.
    pub count: Option<u32>,
    /// Close the batch this long after it opened.
    pub window: Option<TimeSpan>,
}

impl BatchSpec {
    /// Per-file notification (no batching): the default.
    pub fn per_file() -> BatchSpec {
        BatchSpec::default()
    }

    /// True if no batching is configured (per-file triggers).
    pub fn is_per_file(&self) -> bool {
        self.count.is_none() && self.window.is_none()
    }
}

/// A subscriber definition (§3.1).
#[derive(Clone, Debug)]
pub struct SubscriberDef {
    /// Subscriber name.
    pub name: String,
    /// Network endpoint (host:port in the simulated network).
    pub endpoint: String,
    /// Subscribed feed / group / hierarchy-prefix names.
    pub subscriptions: Vec<String>,
    /// Push or hybrid delivery.
    pub delivery: DeliveryMode,
    /// Per-file tardiness target driving the real-time scheduler (§4.3).
    pub deadline: TimeSpan,
    /// Batch spec for notifications.
    pub batch: BatchSpec,
    /// Optional trigger.
    pub trigger: Option<TriggerDef>,
    /// Destination-path template at the subscriber (the "landing zone"
    /// the subscriber controls — rsync's loss of destination control is
    /// one of the §2.2.2 complaints).
    pub dest: Option<Template>,
}

/// Server-wide settings.
#[derive(Clone, Debug)]
pub struct ServerDef {
    /// How long received files are retained before expiration (§4.2).
    pub retention: TimeSpan,
    /// Landing-zone directory (relative to the store root).
    pub landing: String,
    /// Staging directory (relative to the store root).
    pub staging: String,
    /// Number of responsiveness partitions in the delivery scheduler
    /// (§4.3).
    pub scheduler_partitions: usize,
    /// Whether expired files are shipped to the archiver (§4.2).
    pub archive: bool,
}

impl Default for ServerDef {
    fn default() -> Self {
        ServerDef {
            retention: TimeSpan::from_days(7),
            landing: "landing".to_string(),
            staging: "staging".to_string(),
            scheduler_partitions: 3,
            archive: false,
        }
    }
}

/// A fully parsed and validated configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Server-wide settings.
    pub server: ServerDef,
    /// All feed definitions.
    pub feeds: Vec<FeedDef>,
    /// All explicit groups.
    pub groups: Vec<GroupDef>,
    /// All subscribers.
    pub subscribers: Vec<SubscriberDef>,
}

impl Config {
    /// Look up a feed by exact name.
    pub fn feed(&self, name: &str) -> Option<&FeedDef> {
        self.feeds.iter().find(|f| f.name == name)
    }

    /// Look up a group by exact name.
    pub fn group(&self, name: &str) -> Option<&GroupDef> {
        self.groups.iter().find(|g| g.name == name)
    }

    /// Look up a subscriber by exact name.
    pub fn subscriber(&self, name: &str) -> Option<&SubscriberDef> {
        self.subscribers.iter().find(|s| s.name == name)
    }

    /// Expand a subscription target (feed name, group name, or hierarchy
    /// prefix) into the set of concrete feed names, recursively for
    /// groups. Returns an error if the name resolves to nothing.
    pub fn resolve_subscription(&self, target: &str) -> Result<Vec<String>, ConfigError> {
        let mut out = BTreeSet::new();
        let mut visiting = Vec::new();
        self.resolve_into(target, &mut out, &mut visiting)?;
        Ok(out.into_iter().collect())
    }

    fn resolve_into(
        &self,
        target: &str,
        out: &mut BTreeSet<String>,
        visiting: &mut Vec<String>,
    ) -> Result<(), ConfigError> {
        if visiting.iter().any(|v| v == target) {
            return Err(ConfigError::GroupCycle(target.to_string()));
        }
        if self.feed(target).is_some() {
            out.insert(target.to_string());
            return Ok(());
        }
        // relay groups name subscribers, not feeds: they are delivery
        // plans, never subscription targets
        if let Some(group) = self.group(target).filter(|g| !g.is_relay()) {
            visiting.push(target.to_string());
            for m in &group.members {
                self.resolve_into(m, out, visiting)?;
            }
            visiting.pop();
            return Ok(());
        }
        // hierarchy prefix: all feeds under "target/"
        let prefix = format!("{target}/");
        let mut any = false;
        for f in &self.feeds {
            if f.name.starts_with(&prefix) {
                out.insert(f.name.clone());
                any = true;
            }
        }
        if any {
            Ok(())
        } else {
            Err(ConfigError::UnknownSubscription(target.to_string()))
        }
    }

    /// All concrete feed names a subscriber receives.
    pub fn subscriber_feeds(&self, subscriber: &str) -> Result<Vec<String>, ConfigError> {
        let sub = self
            .subscriber(subscriber)
            .ok_or_else(|| ConfigError::UnknownSubscriber(subscriber.to_string()))?;
        let mut out = BTreeSet::new();
        for target in &sub.subscriptions {
            let mut visiting = Vec::new();
            self.resolve_into(target, &mut out, &mut visiting)?;
        }
        Ok(out.into_iter().collect())
    }
}

/// Errors from parsing or validating a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Lexical error at a line.
    Lex {
        /// 1-based line number.
        line: usize,
        /// Description.
        msg: String,
    },
    /// Syntax error at a line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        msg: String,
    },
    /// A feed pattern failed to parse.
    BadPattern {
        /// Owning feed.
        feed: String,
        /// Pattern text.
        pattern: String,
        /// Underlying error.
        msg: String,
    },
    /// A normalize/dest template failed to parse.
    BadTemplate {
        /// Owning feed or subscriber.
        owner: String,
        /// Template text.
        template: String,
        /// Underlying error.
        msg: String,
    },
    /// Two definitions share a name.
    DuplicateName(String),
    /// A subscription target resolved to nothing.
    UnknownSubscription(String),
    /// Unknown subscriber name.
    UnknownSubscriber(String),
    /// Group membership is cyclic.
    GroupCycle(String),
    /// A feed has no patterns.
    NoPatterns(String),
    /// A subscriber has no subscriptions.
    NoSubscriptions(String),
    /// Invalid numeric value.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// Description.
        msg: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Lex { line, msg } => write!(f, "line {line}: lexical error: {msg}"),
            ConfigError::Parse { line, msg } => write!(f, "line {line}: syntax error: {msg}"),
            ConfigError::BadPattern { feed, pattern, msg } => {
                write!(f, "feed {feed}: bad pattern {pattern:?}: {msg}")
            }
            ConfigError::BadTemplate {
                owner,
                template,
                msg,
            } => write!(f, "{owner}: bad template {template:?}: {msg}"),
            ConfigError::DuplicateName(n) => write!(f, "duplicate definition: {n}"),
            ConfigError::UnknownSubscription(n) => {
                write!(f, "subscription target resolves to no feeds: {n}")
            }
            ConfigError::UnknownSubscriber(n) => write!(f, "unknown subscriber: {n}"),
            ConfigError::GroupCycle(n) => write!(f, "cyclic group membership at: {n}"),
            ConfigError::NoPatterns(n) => write!(f, "feed {n} has no patterns"),
            ConfigError::NoSubscriptions(n) => write!(f, "subscriber {n} has no subscriptions"),
            ConfigError::BadValue { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}
