//! # bistro-config
//!
//! The Bistro configuration language (paper §3.1).
//!
//! "Bistro uses a well-defined flexible configuration language to formally
//! specify the properties of all managed data feeds and subscribers" —
//! replacing the "collection of ad-hoc scripts" that homegrown feed
//! managers accumulate.
//!
//! The language is a small block-structured text format:
//!
//! ```text
//! server {
//!     retention 7d;
//!     scheduler_partitions 3;
//! }
//!
//! feed SNMP/MEMORY {
//!     pattern "MEMORY_poller%i_%Y%m%d.gz";
//!     normalize "%Y/%m/%d/%f";
//!     compress lzss;
//!     description "router memory utilization";
//! }
//!
//! group SNMP_CORE {
//!     members SNMP/MEMORY, SNMP/CPU;
//! }
//!
//! subscriber warehouse_dallas {
//!     endpoint "dallas:7070";
//!     subscribe SNMP;                  # a feed, group, or hierarchy prefix
//!     delivery push;                   # push | notify (hybrid push-pull)
//!     deadline 30s;
//!     batch count 3 window 5m;         # hybrid batch spec (§4.1)
//!     trigger remote "load_partition %N";
//!     dest "incoming/%N/%f";
//! }
//! ```
//!
//! Feed names are hierarchical paths: subscribing to `SNMP` subscribes to
//! every feed under `SNMP/…` — this is how the paper's "feed groups
//! forming arbitrarily deep feed hierarchy" are expressed. Explicit
//! `group` blocks cover non-prefix groupings.

pub mod lexer;
pub mod parser;
pub mod render;
pub mod types;
pub mod validate;

pub use parser::parse_config;
pub use render::to_source;
pub use types::{
    BatchSpec, CompressOpt, Config, ConfigError, DeliveryMode, FeedDef, FeedPolicy, GroupDef,
    ServerDef, SubscriberDef, TriggerDef, TriggerKind,
};

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::TimeSpan;

    const FULL_EXAMPLE: &str = r#"
        # Bistro server configuration — SNMP measurement scenario from §1
        server {
            retention 7d;
            landing "landing";
            staging "staging";
            scheduler_partitions 3;
            archive on;
        }

        feed SNMP/BPS {
            pattern "BPS_poller%i_%Y%m%d%H%M.csv.gz";
            description "bytes per second stats";
        }

        feed SNMP/PPS {
            pattern "PPS_poller%i_%Y%m%d%H%M.csv.gz";
        }

        feed SNMP/CPU {
            pattern "CPU_POLL%i_%Y%m%d%H%M.txt";
            normalize "%Y/%m/%d/%f";
            compress lzss;
        }

        feed SNMP/MEMORY {
            pattern "MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz";
            pattern "MEMORY_poller%i_%Y%m%d.gz";
            normalize "%Y/%m/%d/%H/%f";
            compress keep;
        }

        group BILLING_SET {
            members SNMP/BPS;
        }

        subscriber billing {
            endpoint "billing-host:7070";
            subscribe BILLING_SET;
            delivery push;
            deadline 60s;
            batch count 3 window 5m;
            trigger remote "ingest_bps %N %f";
        }

        subscriber capacity_planning {
            endpoint "capacity:7070";
            subscribe SNMP;
            delivery notify;
            deadline 5m;
            dest "incoming/%N/%f";
        }
    "#;

    #[test]
    fn full_example_parses_and_validates() {
        let cfg = parse_config(FULL_EXAMPLE).unwrap();
        assert_eq!(cfg.feeds.len(), 4);
        assert_eq!(cfg.groups.len(), 1);
        assert_eq!(cfg.subscribers.len(), 2);
        assert_eq!(cfg.server.retention, TimeSpan::from_days(7));
        assert_eq!(cfg.server.scheduler_partitions, 3);
        assert!(cfg.server.archive);

        let mem = cfg.feed("SNMP/MEMORY").unwrap();
        assert_eq!(mem.patterns.len(), 2);
        assert!(mem.normalize.is_some());

        let billing = &cfg.subscribers[0];
        assert_eq!(billing.batch.count, Some(3));
        assert_eq!(billing.batch.window, Some(TimeSpan::from_mins(5)));
        assert_eq!(billing.deadline, TimeSpan::from_secs(60));
    }

    #[test]
    fn subscription_resolution() {
        let cfg = parse_config(FULL_EXAMPLE).unwrap();
        // group expands to its members
        let feeds = cfg.resolve_subscription("BILLING_SET").unwrap();
        assert_eq!(feeds, vec!["SNMP/BPS"]);
        // hierarchy prefix expands to all feeds under it
        let mut feeds = cfg.resolve_subscription("SNMP").unwrap();
        feeds.sort();
        assert_eq!(
            feeds,
            vec!["SNMP/BPS", "SNMP/CPU", "SNMP/MEMORY", "SNMP/PPS"]
        );
        // exact feed name resolves to itself
        assert_eq!(
            cfg.resolve_subscription("SNMP/CPU").unwrap(),
            vec!["SNMP/CPU"]
        );
    }

    #[test]
    fn subscriber_feeds_expansion() {
        let cfg = parse_config(FULL_EXAMPLE).unwrap();
        let feeds = cfg.subscriber_feeds("capacity_planning").unwrap();
        assert_eq!(feeds.len(), 4);
    }
}
