//! Lexer for the configuration language.

use crate::types::ConfigError;
use bistro_base::TimeSpan;
use std::fmt;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: usize,
    /// The token kind and payload.
    pub kind: TokKind,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (may contain `/` for feed paths, and `.`,
    /// `-`, `_` within segments).
    Ident(String),
    /// Double-quoted string literal (supports `\"` and `\\` escapes).
    Str(String),
    /// Bare integer.
    Int(u64),
    /// Integer with a duration suffix (`ms`, `s`, `m`, `h`, `d`).
    Duration(TimeSpan),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokKind::Str(s) => write!(f, "string {s:?}"),
            TokKind::Int(v) => write!(f, "integer {v}"),
            TokKind::Duration(d) => write!(f, "duration {d}"),
            TokKind::LBrace => write!(f, "'{{'"),
            TokKind::RBrace => write!(f, "'}}'"),
            TokKind::Semi => write!(f, "';'"),
            TokKind::Comma => write!(f, "','"),
        }
    }
}

fn ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '/' | '.' | '-')
}

/// Tokenize a configuration source text.
pub fn lex(src: &str) -> Result<Vec<Tok>, ConfigError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // comment to end of line
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                chars.next();
                out.push(Tok {
                    line,
                    kind: TokKind::LBrace,
                });
            }
            '}' => {
                chars.next();
                out.push(Tok {
                    line,
                    kind: TokKind::RBrace,
                });
            }
            ';' => {
                chars.next();
                out.push(Tok {
                    line,
                    kind: TokKind::Semi,
                });
            }
            ',' => {
                chars.next();
                out.push(Tok {
                    line,
                    kind: TokKind::Comma,
                });
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some(other) => {
                                return Err(ConfigError::Lex {
                                    line,
                                    msg: format!("unknown escape '\\{other}'"),
                                })
                            }
                            None => {
                                return Err(ConfigError::Lex {
                                    line,
                                    msg: "unterminated string".to_string(),
                                })
                            }
                        },
                        '\n' => {
                            return Err(ConfigError::Lex {
                                line,
                                msg: "newline in string literal".to_string(),
                            })
                        }
                        other => s.push(other),
                    }
                }
                if !closed {
                    return Err(ConfigError::Lex {
                        line,
                        msg: "unterminated string".to_string(),
                    });
                }
                out.push(Tok {
                    line,
                    kind: TokKind::Str(s),
                });
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: u64 = num.parse().map_err(|_| ConfigError::Lex {
                    line,
                    msg: format!("integer out of range: {num}"),
                })?;
                // optional unit suffix
                let mut suffix = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphabetic() {
                        suffix.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let kind = match suffix.as_str() {
                    "" => TokKind::Int(value),
                    "ms" => TokKind::Duration(TimeSpan::from_millis(value)),
                    "s" => TokKind::Duration(TimeSpan::from_secs(value)),
                    "m" => TokKind::Duration(TimeSpan::from_mins(value)),
                    "h" => TokKind::Duration(TimeSpan::from_hours(value)),
                    "d" => TokKind::Duration(TimeSpan::from_days(value)),
                    other => {
                        return Err(ConfigError::Lex {
                            line,
                            msg: format!("unknown duration unit '{other}'"),
                        })
                    }
                };
                out.push(Tok { line, kind });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if ident_char(c) {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok {
                    line,
                    kind: TokKind::Ident(s),
                });
            }
            other => {
                return Err(ConfigError::Lex {
                    line,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basic_block() {
        let toks = lex("feed SNMP/BPS { pattern \"a%i\"; }").unwrap();
        let kinds: Vec<_> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Ident("feed".into()),
                TokKind::Ident("SNMP/BPS".into()),
                TokKind::LBrace,
                TokKind::Ident("pattern".into()),
                TokKind::Str("a%i".into()),
                TokKind::Semi,
                TokKind::RBrace,
            ]
        );
    }

    #[test]
    fn lex_durations_and_ints() {
        let toks = lex("7d 30s 5m 2h 150ms 42").unwrap();
        let kinds: Vec<_> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Duration(TimeSpan::from_days(7)),
                TokKind::Duration(TimeSpan::from_secs(30)),
                TokKind::Duration(TimeSpan::from_mins(5)),
                TokKind::Duration(TimeSpan::from_hours(2)),
                TokKind::Duration(TimeSpan::from_millis(150)),
                TokKind::Int(42),
            ]
        );
    }

    #[test]
    fn lex_comments_and_lines() {
        let toks = lex("# header\nfeed X {\n# inner\n}\n").unwrap();
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks.last().unwrap().line, 4);
    }

    #[test]
    fn lex_string_escapes() {
        let toks = lex(r#""a\"b\\c""#).unwrap();
        assert_eq!(toks[0].kind, TokKind::Str("a\"b\\c".into()));
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(lex("\"open"), Err(ConfigError::Lex { .. })));
        assert!(matches!(lex("5q"), Err(ConfigError::Lex { .. })));
        assert!(matches!(lex("@"), Err(ConfigError::Lex { .. })));
        assert!(matches!(lex("\"a\nb\""), Err(ConfigError::Lex { .. })));
        assert!(matches!(lex(r#""a\qb""#), Err(ConfigError::Lex { .. })));
    }

    #[test]
    fn lex_feed_paths() {
        let toks = lex("SNMP/MEMORY/POLLER-1_v2.5").unwrap();
        assert_eq!(
            toks[0].kind,
            TokKind::Ident("SNMP/MEMORY/POLLER-1_v2.5".into())
        );
    }
}
