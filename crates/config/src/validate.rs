//! Semantic validation of a parsed configuration.
//!
//! The paper's motivation for a formal configuration language is exactly
//! this: ad-hoc script collections have an "increasingly high probability
//! of configuration mistakes". Validation catches them at load time:
//! duplicate names, feeds without patterns, dangling subscriptions,
//! cyclic groups, and subscribers with nothing to receive.

use crate::types::{Config, ConfigError};
use std::collections::BTreeSet;

/// Validate cross-references and well-formedness. Called by
/// [`crate::parse_config`]; callers constructing a [`Config`]
/// programmatically should call it too.
pub fn validate(cfg: &Config) -> Result<(), ConfigError> {
    // unique names across feeds, groups and subscribers (shared namespace
    // keeps subscription targets unambiguous)
    let mut names = BTreeSet::new();
    for f in &cfg.feeds {
        if !names.insert(f.name.as_str()) {
            return Err(ConfigError::DuplicateName(f.name.clone()));
        }
    }
    for g in &cfg.groups {
        if !names.insert(g.name.as_str()) {
            return Err(ConfigError::DuplicateName(g.name.clone()));
        }
    }
    let mut sub_names = BTreeSet::new();
    for s in &cfg.subscribers {
        if !sub_names.insert(s.name.as_str()) {
            return Err(ConfigError::DuplicateName(s.name.clone()));
        }
    }

    for f in &cfg.feeds {
        if f.patterns.is_empty() {
            return Err(ConfigError::NoPatterns(f.name.clone()));
        }
    }

    // feed-group members and cycles are checked by resolution; relay
    // groups instead name subscribers, each belonging to at most one
    // relay group (a member with two relays would be delivered twice)
    let mut relayed = BTreeSet::new();
    for g in &cfg.groups {
        if g.is_relay() {
            if g.members.is_empty() {
                return Err(ConfigError::NoSubscriptions(g.name.clone()));
            }
            for m in &g.members {
                // membership via the name set built above: relay groups
                // can be very wide, and a per-member linear scan of the
                // subscriber list would make validation quadratic
                if !sub_names.contains(m.as_str()) {
                    return Err(ConfigError::UnknownSubscriber(m.clone()));
                }
                if !relayed.insert(m.as_str()) {
                    return Err(ConfigError::DuplicateName(m.clone()));
                }
            }
        } else {
            cfg.resolve_subscription(&g.name)?;
        }
    }

    for s in &cfg.subscribers {
        if s.subscriptions.is_empty() {
            return Err(ConfigError::NoSubscriptions(s.name.clone()));
        }
        for target in &s.subscriptions {
            cfg.resolve_subscription(target)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_config;
    use crate::types::ConfigError;

    #[test]
    fn duplicate_feed_rejected() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               feed F { pattern "b%i"; }"#,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::DuplicateName("F".to_string()));
    }

    #[test]
    fn duplicate_across_kinds_rejected() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               group F { members F; }"#,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::DuplicateName("F".to_string()));
    }

    #[test]
    fn feed_without_pattern_rejected() {
        let err = parse_config("feed F { }").unwrap_err();
        assert_eq!(err, ConfigError::NoPatterns("F".to_string()));
    }

    #[test]
    fn dangling_subscription_rejected() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               subscriber s { endpoint "h"; subscribe NOPE; }"#,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::UnknownSubscription("NOPE".to_string()));
    }

    #[test]
    fn empty_subscriber_rejected() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               subscriber s { endpoint "h"; }"#,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::NoSubscriptions("s".to_string()));
    }

    #[test]
    fn group_cycle_rejected() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               group A { members B; }
               group B { members A; }"#,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::GroupCycle(_)));
    }

    #[test]
    fn nested_groups_resolve() {
        let cfg = parse_config(
            r#"feed X/ONE { pattern "a%i"; }
               feed X/TWO { pattern "b%i"; }
               feed Y { pattern "c%i"; }
               group INNER { members X; }
               group OUTER { members INNER, Y; }
               subscriber s { endpoint "h"; subscribe OUTER; }"#,
        )
        .unwrap();
        let feeds = cfg.subscriber_feeds("s").unwrap();
        assert_eq!(feeds, vec!["X/ONE", "X/TWO", "Y"]);
    }

    #[test]
    fn relay_group_members_must_be_subscribers() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               subscriber s1 { endpoint "h:1"; subscribe F; }
               group G { members s1, ghost; relay "r:1"; }"#,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::UnknownSubscriber("ghost".to_string()));
    }

    #[test]
    fn relay_group_double_membership_rejected() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               subscriber s1 { endpoint "h:1"; subscribe F; }
               group A { members s1; relay "r:1"; }
               group B { members s1; relay "r:2"; }"#,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::DuplicateName("s1".to_string()));
    }

    #[test]
    fn relay_group_needs_members() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               group G { relay "r:1"; }"#,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::NoSubscriptions("G".to_string()));
    }

    #[test]
    fn relay_group_is_not_a_subscription_target() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               subscriber s1 { endpoint "h:1"; subscribe F; }
               subscriber s2 { endpoint "h:2"; subscribe G; }
               group G { members s1; relay "r:1"; }"#,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::UnknownSubscription("G".to_string()));
    }

    #[test]
    fn group_member_missing_rejected() {
        let err = parse_config(
            r#"feed F { pattern "a%i"; }
               group G { members MISSING; }"#,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::UnknownSubscription("MISSING".to_string()));
    }
}
