//! Property tests: config parse → render → parse is lossless, and the
//! parser never panics on arbitrary input.

use bistro_base::prop::{self, Runner};
use bistro_base::rng::Rng;
use bistro_base::{prop_assert_eq, TimeSpan};
use bistro_config::{parse_config, BatchSpec, DeliveryMode};
use std::collections::BTreeSet;

fn feed_name(rng: &mut Rng) -> String {
    let segments = rng.gen_range(1usize..=3);
    (0..segments)
        .map(|_| prop::string(rng, "A-Z", 2..=8))
        .collect::<Vec<_>>()
        .join("/")
}

fn valid_feed_name(n: &str) -> bool {
    !n.is_empty()
        && n.split('/')
            .all(|seg| !seg.is_empty() && seg.chars().all(|c| c.is_ascii_alphabetic()))
}

#[test]
fn parser_never_panics() {
    Runner::new("parser_never_panics").cases(64).run(
        |rng| prop::string(rng, " -~\n", 0..=200),
        |src| {
            let _ = parse_config(src);
            Ok(())
        },
    );
}

#[test]
fn render_roundtrip() {
    Runner::new("render_roundtrip").cases(64).run(
        |rng| {
            let names: BTreeSet<String> = {
                let n = rng.gen_range(1usize..=5);
                (0..n).map(|_| feed_name(rng)).collect()
            };
            (
                names.into_iter().collect::<Vec<String>>(),
                rng.gen_range(1u64..7200),
                prop::option_of(rng, |r| r.gen_range(1u32..20)),
                prop::option_of(rng, |r| r.gen_range(1u64..120)),
                rng.gen_bool(0.5),
            )
        },
        |(names, deadline_s, count, window_m, notify)| {
            // shrunk values can leave the generator's domain; skip those
            let distinct: BTreeSet<&String> = names.iter().collect();
            if names.is_empty()
                || distinct.len() != names.len()
                || !names.iter().all(|n| valid_feed_name(n))
                || *deadline_s == 0
                || *count == Some(0)
                || *window_m == Some(0)
            {
                return Ok(());
            }
            let (deadline_s, count, window_m, notify) = (*deadline_s, *count, *window_m, *notify);
            let mut src = String::new();
            for n in names {
                src.push_str(&format!(
                    "feed {n} {{ pattern \"{}_p%i_%Y%m%d.csv\"; }}\n",
                    n.replace('/', "_")
                ));
            }
            src.push_str(&format!(
                "subscriber s {{ endpoint \"h:1\"; subscribe {}; delivery {}; deadline {deadline_s}s;",
                names.join(", "),
                if notify { "notify" } else { "push" },
            ));
            match (count, window_m) {
                (Some(c), Some(w)) => src.push_str(&format!(" batch count {c} window {w}m;")),
                (Some(c), None) => src.push_str(&format!(" batch count {c};")),
                (None, Some(w)) => src.push_str(&format!(" batch window {w}m;")),
                (None, None) => {}
            }
            src.push_str(" }\n");

            let cfg = parse_config(&src).unwrap();
            let rendered = cfg.to_source();
            let reparsed = parse_config(&rendered).expect("rendered config parses");

            prop_assert_eq!(reparsed.feeds.len(), cfg.feeds.len());
            let sub = reparsed.subscriber("s").unwrap();
            prop_assert_eq!(sub.deadline, TimeSpan::from_secs(deadline_s));
            prop_assert_eq!(
                sub.delivery,
                if notify {
                    DeliveryMode::Notify
                } else {
                    DeliveryMode::Push
                }
            );
            let expect_batch = BatchSpec {
                count,
                window: window_m.map(TimeSpan::from_mins),
            };
            prop_assert_eq!(sub.batch, expect_batch);
            // idempotence
            prop_assert_eq!(parse_config(&rendered).unwrap().to_source(), rendered);
            Ok(())
        },
    );
}
