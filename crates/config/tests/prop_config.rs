//! Property tests: config parse → render → parse is lossless, and the
//! parser never panics on arbitrary input.

use bistro_base::TimeSpan;
use bistro_config::{parse_config, BatchSpec, DeliveryMode};
use proptest::prelude::*;

fn feed_name() -> impl Strategy<Value = String> {
    "[A-Z]{2,8}(/[A-Z]{2,8}){0,2}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_never_panics(src in "[ -~\\n]{0,200}") {
        let _ = parse_config(&src);
    }

    #[test]
    fn render_roundtrip(
        names in proptest::collection::btree_set(feed_name(), 1..6),
        deadline_s in 1u64..7200,
        count in proptest::option::of(1u32..20),
        window_m in proptest::option::of(1u64..120),
        notify in any::<bool>(),
    ) {
        let names: Vec<String> = names.into_iter().collect();
        let mut src = String::new();
        for n in &names {
            src.push_str(&format!("feed {n} {{ pattern \"{}_p%i_%Y%m%d.csv\"; }}\n",
                n.replace('/', "_")));
        }
        src.push_str(&format!(
            "subscriber s {{ endpoint \"h:1\"; subscribe {}; delivery {}; deadline {deadline_s}s;",
            names.join(", "),
            if notify { "notify" } else { "push" },
        ));
        match (count, window_m) {
            (Some(c), Some(w)) => src.push_str(&format!(" batch count {c} window {w}m;")),
            (Some(c), None) => src.push_str(&format!(" batch count {c};")),
            (None, Some(w)) => src.push_str(&format!(" batch window {w}m;")),
            (None, None) => {}
        }
        src.push_str(" }\n");

        let cfg = parse_config(&src).unwrap();
        let rendered = cfg.to_source();
        let reparsed = parse_config(&rendered).expect("rendered config parses");

        prop_assert_eq!(reparsed.feeds.len(), cfg.feeds.len());
        let sub = reparsed.subscriber("s").unwrap();
        prop_assert_eq!(sub.deadline, TimeSpan::from_secs(deadline_s));
        prop_assert_eq!(sub.delivery, if notify { DeliveryMode::Notify } else { DeliveryMode::Push });
        let expect_batch = BatchSpec {
            count,
            window: window_m.map(TimeSpan::from_mins),
        };
        prop_assert_eq!(sub.batch, expect_batch);
        // idempotence
        prop_assert_eq!(parse_config(&rendered).unwrap().to_source(), rendered);
    }
}
