//! Property-based tests: every codec must roundtrip arbitrary bytes, and
//! the container must reject arbitrary corruption.

use bistro_compress::{container, Codec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rle_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = Codec::Rle.compress(&data);
        prop_assert_eq!(Codec::Rle.decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = Codec::Lzss.compress(&data);
        prop_assert_eq!(Codec::Lzss.decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrips_low_entropy(data in proptest::collection::vec(0u8..4, 0..8192)) {
        let c = Codec::Lzss.compress(&data);
        prop_assert!(c.len() <= data.len() + data.len() / 4 + 16);
        prop_assert_eq!(Codec::Lzss.decompress(&c).unwrap(), data);
    }

    #[test]
    fn container_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        tag in 0u8..3,
    ) {
        let codec = Codec::from_tag(tag).unwrap();
        let sealed = container::seal(codec, &data);
        prop_assert_eq!(container::open(&sealed).unwrap(), data);
    }

    #[test]
    fn container_detects_bitflips(
        data in proptest::collection::vec(any::<u8>(), 8..512),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let sealed = container::seal(Codec::None, &data);
        let mut bad = sealed.clone();
        let i = idx.index(bad.len());
        bad[i] ^= 1 << bit;
        // Any single-bit flip anywhere in the container must not yield the
        // original payload silently presented as valid *different* data:
        // either it errors, or it decodes to exactly the original bytes
        // (flips in ignored padding don't exist in this format, but a flip
        // that produces a valid container must reproduce the payload).
        if let Ok(got) = container::open(&bad) { prop_assert_eq!(got, data) }
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Codec::Rle.decompress(&data);
        let _ = Codec::Lzss.decompress(&data);
        let _ = container::open(&data);
    }
}
