//! Property-based tests: every codec must roundtrip arbitrary bytes, and
//! the container must reject arbitrary corruption.

use bistro_base::prop::{self, Runner};
use bistro_base::{prop_assert, prop_assert_eq};
use bistro_compress::{container, Codec};

#[test]
fn rle_roundtrips() {
    Runner::new("rle_roundtrips").cases(64).run(
        |rng| prop::vec_of(rng, 0..=4095, |r| r.gen_range(0u8..=255)),
        |data| {
            let c = Codec::Rle.compress(data);
            prop_assert_eq!(Codec::Rle.decompress(&c).unwrap(), data.clone());
            Ok(())
        },
    );
}

#[test]
fn lzss_roundtrips() {
    Runner::new("lzss_roundtrips").cases(64).run(
        |rng| prop::vec_of(rng, 0..=4095, |r| r.gen_range(0u8..=255)),
        |data| {
            let c = Codec::Lzss.compress(data);
            prop_assert_eq!(Codec::Lzss.decompress(&c).unwrap(), data.clone());
            Ok(())
        },
    );
}

#[test]
fn lzss_roundtrips_low_entropy() {
    Runner::new("lzss_roundtrips_low_entropy").cases(64).run(
        |rng| prop::vec_of(rng, 0..=8191, |r| r.gen_range(0u8..4)),
        |data| {
            let c = Codec::Lzss.compress(data);
            prop_assert!(c.len() <= data.len() + data.len() / 4 + 16);
            prop_assert_eq!(Codec::Lzss.decompress(&c).unwrap(), data.clone());
            Ok(())
        },
    );
}

#[test]
fn container_roundtrips() {
    Runner::new("container_roundtrips").cases(64).run(
        |rng| {
            (
                prop::vec_of(rng, 0..=2047, |r| r.gen_range(0u8..=255)),
                rng.gen_range(0u8..3),
            )
        },
        |(data, tag)| {
            if *tag >= 3 {
                return Ok(()); // shrunk out of domain (tags are 0..3)
            }
            let codec = Codec::from_tag(*tag).unwrap();
            let sealed = container::seal(codec, data);
            prop_assert_eq!(container::open(&sealed).unwrap(), data.clone());
            Ok(())
        },
    );
}

#[test]
fn container_detects_bitflips() {
    Runner::new("container_detects_bitflips").cases(64).run(
        |rng| {
            (
                prop::vec_of(rng, 8..=511, |r| r.gen_range(0u8..=255)),
                rng.gen_range(0usize..4096),
                rng.gen_range(0u8..8),
            )
        },
        |(data, idx, bit)| {
            let sealed = container::seal(Codec::None, data);
            let mut bad = sealed.clone();
            let i = idx % bad.len();
            bad[i] ^= 1 << bit;
            // Any single-bit flip anywhere in the container must not yield the
            // original payload silently presented as valid *different* data:
            // either it errors, or it decodes to exactly the original bytes
            // (flips in ignored padding don't exist in this format, but a flip
            // that produces a valid container must reproduce the payload).
            if let Ok(got) = container::open(&bad) {
                prop_assert_eq!(got, data.clone());
            }
            Ok(())
        },
    );
}

#[test]
fn decompress_never_panics_on_garbage() {
    Runner::new("decompress_never_panics_on_garbage")
        .cases(64)
        .run(
            |rng| prop::vec_of(rng, 0..=511, |r| r.gen_range(0u8..=255)),
            |data| {
                let _ = Codec::Rle.decompress(data);
                let _ = Codec::Lzss.decompress(data);
                let _ = container::open(data);
                Ok(())
            },
        );
}
