//! The Bistro container format.
//!
//! When the normalizer compresses (or re-compresses) a feed file before
//! staging it, the payload is wrapped in a small self-describing container
//! so that (a) the delivery pipeline can verify integrity end-to-end and
//! (b) a subscriber — or a downstream Bistro relay — can decompress without
//! out-of-band codec metadata.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset size  field
//! 0      4     magic "BSTR"
//! 4      1     format version (1)
//! 5      1     codec tag (see Codec::tag)
//! 6      8     uncompressed length
//! 14     4     CRC-32 of the *uncompressed* payload
//! 18     ..    compressed payload
//! ```

use crate::{Codec, CompressError};
use bistro_base::checksum::crc32;

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"BSTR";
/// Current container format version.
pub const VERSION: u8 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 18;

/// Compress `data` with `codec` and wrap in a container.
pub fn seal(codec: Codec, data: &[u8]) -> Vec<u8> {
    let payload = codec.compress(data);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(codec.tag());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Inspect a container's header without decompressing.
///
/// Returns `(codec, uncompressed_len, crc)`.
pub fn peek(container: &[u8]) -> Result<(Codec, u64, u32), CompressError> {
    if container.len() < HEADER_LEN {
        return Err(CompressError::BadMagic);
    }
    if container[0..4] != MAGIC || container[4] != VERSION {
        return Err(CompressError::BadMagic);
    }
    let codec = Codec::from_tag(container[5]).ok_or(CompressError::UnknownCodec(container[5]))?;
    let len = u64::from_le_bytes(container[6..14].try_into().unwrap());
    let crc = u32::from_le_bytes(container[14..18].try_into().unwrap());
    Ok((codec, len, crc))
}

/// True if the buffer begins with a valid container header.
pub fn is_container(data: &[u8]) -> bool {
    peek(data).is_ok()
}

/// Unwrap a container: decompress and verify length and checksum.
pub fn open(container: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (codec, expected_len, expected_crc) = peek(container)?;
    let data = codec.decompress(&container[HEADER_LEN..])?;
    if data.len() as u64 != expected_len {
        return Err(CompressError::LengthMismatch {
            expected: expected_len,
            actual: data.len() as u64,
        });
    }
    let actual_crc = crc32(&data);
    if actual_crc != expected_crc {
        return Err(CompressError::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    Ok(data)
}

/// Re-seal an opened container with a different codec (used when a feed's
/// compression option differs from what the source delivered).
pub fn transcode(container: &[u8], target: Codec) -> Result<Vec<u8>, CompressError> {
    let data = open(container)?;
    Ok(seal(target, &data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let data = b"CPU_POLL1_201009250502.txt contents".repeat(10);
        for codec in [Codec::None, Codec::Rle, Codec::Lzss] {
            let c = seal(codec, &data);
            assert!(is_container(&c));
            let (got_codec, len, _) = peek(&c).unwrap();
            assert_eq!(got_codec, codec);
            assert_eq!(len, data.len() as u64);
            assert_eq!(open(&c).unwrap(), data);
        }
    }

    #[test]
    fn empty_payload() {
        let c = seal(Codec::Lzss, b"");
        assert_eq!(open(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(open(b"NOPE"), Err(CompressError::BadMagic));
        let mut c = seal(Codec::Rle, b"hello world hello world");
        c[0] = b'X';
        assert_eq!(open(&c), Err(CompressError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut c = seal(Codec::Rle, b"hello");
        c[4] = 9;
        assert_eq!(open(&c), Err(CompressError::BadMagic));
    }

    #[test]
    fn unknown_codec_rejected() {
        let mut c = seal(Codec::None, b"hello");
        c[5] = 42;
        assert_eq!(open(&c), Err(CompressError::UnknownCodec(42)));
    }

    #[test]
    fn payload_corruption_detected() {
        let data = b"a file body that compresses: aaaa bbbb aaaa bbbb aaaa";
        let mut c = seal(Codec::None, data);
        let last = c.len() - 1;
        c[last] ^= 0xFF;
        match open(&c) {
            Err(CompressError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn length_corruption_detected() {
        let data = b"body body body";
        let mut c = seal(Codec::None, data);
        c[6] = c[6].wrapping_add(1); // bump claimed length
        match open(&c) {
            Err(CompressError::LengthMismatch { .. }) => {}
            other => panic!("expected length mismatch, got {other:?}"),
        }
    }

    #[test]
    fn transcode_between_codecs() {
        let data = b"MEMORY stats ".repeat(100);
        let rle = seal(Codec::Rle, &data);
        let lz = transcode(&rle, Codec::Lzss).unwrap();
        let (codec, _, _) = peek(&lz).unwrap();
        assert_eq!(codec, Codec::Lzss);
        assert_eq!(open(&lz).unwrap(), data);
    }
}
