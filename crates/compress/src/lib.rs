//! # bistro-compress
//!
//! Compression substrate for Bistro's per-feed compression /
//! decompression options (paper §3.1: "an application is able to expand
//! the data arriving in compressed formats or compress the data before
//! placing it into staging directories").
//!
//! The paper's deployment shells out to gzip/bzip2. Those codecs are not in
//! the offline dependency set, so this crate implements two codecs from
//! scratch — byte-level RLE and an LZSS dictionary compressor — plus a
//! CRC-checked container format ([`container`]) so corrupted staged files
//! are detected rather than delivered. Any codec behind the same API
//! exercises the identical normalization code path in `bistro-core`.

pub mod container;
pub mod lzss;
pub mod rle;

use std::fmt;

/// The compression codecs available to feed definitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Store uncompressed.
    None,
    /// Byte-level run-length encoding: wins on the highly repetitive
    /// CSV/fixed-width measurement files pollers emit.
    Rle,
    /// LZSS with a 32 KiB sliding window: the general-purpose codec.
    Lzss,
}

impl Codec {
    /// Stable numeric tag used in the container header.
    pub fn tag(self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::Rle => 1,
            Codec::Lzss => 2,
        }
    }

    /// Inverse of [`Codec::tag`].
    pub fn from_tag(tag: u8) -> Option<Codec> {
        match tag {
            0 => Some(Codec::None),
            1 => Some(Codec::Rle),
            2 => Some(Codec::Lzss),
            _ => None,
        }
    }

    /// The conventional filename extension for this codec
    /// (mirrors `.gz` handling in feed patterns).
    pub fn extension(self) -> &'static str {
        match self {
            Codec::None => "",
            Codec::Rle => "rle",
            Codec::Lzss => "lz",
        }
    }

    /// Parse a filename extension into a codec. Recognizes the paper's
    /// `.gz`/`.bz2` names and maps them onto the built-in codecs so paper
    /// filename examples work unmodified.
    pub fn from_extension(ext: &str) -> Option<Codec> {
        match ext {
            "rle" => Some(Codec::Rle),
            "lz" | "gz" | "bz2" | "zip" => Some(Codec::Lzss),
            "" => Some(Codec::None),
            _ => None,
        }
    }

    /// Compress a buffer with this codec (raw stream, no container).
    pub fn compress(self, data: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => data.to_vec(),
            Codec::Rle => rle::compress(data),
            Codec::Lzss => lzss::compress(data),
        }
    }

    /// Decompress a raw stream produced by [`Codec::compress`].
    pub fn decompress(self, data: &[u8]) -> Result<Vec<u8>, CompressError> {
        match self {
            Codec::None => Ok(data.to_vec()),
            Codec::Rle => rle::decompress(data),
            Codec::Lzss => lzss::decompress(data),
        }
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Codec::None => write!(f, "none"),
            Codec::Rle => write!(f, "rle"),
            Codec::Lzss => write!(f, "lzss"),
        }
    }
}

/// Errors from decompression or container parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The compressed stream was malformed.
    Corrupt(&'static str),
    /// Container magic bytes did not match.
    BadMagic,
    /// Container codec tag was unrecognized.
    UnknownCodec(u8),
    /// CRC of the decompressed payload did not match the header.
    ChecksumMismatch {
        /// CRC recorded in the container header.
        expected: u32,
        /// CRC of the actual decompressed payload.
        actual: u32,
    },
    /// Decompressed length did not match the header.
    LengthMismatch {
        /// Length recorded in the container header.
        expected: u64,
        /// Actual decompressed length.
        actual: u64,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Corrupt(why) => write!(f, "corrupt compressed stream: {why}"),
            CompressError::BadMagic => write!(f, "not a bistro container (bad magic)"),
            CompressError::UnknownCodec(t) => write!(f, "unknown codec tag {t}"),
            CompressError::ChecksumMismatch { expected, actual } => write!(
                f,
                "container checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
            CompressError::LengthMismatch { expected, actual } => write!(
                f,
                "container length mismatch: expected {expected}, got {actual}"
            ),
        }
    }
}

impl std::error::Error for CompressError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_tags_roundtrip() {
        for c in [Codec::None, Codec::Rle, Codec::Lzss] {
            assert_eq!(Codec::from_tag(c.tag()), Some(c));
        }
        assert_eq!(Codec::from_tag(99), None);
    }

    #[test]
    fn extension_mapping() {
        assert_eq!(Codec::from_extension("gz"), Some(Codec::Lzss));
        assert_eq!(Codec::from_extension("rle"), Some(Codec::Rle));
        assert_eq!(Codec::from_extension(""), Some(Codec::None));
        assert_eq!(Codec::from_extension("csv"), None);
    }

    #[test]
    fn all_codecs_roundtrip() {
        let data = b"BPS,poller1,router_a,1024,2048\n".repeat(40);
        for c in [Codec::None, Codec::Rle, Codec::Lzss] {
            let comp = c.compress(&data);
            assert_eq!(c.decompress(&comp).unwrap(), data, "codec {c}");
        }
    }

    #[test]
    fn lzss_compresses_repetitive_data() {
        let data = b"MEMORY_POLLER1_2010092504_51.csv\n".repeat(100);
        let comp = Codec::Lzss.compress(&data);
        assert!(
            comp.len() < data.len() / 4,
            "expected >4x on repetitive input, got {} -> {}",
            data.len(),
            comp.len()
        );
    }
}
