//! LZSS dictionary compression.
//!
//! A classic LZ77 variant with a 32 KiB sliding window, hash-chain match
//! finding and a bit-flagged token stream:
//!
//! * a group byte carries 8 flags (LSB first); flag 0 = literal byte,
//!   flag 1 = match token.
//! * a match token is 2 bytes: `dddddddd dddddlll` — a 13-bit distance
//!   (1..=8192) and 3-bit length code (length 3..=10), followed by an
//!   optional extension byte when the length code is 7 (length 10 + ext,
//!   up to 265).
//!
//! This is deliberately simple (no entropy coding) but reaches 4-10x on
//! the repetitive text/CSV payloads that dominate feed traffic, which is
//! all the Bistro pipeline needs from its compression stage.

use crate::CompressError;

const WINDOW: usize = 8192; // 13-bit distances
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 10 + 255; // length code 7 + extension byte
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `data` with LZSS.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let n = data.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        return out;
    }

    // hash chains: head[h] = most recent position with hash h; prev[i % WINDOW]
    // links to the previous position with the same hash.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut i = 0;
    // token group state
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_count = 0u8;

    macro_rules! begin_token {
        ($is_match:expr) => {
            if flag_count == 8 {
                flag_pos = out.len();
                out.push(0);
                flag_count = 0;
            }
            if $is_match {
                out[flag_pos] |= 1 << flag_count;
            }
            flag_count += 1;
        };
    }

    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            let mut cand = head[h];
            let limit = i.saturating_sub(WINDOW);
            let mut chain = 0;
            while cand != usize::MAX && cand >= limit && chain < 64 {
                if cand < i {
                    let max_len = (n - i).min(MAX_MATCH);
                    let mut l = 0;
                    while l < max_len && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l >= MAX_MATCH {
                            break;
                        }
                    }
                }
                let nxt = prev[cand % WINDOW];
                if nxt == cand {
                    break;
                }
                cand = nxt;
                chain += 1;
            }
            // insert current position into the chain
            prev[i % WINDOW] = head[h];
            head[h] = i;
        }

        if best_len >= MIN_MATCH && best_dist <= WINDOW {
            begin_token!(true);
            let len_code = if best_len >= 10 { 7 } else { best_len - 3 };
            let d = (best_dist - 1) as u16; // 0..=8191
            let word = (d << 3) | len_code as u16;
            out.push((word & 0xFF) as u8);
            out.push((word >> 8) as u8);
            if len_code == 7 {
                out.push((best_len - 10) as u8);
            }
            // register skipped positions in the hash chains (cheaply, only
            // up to a few per match — enough for chained matches)
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH));
            let mut j = i + 1;
            while j < end {
                let h = hash3(data, j);
                prev[j % WINDOW] = head[h];
                head[h] = j;
                j += 1;
            }
            i += best_len;
        } else {
            begin_token!(false);
            out.push(data[i]);
            i += 1;
        }
    }
    out
}

/// Decompress an LZSS stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::with_capacity(data.len() * 3);
    if data.is_empty() {
        return Ok(out);
    }
    let mut i = 0;
    while i < data.len() {
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if i >= data.len() {
                // Remaining zero flag bits are padding in the final group,
                // but a set bit with no token bytes means a truncated stream.
                if flags >> bit != 0 {
                    return Err(CompressError::Corrupt("group truncated before match token"));
                }
                break;
            }
            if flags & (1 << bit) == 0 {
                out.push(data[i]);
                i += 1;
            } else {
                if i + 2 > data.len() {
                    return Err(CompressError::Corrupt("match token truncated"));
                }
                let word = data[i] as u16 | ((data[i + 1] as u16) << 8);
                i += 2;
                let dist = (word >> 3) as usize + 1;
                let len_code = (word & 0x7) as usize;
                let len = if len_code == 7 {
                    if i >= data.len() {
                        return Err(CompressError::Corrupt("length extension truncated"));
                    }
                    let ext = data[i] as usize;
                    i += 1;
                    10 + ext
                } else {
                    len_code + 3
                };
                if dist > out.len() {
                    return Err(CompressError::Corrupt("match distance before start"));
                }
                let start = out.len() - dist;
                // overlapping copy (dist may be < len)
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn no_matches() {
        roundtrip(b"abcdefghijklmnopqrstuvwxyz0123456789");
    }

    #[test]
    fn simple_repeat() {
        roundtrip(b"abcabcabcabcabcabc");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
    }

    #[test]
    fn overlapping_match() {
        // dist 1, long run: classic overlap case
        let data = vec![b'z'; 500];
        let c = compress(&data);
        assert!(c.len() < 20);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn long_match_with_extension() {
        let mut data = b"HEADER".to_vec();
        data.extend(std::iter::repeat_n(b"0123456789ABCDEF", 40).flatten());
        roundtrip(&data);
    }

    #[test]
    fn csv_payload_ratio() {
        let row = b"BPS,poller1,router_a,2010-12-30 00:05,123456,789012\n";
        let data = row.repeat(200);
        let c = compress(&data);
        assert!(
            c.len() * 4 < data.len(),
            "ratio too poor: {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn binary_payload() {
        let data: Vec<u8> = (0..50_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn window_boundary() {
        // a match exactly WINDOW back
        let mut data = vec![0u8; WINDOW];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let mut full = data.clone();
        full.extend_from_slice(&data[..100]); // repeats content WINDOW back
        roundtrip(&full);
    }

    #[test]
    fn corrupt_streams_error() {
        // flag says match but stream ends
        assert!(decompress(&[0x01]).is_err());
        assert!(decompress(&[0x01, 0x10]).is_err());
        // match pointing before output start: dist encoded as (word>>3)+1
        let word: u16 = 100u16 << 3; // dist 101, len 3, but output is empty
        assert!(decompress(&[0x01, (word & 0xFF) as u8, (word >> 8) as u8]).is_err());
    }

    #[test]
    fn feed_filenames_corpus() {
        // A realistic analyzer corpus: thousands of similar filenames.
        let mut data = Vec::new();
        for p in 1..=8 {
            for h in 0..24 {
                for m in [0, 5, 10, 15] {
                    data.extend_from_slice(
                        format!("MEMORY_POLLER{p}_20100925{h:02}_{m:02}.csv.gz\n").as_bytes(),
                    );
                }
            }
        }
        let c = compress(&data);
        assert!(c.len() * 3 < data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }
}
