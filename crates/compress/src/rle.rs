//! Byte-level run-length encoding.
//!
//! Format: a sequence of chunks, each starting with a control byte `c`.
//!
//! * `c < 0x80`: a *literal* chunk — the next `c + 1` bytes are copied
//!   verbatim (1..=128 literals).
//! * `c >= 0x80`: a *run* chunk — the next byte repeats `(c - 0x80) + 3`
//!   times (3..=130 repeats).
//!
//! Runs shorter than 3 are never encoded as runs, so RLE output is at most
//! `n + ceil(n/128)` bytes for incompressible input.

use crate::CompressError;

/// Compress `data` with RLE.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0;
    let n = data.len();
    let mut lit_start = 0; // start of pending literal range

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        let mut s = from;
        while s < to {
            let chunk = (to - s).min(128);
            out.push((chunk - 1) as u8);
            out.extend_from_slice(&data[s..s + chunk]);
            s += chunk;
        }
    };

    while i < n {
        // measure run length at i
        let b = data[i];
        let mut run = 1;
        while i + run < n && data[i + run] == b && run < 130 {
            run += 1;
        }
        if run >= 3 {
            flush_literals(&mut out, lit_start, i, data);
            out.push(0x80 + (run - 3) as u8);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, lit_start, n, data);
    out
}

/// Decompress an RLE stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let c = data[i];
        i += 1;
        if c < 0x80 {
            let len = c as usize + 1;
            if i + len > data.len() {
                return Err(CompressError::Corrupt("literal chunk truncated"));
            }
            out.extend_from_slice(&data[i..i + len]);
            i += len;
        } else {
            if i >= data.len() {
                return Err(CompressError::Corrupt("run chunk truncated"));
            }
            let count = (c - 0x80) as usize + 3;
            let b = data[i];
            i += 1;
            out.resize(out.len() + count, b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(compress(b""), Vec::<u8>::new());
        assert_eq!(decompress(b"").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn simple_runs() {
        roundtrip(b"aaaabbbbcccc");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        let c = compress(b"aaaaaaaa");
        assert_eq!(c, vec![0x80 + 5, b'a']); // 8 repeats => run chunk
    }

    #[test]
    fn literals_only() {
        roundtrip(b"abcdefgh");
        // no run of >=3, so pure literal encoding: 1 control + 8 bytes
        assert_eq!(compress(b"abcdefgh").len(), 9);
    }

    #[test]
    fn mixed() {
        roundtrip(b"ab cccccccc de\x00\x00\x00\x00 fg");
        roundtrip(b"112233334444455555566666667777777788888888899999999990");
    }

    #[test]
    fn long_runs_split() {
        let data = vec![b'x'; 1000];
        roundtrip(&data);
        let c = compress(&data);
        // 1000 / 130 runs of 2 bytes each
        assert!(c.len() <= 2 * (1000 / 130 + 1));
    }

    #[test]
    fn long_literals_split() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        roundtrip(&data);
    }

    #[test]
    fn worst_case_expansion_bounded() {
        // alternating bytes: incompressible
        let data: Vec<u8> = (0..10_000).map(|i| (i % 2) as u8).collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 128 + 2);
    }

    #[test]
    fn truncated_streams_error() {
        assert!(decompress(&[0x05]).is_err()); // literal chunk, no body
        assert!(decompress(&[0x80 + 5]).is_err()); // run chunk, no byte
    }

    #[test]
    fn csv_like_payload() {
        let row = b"poller1,router_a,2010-12-30,00,12345,0.00000\n";
        let data = row.repeat(50);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // the zero-run should at least shave something off
        assert!(c.len() < data.len());
    }
}
