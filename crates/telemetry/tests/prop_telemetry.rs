//! Property test: histogram quantile bounds against an exact
//! sorted-sample reference.
//!
//! For any stream of values, the bucket that
//! [`Histogram::quantile_bounds`] returns for a quantile `q` must
//! contain the exact order statistic at rank `ceil(q * n)` of the sorted
//! stream — the "rank-exact at bucket granularity" contract the
//! histogram documents. Counterexamples shrink through `Vec<u64>`'s
//! structural shrinker, so a failure reports a minimal stream.
//!
//! Replay a failure with `BISTRO_PROP_SEED=<seed>` as printed.

use bistro_base::prop::{self, Runner};
use bistro_base::prop_assert;
use bistro_telemetry::Histogram;

const QUANTILES: &[f64] = &[0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];

fn exact_rank_value(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

#[test]
fn quantile_bounds_contain_exact_order_statistics() {
    Runner::new("hist_quantile_bounds_vs_sorted_reference")
        .cases(256)
        .run(
            |rng| {
                // Mixed-magnitude stream: mostly small latencies with an
                // occasional huge outlier, the shape that stresses log-linear
                // bucketing the hardest.
                prop::vec_of(rng, 1..=200, |r| {
                    let bits = r.gen_range(0u32..63);
                    r.gen_range(0u64..=(1u64 << bits))
                })
            },
            |values| {
                let hist = Histogram::detached();
                for &v in values {
                    hist.record(v);
                }
                let mut sorted = values.clone();
                sorted.sort_unstable();

                prop_assert!(hist.count() == values.len() as u64, "count mismatch");
                prop_assert!(hist.min() == sorted.first().copied(), "min mismatch");
                prop_assert!(hist.max() == sorted.last().copied(), "max mismatch");

                for &q in QUANTILES {
                    let exact = exact_rank_value(&sorted, q);
                    let (lo, hi) = hist
                        .quantile_bounds(q)
                        .ok_or_else(|| "empty bounds on non-empty histogram".to_string())?;
                    prop_assert!(
                        lo <= exact && exact <= hi,
                        "q={q}: exact {exact} outside bucket [{lo}, {hi}] for {values:?}"
                    );
                    prop_assert!(lo <= hi, "q={q}: inverted bounds [{lo}, {hi}]");
                    // relative width contract: hi/lo <= 17/16 once past the
                    // unit buckets (bounds tightening can only narrow this)
                    if lo >= 16 {
                        prop_assert!(
                            hi - lo <= lo / 16,
                            "q={q}: bucket [{lo}, {hi}] wider than 1/16 relative"
                        );
                    }
                }
                Ok(())
            },
        );
}

#[test]
fn quantiles_are_monotone_in_q() {
    Runner::new("hist_quantiles_monotone").cases(128).run(
        |rng| prop::vec_of(rng, 1..=100, |r| r.gen_range(0u64..1_000_000)),
        |values| {
            let hist = Histogram::detached();
            for &v in values {
                hist.record(v);
            }
            let mut last = 0u64;
            for &q in QUANTILES {
                let v = hist
                    .quantile(q)
                    .ok_or_else(|| "empty quantile".to_string())?;
                prop_assert!(
                    v >= last,
                    "quantile not monotone at q={q}: {v} < {last} for {values:?}"
                );
                last = v;
            }
            Ok(())
        },
    );
}
