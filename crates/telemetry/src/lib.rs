//! # bistro-telemetry
//!
//! Unified observability for the Bistro server (paper §3.2: "extensive
//! logging to track the status of all the feeds … and alarm if it is
//! unable to correct errors").
//!
//! The subsystem is four small pieces that compose:
//!
//! * [`registry`] — a [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s. Handles are `Arc`s with atomic interiors, so hot
//!   paths record without touching the registry map; a disabled registry
//!   hands out no-op handles for overhead measurement.
//! * [`histogram`] — log-linear-bucket histograms (16 sub-buckets per
//!   power of two, ≤ 6.25 % relative bucket width) with rank-exact
//!   quantile *bounds*: the true sample at a rank is guaranteed to lie in
//!   the bucket the estimate names.
//! * [`span`] — scoped timers driven by a [`bistro_base::clock::Clock`],
//!   so instrumented runs on a `SimClock` stay byte-for-byte
//!   deterministic (elapsed is whatever the simulation says it is).
//! * [`alarm`] — threshold rules ([`AlarmRule`]) over registry metrics,
//!   edge-triggered by [`AlarmSet::check`]; the server forwards firings
//!   into its `EventLog` at `Alarm` level.
//!
//! Snapshots ([`Registry::snapshot_json`]) render through the hand-rolled
//! [`json`] model (same style as `bistro-bench`'s `BENCH_*.json` emitter):
//! metric iteration is sorted, so two identical runs produce identical
//! bytes.

pub mod alarm;
pub mod histogram;
pub mod json;
pub mod registry;
pub mod span;

pub use alarm::{AlarmFiring, AlarmRule, AlarmSet, Condition};
pub use histogram::Histogram;
pub use json::Json;
pub use registry::{Counter, Gauge, Registry, SharedRegistry};
pub use span::Span;
