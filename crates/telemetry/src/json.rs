//! A minimal JSON document model: enough to emit deterministic metric
//! snapshots (`bistro status --json`, the `BENCH_*.json` result files)
//! and to parse them back for round-trip verification and smoke checks.
//! No external crates.
//!
//! Object keys keep insertion order (emission is deterministic).
//! Numbers are `f64`, which covers every value the snapshot schema emits.
//!
//! This is the home of the model formerly in `bistro-bench`; the bench
//! crate re-exports it so existing `bench::json` paths keep working.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere or when absent.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text. Returns a descriptive error with a byte offset
    /// on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 character
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_value_kinds() {
        let text = r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": true}, "e": "x\n\"y\" é"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(-2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("x\n\"y\" é"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let v = Json::Obj(vec![
            ("n".to_string(), Json::Num(1234567.25)),
            ("i".to_string(), Json::Num(42.0)),
            ("s".to_string(), Json::Str("tab\t\"q\" λ".to_string())),
            (
                "a".to_string(),
                Json::Arr(vec![Json::Bool(false), Json::Null]),
            ),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
