//! Threshold alarm rules over registry metrics.
//!
//! A rule names a [`Condition`] on one or two metrics; an [`AlarmSet`]
//! evaluates its rules against a [`Registry`] and returns *edge-
//! triggered* firings — a rule fires once when its condition first turns
//! true, stays silent while it remains true, and re-arms if the
//! condition clears (a ratio can recover; monotone counters cannot).
//! The owner of an `EventLog` forwards firings at `Alarm` level; the
//! telemetry crate itself has no view of the log, keeping the dependency
//! direction base → telemetry → everything-else.

use crate::registry::Registry;

/// What a rule tests. All comparisons are `>= threshold`.
#[derive(Clone, Debug)]
pub enum Condition {
    /// A counter reached an absolute value.
    CounterAtLeast { metric: String, threshold: u64 },
    /// A gauge level reached a value.
    GaugeAtLeast { metric: String, threshold: i64 },
    /// `num / den` reached a fraction, evaluated only once `den >=
    /// min_den` (avoids firing a miss-ratio rule on the first file).
    RatioAtLeast {
        num: String,
        den: String,
        threshold: f64,
        min_den: u64,
    },
    /// A histogram's `q`-quantile (conservative upper-bound estimate)
    /// reached a value.
    QuantileAtLeast {
        metric: String,
        q: f64,
        threshold: u64,
    },
}

impl Condition {
    /// Evaluate against `reg`: `Some(detail)` when the condition holds,
    /// `None` when it does not (including when metrics are absent).
    fn holds(&self, reg: &Registry) -> Option<String> {
        match self {
            Condition::CounterAtLeast { metric, threshold } => {
                let v = reg.counter_value(metric)?;
                (v >= *threshold).then(|| format!("{metric}={v} >= {threshold}"))
            }
            Condition::GaugeAtLeast { metric, threshold } => {
                let v = reg.gauge_value(metric)?;
                (v >= *threshold).then(|| format!("{metric}={v} >= {threshold}"))
            }
            Condition::RatioAtLeast {
                num,
                den,
                threshold,
                min_den,
            } => {
                let n = reg.counter_value(num)?;
                let d = reg.counter_value(den)?;
                if d < (*min_den).max(1) {
                    return None;
                }
                let ratio = n as f64 / d as f64;
                (ratio >= *threshold).then(|| format!("{num}/{den}={ratio:.4} >= {threshold}"))
            }
            Condition::QuantileAtLeast {
                metric,
                q,
                threshold,
            } => {
                let v = reg.histogram_quantile(metric, *q)?;
                (v >= *threshold).then(|| format!("{metric} p{:.0}={v} >= {threshold}", q * 100.0))
            }
        }
    }
}

/// A named alarm rule.
#[derive(Clone, Debug)]
pub struct AlarmRule {
    /// Stable rule identifier (e.g. `retry-exhaustion`).
    pub name: String,
    /// What to test.
    pub condition: Condition,
    /// Operator-facing description of what going off means.
    pub message: String,
}

impl AlarmRule {
    /// Convenience constructor.
    pub fn new(name: &str, condition: Condition, message: &str) -> AlarmRule {
        AlarmRule {
            name: name.to_string(),
            condition,
            message: message.to_string(),
        }
    }
}

/// One rule going off.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlarmFiring {
    /// The rule's name.
    pub rule: String,
    /// The rule's message.
    pub message: String,
    /// The measured values that tripped it, e.g. `reliable.exhausted=2 >= 1`.
    pub detail: String,
}

/// An ordered set of rules with per-rule edge-trigger state.
#[derive(Default)]
pub struct AlarmSet {
    rules: Vec<(AlarmRule, bool)>, // (rule, currently-firing latch)
}

impl AlarmSet {
    /// An empty set.
    pub fn new() -> AlarmSet {
        AlarmSet::default()
    }

    /// Append a rule (evaluation order is insertion order).
    pub fn add(&mut self, rule: AlarmRule) {
        self.rules.push((rule, false));
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluate every rule against `reg`, returning only the rules whose
    /// condition turned true since the previous check.
    pub fn check(&mut self, reg: &Registry) -> Vec<AlarmFiring> {
        let mut fired = Vec::new();
        for (rule, latched) in &mut self.rules {
            match rule.condition.holds(reg) {
                Some(detail) => {
                    if !*latched {
                        *latched = true;
                        fired.push(AlarmFiring {
                            rule: rule.name.clone(),
                            message: rule.message.clone(),
                            detail,
                        });
                    }
                }
                None => *latched = false,
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rule_is_edge_triggered() {
        let reg = Registry::new();
        let c = reg.counter("fail.total");
        let mut set = AlarmSet::new();
        set.add(AlarmRule::new(
            "fails",
            Condition::CounterAtLeast {
                metric: "fail.total".into(),
                threshold: 3,
            },
            "too many failures",
        ));
        assert!(set.check(&reg).is_empty());
        c.add(3);
        let fired = set.check(&reg);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "fails");
        assert!(fired[0].detail.contains("fail.total=3"));
        // still true: silent
        c.inc();
        assert!(set.check(&reg).is_empty());
    }

    #[test]
    fn ratio_rule_waits_for_min_den_and_rearms() {
        let reg = Registry::new();
        let miss = reg.counter("miss");
        let total = reg.counter("total");
        let mut set = AlarmSet::new();
        set.add(AlarmRule::new(
            "miss-ratio",
            Condition::RatioAtLeast {
                num: "miss".into(),
                den: "total".into(),
                threshold: 0.5,
                min_den: 10,
            },
            "half of files unclassified",
        ));
        miss.add(1);
        total.add(1); // ratio 1.0 but den below min_den
        assert!(set.check(&reg).is_empty());
        miss.add(9);
        total.add(9); // 10/10
        assert_eq!(set.check(&reg).len(), 1);
        total.add(80); // ratio drops to 10/90 — clears and re-arms
        assert!(set.check(&reg).is_empty());
        miss.add(80); // 90/170 > 0.5
        assert_eq!(set.check(&reg).len(), 1);
    }

    #[test]
    fn quantile_rule_fires_on_slow_tail() {
        let reg = Registry::new();
        let h = reg.histogram("op.lat_us");
        let mut set = AlarmSet::new();
        set.add(AlarmRule::new(
            "slow-p99",
            Condition::QuantileAtLeast {
                metric: "op.lat_us".into(),
                q: 0.99,
                threshold: 1_000,
            },
            "op p99 over 1ms",
        ));
        for _ in 0..10 {
            h.record(10);
        }
        assert!(set.check(&reg).is_empty());
        // 11 samples: p99 rank is 11, landing on the outlier
        h.record(50_000);
        assert_eq!(set.check(&reg).len(), 1);
    }

    #[test]
    fn absent_metric_never_fires() {
        let reg = Registry::new();
        let mut set = AlarmSet::new();
        set.add(AlarmRule::new(
            "ghost",
            Condition::GaugeAtLeast {
                metric: "nope".into(),
                threshold: 0,
            },
            "never",
        ));
        assert!(set.check(&reg).is_empty());
    }
}
