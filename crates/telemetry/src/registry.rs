//! The metric registry: named counters, gauges and histograms.
//!
//! Handles are `Arc`s; hot paths hold the handle and record through an
//! atomic (or the histogram's lock) without re-resolving names. Names are
//! `component.metric` by convention (`delivery.receipts`,
//! `wal.fsync_us`). Iteration is sorted (`BTreeMap`), so snapshots are
//! byte-identical across identical runs.

use crate::histogram::Histogram;
use crate::json::Json;
use bistro_base::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone (or bridged-absolute) counter.
pub struct Counter {
    enabled: bool,
    v: AtomicU64,
}

impl Counter {
    fn new(enabled: bool) -> Counter {
        Counter {
            enabled,
            v: AtomicU64::new(0),
        }
    }

    /// A standalone enabled counter (not attached to any registry).
    pub fn detached() -> Counter {
        Counter::new(true)
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrite with an absolute total — for bridging an externally
    /// maintained monotone tally (e.g. `vfs::MetaStats`) into a snapshot.
    pub fn set(&self, total: u64) {
        if self.enabled {
            self.v.store(total, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed level (queue depth, unacked sends, …).
pub struct Gauge {
    enabled: bool,
    v: AtomicI64,
}

impl Gauge {
    fn new(enabled: bool) -> Gauge {
        Gauge {
            enabled,
            v: AtomicI64::new(0),
        }
    }

    /// A standalone enabled gauge (not attached to any registry).
    pub fn detached() -> Gauge {
        Gauge::new(true)
    }

    /// Set the level.
    pub fn set(&self, v: i64) {
        if self.enabled {
            self.v.store(v, Ordering::Relaxed);
        }
    }

    /// Shift the level by `delta` (delta-tracking gauges: live index
    /// postings, queue occupancy maintained at enqueue/dequeue).
    pub fn add(&self, delta: i64) {
        if self.enabled {
            self.v.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Raise the level to at least `v` (running-maximum gauges).
    pub fn set_max(&self, v: i64) {
        if self.enabled {
            self.v.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Shared handle to a registry.
pub type SharedRegistry = Arc<Registry>;

/// A registry of named metrics. Get-or-create by name; handles stay
/// valid for the registry's lifetime.
pub struct Registry {
    enabled: bool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> SharedRegistry {
        Arc::new(Registry {
            enabled: true,
            metrics: Mutex::new(BTreeMap::new()),
        })
    }

    /// A registry whose handles drop every record — the no-op baseline
    /// for overhead measurement.
    pub fn disabled() -> SharedRegistry {
        Arc::new(Registry {
            enabled: false,
            metrics: Mutex::new(BTreeMap::new()),
        })
    }

    /// Whether records are kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get or create the counter `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// (a naming bug worth failing loudly on).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new(self.enabled))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new(self.enabled))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(self.enabled))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Value of a registered counter (`None` if absent or not a counter).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.lock().get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Level of a registered gauge.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        match self.metrics.lock().get(name) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Quantile point estimate of a registered histogram (empty
    /// histograms and absent names yield `None`).
    pub fn histogram_quantile(&self, name: &str, q: f64) -> Option<u64> {
        match self.metrics.lock().get(name) {
            Some(Metric::Histogram(h)) => h.quantile(q),
            _ => None,
        }
    }

    /// Render every metric, sorted by name, as a JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {..}}`.
    /// Histograms export `{count, sum, min, max, p50, p90, p99}`; empty
    /// histograms export `{"count": 0}`.
    pub fn snapshot_json(&self) -> Json {
        let metrics = self.metrics.lock();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), Json::Num(c.get() as f64))),
                Metric::Gauge(g) => gauges.push((name.clone(), Json::Num(g.get() as f64))),
                Metric::Histogram(h) => {
                    let body = match h.summary() {
                        Some(s) => Json::Obj(vec![
                            ("count".into(), Json::Num(s.count as f64)),
                            ("sum".into(), Json::Num(s.sum as f64)),
                            ("min".into(), Json::Num(s.min as f64)),
                            ("max".into(), Json::Num(s.max as f64)),
                            ("p50".into(), Json::Num(s.p50 as f64)),
                            ("p90".into(), Json::Num(s.p90 as f64)),
                            ("p99".into(), Json::Num(s.p99 as f64)),
                        ]),
                        None => Json::Obj(vec![("count".into(), Json::Num(0.0))]),
                    };
                    histograms.push((name.clone(), body));
                }
            }
        }
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
        ])
    }

    /// `(name, value)` of every counter, sorted — for text reports.
    pub fn counters_sorted(&self) -> Vec<(String, u64)> {
        self.metrics
            .lock()
            .iter()
            .filter_map(|(n, m)| match m {
                Metric::Counter(c) => Some((n.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// `(name, level)` of every gauge, sorted.
    pub fn gauges_sorted(&self) -> Vec<(String, i64)> {
        self.metrics
            .lock()
            .iter()
            .filter_map(|(n, m)| match m {
                Metric::Gauge(g) => Some((n.clone(), g.get())),
                _ => None,
            })
            .collect()
    }

    /// `(name, summary)` of every non-empty histogram, sorted.
    pub fn histograms_sorted(&self) -> Vec<(String, crate::histogram::HistogramSummary)> {
        self.metrics
            .lock()
            .iter()
            .filter_map(|(n, m)| match m {
                Metric::Histogram(h) => h.summary().map(|s| (n.clone(), s)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_reuse() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter_value("x.hits"), Some(3));
        assert_eq!(reg.counter_value("x.other"), None);
    }

    #[test]
    fn gauge_set_and_max() {
        let reg = Registry::new();
        let g = reg.gauge("q.depth");
        g.set(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(reg.gauge_value("q.depth"), Some(9));
    }

    #[test]
    fn disabled_registry_is_noop() {
        let reg = Registry::disabled();
        let c = reg.counter("x");
        let g = reg.gauge("y");
        let h = reg.histogram("z");
        c.inc();
        g.set(7);
        h.record(100);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_collision_panics() {
        let reg = Registry::new();
        reg.gauge("dual");
        reg.counter("dual");
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.gauge("m.mid").set(-3);
        reg.histogram("h.lat").record(100);
        let a = reg.snapshot_json().render();
        let b = reg.snapshot_json().render();
        assert_eq!(a, b);
        let idx_a = a.find("a.first").unwrap();
        let idx_z = a.find("z.last").unwrap();
        assert!(idx_a < idx_z, "counters not sorted: {a}");
        assert!(a.contains("\"m.mid\":-3"), "{a}");
        assert!(a.contains("\"p99\""), "{a}");
    }
}
