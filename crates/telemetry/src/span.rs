//! Scoped span timers.
//!
//! A [`Span`] snapshots the clock when created and records the elapsed
//! microseconds into a histogram when dropped (or explicitly via
//! [`Span::finish`]). Because the clock is a [`SharedClock`], a server
//! running on a `SimClock` measures *simulated* elapsed time — zero if
//! nothing advanced the clock inside the scope — which keeps
//! instrumented runs byte-for-byte deterministic.

use crate::histogram::Histogram;
use bistro_base::clock::SharedClock;
use bistro_base::time::TimePoint;
use std::sync::Arc;

/// A scoped timer recording into a histogram on drop.
pub struct Span {
    clock: SharedClock,
    hist: Arc<Histogram>,
    start: TimePoint,
    done: bool,
}

impl Span {
    /// Start a span now.
    pub fn start(clock: SharedClock, hist: Arc<Histogram>) -> Span {
        let start = clock.now();
        Span {
            clock,
            hist,
            start,
            done: false,
        }
    }

    /// End the span early and return the elapsed microseconds that were
    /// recorded. Dropping without calling this records the same way.
    pub fn finish(mut self) -> u64 {
        self.record()
    }

    fn record(&mut self) -> u64 {
        if self.done {
            return 0;
        }
        self.done = true;
        let elapsed = self
            .clock
            .now()
            .as_micros()
            .saturating_sub(self.start.as_micros());
        self.hist.record(elapsed);
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::clock::SimClock;
    use bistro_base::time::TimeSpan;

    #[test]
    fn span_records_sim_elapsed_on_drop() {
        let clock = SimClock::new();
        let hist = Arc::new(Histogram::detached());
        {
            let _span = Span::start(clock.clone(), hist.clone());
            clock.advance(TimeSpan::from_micros(250));
        }
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.min(), Some(250));
    }

    #[test]
    fn finish_returns_elapsed_and_records_once() {
        let clock = SimClock::new();
        let hist = Arc::new(Histogram::detached());
        let span = Span::start(clock.clone(), hist.clone());
        clock.advance(TimeSpan::from_micros(40));
        assert_eq!(span.finish(), 40);
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn idle_sim_clock_yields_zero() {
        let clock = SimClock::new();
        let hist = Arc::new(Histogram::detached());
        Span::start(clock, hist.clone()).finish();
        assert_eq!(hist.min(), Some(0));
    }
}
