//! Log-linear-bucket histograms with quantile estimation.
//!
//! Values are `u64` (the workspace records microseconds, byte counts and
//! plain tallies). Buckets follow the HdrHistogram shape: values below 16
//! get exact unit buckets; above that, each power of two is split into 16
//! linear sub-buckets, bounding the relative bucket width at 1/16
//! (6.25 %). Because bucketing is monotone, the quantile estimate is
//! *rank-exact at bucket granularity*: the true sample at the requested
//! rank is guaranteed to lie inside the bucket whose bounds
//! [`Histogram::quantile_bounds`] returns — the property test in
//! `tests/prop_telemetry.rs` checks exactly that against a sorted-sample
//! reference.

use bistro_base::sync::Mutex;

/// Sub-buckets per power of two (as a shift: 2^4 = 16).
const SUB_BITS: u32 = 4;
/// Number of exact unit buckets at the bottom (`0..FIRST`).
const FIRST: u64 = 1 << SUB_BITS;
/// Total bucket count: 16 unit buckets + 16 per octave for octaves 4..=63.
const BUCKETS: usize = (FIRST as usize) + (64 - SUB_BITS as usize) * (FIRST as usize);

/// The bucket index for a value.
fn bucket_index(v: u64) -> usize {
    if v < FIRST {
        v as usize
    } else {
        // msb ≥ 4; the top 5 mantissa bits select octave + sub-bucket
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS) as usize;
        let sub = ((v >> (msb - SUB_BITS)) - FIRST) as usize;
        FIRST as usize + octave * FIRST as usize + sub
    }
}

/// Inclusive `(lo, hi)` value bounds of a bucket.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < FIRST as usize {
        (index as u64, index as u64)
    } else {
        let rel = index - FIRST as usize;
        let octave = (rel / FIRST as usize) as u32;
        let sub = (rel % FIRST as usize) as u64;
        let width = 1u64 << octave;
        let lo = (FIRST + sub) << octave;
        // `lo + (width - 1)`, not `lo + width - 1`: the top bucket's hi is
        // exactly u64::MAX and `lo + width` would wrap.
        (lo, lo + (width - 1))
    }
}

struct HistInner {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// A concurrent log-linear histogram. Obtain via
/// [`crate::Registry::histogram`]; a handle from a disabled registry
/// drops every record.
pub struct Histogram {
    enabled: bool,
    inner: Mutex<HistInner>,
}

impl Histogram {
    pub(crate) fn new(enabled: bool) -> Histogram {
        Histogram {
            enabled,
            inner: Mutex::new(HistInner {
                buckets: Vec::new(),
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
            }),
        }
    }

    /// A standalone enabled histogram (not attached to any registry).
    pub fn detached() -> Histogram {
        Histogram::new(true)
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.buckets.is_empty() {
            inner.buckets = vec![0; BUCKETS];
        }
        inner.buckets[bucket_index(v)] += 1;
        inner.count += 1;
        inner.sum = inner.sum.saturating_add(v);
        inner.min = inner.min.min(v);
        inner.max = inner.max.max(v);
    }

    /// Record the same value `n` times in one lock acquisition — the
    /// group-commit case, where one measured flush covers `n` records
    /// and each record's sample is the amortized cost. Equivalent to
    /// calling [`Histogram::record`] `n` times.
    pub fn record_n(&self, v: u64, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.buckets.is_empty() {
            inner.buckets = vec![0; BUCKETS];
        }
        inner.buckets[bucket_index(v)] += n;
        inner.count += n;
        inner.sum = inner.sum.saturating_add(v.saturating_mul(n));
        inner.min = inner.min.min(v);
        inner.max = inner.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.inner.lock().sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        let inner = self.inner.lock();
        (inner.count > 0).then_some(inner.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        let inner = self.inner.lock();
        (inner.count > 0).then_some(inner.max)
    }

    /// Inclusive value bounds of the bucket holding the `q`-quantile
    /// sample (`q` clamped to `[0, 1]`; rank = `ceil(q · count)`, at
    /// least 1). `None` when empty. The exact sorted-sample quantile is
    /// guaranteed to lie within these bounds.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let inner = self.inner.lock();
        if inner.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * inner.count as f64).ceil() as u64).clamp(1, inner.count);
        let mut cum = 0u64;
        for (i, &n) in inner.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let (lo, hi) = bucket_bounds(i);
                // tighten by the recorded extremes
                return Some((lo.max(inner.min.min(hi)), hi.min(inner.max)));
            }
        }
        None // unreachable: cum == count >= rank by the loop end
    }

    /// Point estimate for the `q`-quantile: the upper bound of the bucket
    /// holding that rank (conservative for alarm thresholds). `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.quantile_bounds(q).map(|(_, hi)| hi)
    }

    /// `(count, sum, min, max, p50, p90, p99)` in one lock acquisition
    /// family — the snapshot exporter's view.
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.count() == 0 {
            return None;
        }
        Some(HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap(),
            max: self.max().unwrap(),
            p50: self.quantile(0.50).unwrap(),
            p90: self.quantile(0.90).unwrap(),
            p99: self.quantile(0.99).unwrap(),
        })
    }
}

/// Exported histogram digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "bucket index not monotone at {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
            last = i;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::detached();
        for v in [0u64, 1, 2, 3, 15] {
            h.record(v);
        }
        assert_eq!(h.quantile_bounds(0.0), Some((0, 0)));
        assert_eq!(h.quantile_bounds(1.0), Some((15, 15)));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(15));
        assert_eq!(h.sum(), 21);
    }

    #[test]
    fn median_of_known_stream() {
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (lo, hi) = h.quantile_bounds(0.5).unwrap();
        assert!(lo <= 500 && 500 <= hi, "median bucket [{lo}, {hi}]");
        // bucket relative width ≤ 1/16
        assert!(hi - lo <= 500 / 16 + 1, "bucket too wide: [{lo}, {hi}]");
    }

    #[test]
    fn record_n_equals_n_records() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        a.record_n(37, 5);
        a.record_n(1000, 2);
        a.record_n(9, 0); // no-op
        for _ in 0..5 {
            b.record(37);
        }
        for _ in 0..2 {
            b.record(1000);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.quantile_bounds(0.5), b.quantile_bounds(0.5));
        assert_eq!(a.quantile_bounds(0.99), b.quantile_bounds(0.99));
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram::new(false);
        h.record(42);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary(), None);
    }

    #[test]
    fn empty_quantile_is_none() {
        let h = Histogram::detached();
        assert_eq!(h.quantile_bounds(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }
}
