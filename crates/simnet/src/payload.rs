//! Payload synthesis for generated files.
//!
//! Deterministic CSV-like measurement bodies: repetitive enough for the
//! compression pipeline to be exercised meaningfully (poller output is
//! highly compressible), seeded per file so regeneration is stable.

use crate::GenFile;
use bistro_base::checksum::fnv1a64;
use bistro_base::Rng;
use std::fmt::Write as _;

/// Synthesize a measurement-CSV payload of approximately
/// `file.size` bytes, deterministic in the file's name.
pub fn payload_for(file: &GenFile) -> Vec<u8> {
    let seed = fnv1a64(file.name.as_bytes());
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = String::with_capacity(file.size as usize + 128);
    out.push_str("timestamp,element,metric,value\n");
    let secs = file.feed_time.as_secs();
    let mut row = 0u64;
    while out.len() < file.size as usize {
        let _ = writeln!(
            out,
            "{},router_{:03},{},{}",
            secs + row % 300,
            rng.gen_range(0..50),
            file.subfeed.to_lowercase(),
            rng.gen_range(0..1_000_000)
        );
        row += 1;
    }
    out.truncate(file.size as usize);
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::{TimePoint, TimeSpan};

    fn file(name: &str, size: u64) -> GenFile {
        GenFile {
            name: name.to_string(),
            poller: 1,
            subfeed: "MEMORY".to_string(),
            feed_time: TimePoint::from_secs(1_285_372_800),
            deposit_time: TimePoint::from_secs(1_285_372_800) + TimeSpan::from_secs(5),
            size,
        }
    }

    #[test]
    fn payload_has_requested_size() {
        for size in [100u64, 1_000, 50_000] {
            let p = payload_for(&file("a.csv", size));
            assert_eq!(p.len(), size as usize);
        }
    }

    #[test]
    fn payload_deterministic_per_name() {
        let a = payload_for(&file("x.csv", 1000));
        let b = payload_for(&file("x.csv", 1000));
        let c = payload_for(&file("y.csv", 1000));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn payload_is_compressible() {
        let p = payload_for(&file("m.csv", 100_000));
        // CSV with repeated structure should compress well with LZSS-like
        // algorithms; sanity-check entropy via a crude distinct-bytes count
        let distinct: std::collections::BTreeSet<u8> = p.iter().copied().collect();
        assert!(distinct.len() < 64, "payload should be text-like");
    }
}
