//! # bistro-simnet
//!
//! Deterministic workload generation — the substitute for AT&T's
//! production measurement infrastructure (DESIGN.md substitution table).
//!
//! The classifier, analyzer, batcher and scheduler only ever see
//! *filenames, sizes and arrival times*. This crate reproduces the
//! statistical structure the paper describes for those observables:
//!
//! * fleets of SNMP-style pollers emitting one file per subfeed per
//!   measurement interval ([`FleetConfig`] / [`generate`]);
//! * several real naming conventions from the paper's examples
//!   ([`NameStyle`]);
//! * out-of-order arrival: per-file jitter plus heavy-tailed stragglers
//!   (§2.2.1 "feed files can arrive arbitrarily late and frequently
//!   out-of-order");
//! * unreliable sources: pollers that skip intervals (§4.1's motivation
//!   for hybrid batch specs);
//! * feed evolution events: renamed conventions, new pollers, new
//!   extensions (§2.1.3) — the ground truth for analyzer experiments.
//!
//! Everything is seeded ([`bistro_base::Rng::seed_from_u64`]): the
//! same config generates the same trace.

use bistro_base::{Rng, TimePoint, TimeSpan};

pub mod payload;

/// A naming convention for generated files, drawn from the paper's
/// examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NameStyle {
    /// `MEMORY_POLLER1_2010092504_51.csv.gz` (§5.1).
    CompactHourMin,
    /// `CPU_POLL1_201009250502.txt` (§5.1).
    CompactFull,
    /// `MEMORY_poller1_20100925.gz` (§5.2) — daily files.
    Daily,
    /// `Poller1_router_a_2010_12_30_00.csv.gz` (§2.1.2) — separated
    /// hourly timestamp.
    SeparatedHour,
}

impl NameStyle {
    /// Render a filename for this style.
    pub fn render(
        self,
        feed_name: &str,
        poller: u32,
        t: TimePoint,
        ext: &str,
        poller_word: &str,
    ) -> String {
        let c = t.to_calendar();
        match self {
            NameStyle::CompactHourMin => format!(
                "{feed_name}_{poller_word}{poller}_{:04}{:02}{:02}{:02}_{:02}.{ext}",
                c.year, c.month, c.day, c.hour, c.minute
            ),
            NameStyle::CompactFull => format!(
                "{feed_name}_{poller_word}{poller}_{:04}{:02}{:02}{:02}{:02}.{ext}",
                c.year, c.month, c.day, c.hour, c.minute
            ),
            NameStyle::Daily => format!(
                "{feed_name}_{poller_word}{poller}_{:04}{:02}{:02}.{ext}",
                c.year, c.month, c.day
            ),
            NameStyle::SeparatedHour => format!(
                "{poller_word}{poller}_{feed_name}_{:04}_{:02}_{:02}_{:02}.{ext}",
                c.year, c.month, c.day, c.hour
            ),
        }
    }
}

/// One subfeed emitted by every poller in the fleet.
#[derive(Clone, Debug)]
pub struct SubfeedSpec {
    /// The subfeed's name token (`MEMORY`, `CPU`, `BPS`, …).
    pub name: String,
    /// Naming convention.
    pub style: NameStyle,
    /// Filename extension (without leading dot).
    pub ext: String,
    /// Measurement interval.
    pub period: TimeSpan,
    /// Uniform file size range in bytes.
    pub size_range: (u64, u64),
}

impl SubfeedSpec {
    /// A 5-minute compact-style subfeed with small files.
    pub fn standard(name: &str) -> SubfeedSpec {
        SubfeedSpec {
            name: name.to_string(),
            style: NameStyle::CompactFull,
            ext: "csv".to_string(),
            period: TimeSpan::from_mins(5),
            size_range: (10_000, 100_000),
        }
    }
}

/// A feed-evolution event (§2.1.3): at `at`, the convention changes.
#[derive(Clone, Debug)]
pub enum Evolution {
    /// The poller word changes spelling (e.g. `poller` → `Poller`),
    /// breaking case-sensitive patterns.
    RenamePollerWord {
        /// When the change takes effect (by feed time).
        at: TimePoint,
        /// The new word.
        to: String,
    },
    /// New pollers come online: the fleet grows to `count`.
    GrowFleet {
        /// When the change takes effect.
        at: TimePoint,
        /// New total poller count.
        count: u32,
    },
    /// A subfeed switches extension (e.g. `.csv.gz` → `.csv.bz2`).
    ChangeExt {
        /// When the change takes effect.
        at: TimePoint,
        /// Affected subfeed name.
        subfeed: String,
        /// The new extension.
        to: String,
    },
}

/// Fleet configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// The subfeeds every poller emits.
    pub subfeeds: Vec<SubfeedSpec>,
    /// Number of pollers at the start.
    pub pollers: u32,
    /// The word before the poller number in filenames.
    pub poller_word: String,
    /// First measurement interval.
    pub start: TimePoint,
    /// Generation horizon (files with feed time in `[start, start+duration)`).
    pub duration: TimeSpan,
    /// Uniform deposit delay after the interval closes.
    pub delay_range: (TimeSpan, TimeSpan),
    /// Probability a file becomes a straggler (arrives much later).
    pub straggler_prob: f64,
    /// How much later stragglers arrive (uniform up to this).
    pub straggler_delay: TimeSpan,
    /// Probability a poller skips an interval entirely (unreliable
    /// sources, §4.1).
    pub skip_prob: f64,
    /// Evolution events.
    pub evolution: Vec<Evolution>,
    /// RNG seed.
    pub seed: u64,
}

impl FleetConfig {
    /// A well-behaved fleet: `pollers` pollers, the given subfeeds,
    /// 2010-09-25 00:00 start, small deposit jitter, no evolution.
    pub fn standard(pollers: u32, subfeeds: Vec<SubfeedSpec>, duration: TimeSpan) -> FleetConfig {
        FleetConfig {
            subfeeds,
            pollers,
            poller_word: "poller".to_string(),
            start: TimePoint::from_secs(1_285_372_800), // 2010-09-25 00:00 UTC
            duration,
            delay_range: (TimeSpan::from_secs(1), TimeSpan::from_secs(20)),
            straggler_prob: 0.0,
            straggler_delay: TimeSpan::from_hours(6),
            skip_prob: 0.0,
            evolution: Vec::new(),
            seed: 42,
        }
    }
}

/// One generated file.
#[derive(Clone, Debug)]
pub struct GenFile {
    /// The filename (landing-directory relative).
    pub name: String,
    /// Which poller produced it.
    pub poller: u32,
    /// The subfeed it belongs to.
    pub subfeed: String,
    /// The measurement-interval timestamp embedded in the name.
    pub feed_time: TimePoint,
    /// When the file lands at the server.
    pub deposit_time: TimePoint,
    /// Size in bytes.
    pub size: u64,
}

/// Generate a fleet trace, sorted by deposit time.
pub fn generate(cfg: &FleetConfig) -> Vec<GenFile> {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    let end = cfg.start + cfg.duration;

    for spec in &cfg.subfeeds {
        let mut t = cfg.start;
        while t < end {
            // evolution state as of feed time t
            let mut poller_word = cfg.poller_word.clone();
            let mut fleet = cfg.pollers;
            let mut ext = spec.ext.clone();
            for ev in &cfg.evolution {
                match ev {
                    Evolution::RenamePollerWord { at, to } if t >= *at => {
                        poller_word = to.clone();
                    }
                    Evolution::GrowFleet { at, count } if t >= *at => {
                        fleet = *count;
                    }
                    Evolution::ChangeExt { at, subfeed, to }
                        if t >= *at && *subfeed == spec.name =>
                    {
                        ext = to.clone();
                    }
                    _ => {}
                }
            }

            for poller in 1..=fleet {
                if cfg.skip_prob > 0.0 && rng.gen_bool(cfg.skip_prob) {
                    continue;
                }
                let name = spec.style.render(&spec.name, poller, t, &ext, &poller_word);
                let size =
                    rng.gen_range(spec.size_range.0..=spec.size_range.1.max(spec.size_range.0 + 1));
                let base_delay_us = rng.gen_range(
                    cfg.delay_range.0.as_micros()
                        ..=cfg
                            .delay_range
                            .1
                            .as_micros()
                            .max(cfg.delay_range.0.as_micros() + 1),
                );
                let mut deposit = t + spec.period + TimeSpan::from_micros(base_delay_us);
                if cfg.straggler_prob > 0.0 && rng.gen_bool(cfg.straggler_prob) {
                    deposit +=
                        TimeSpan::from_micros(rng.gen_range(0..=cfg.straggler_delay.as_micros()));
                }
                out.push(GenFile {
                    name,
                    poller,
                    subfeed: spec.name.clone(),
                    feed_time: t,
                    deposit_time: deposit,
                    size,
                });
            }
            t += spec.period;
        }
    }
    out.sort_by_key(|f| (f.deposit_time, f.name.clone()));
    out
}

/// The aggregate-feed scenario of §5.1 / experiment E8: `n_subfeeds`
/// loosely related subfeeds (numbered name tokens, mixed styles) from
/// `pollers` pollers over `duration`.
pub fn aggregate_feed(
    n_subfeeds: usize,
    pollers: u32,
    duration: TimeSpan,
    seed: u64,
) -> FleetConfig {
    let styles = [
        NameStyle::CompactFull,
        NameStyle::CompactHourMin,
        NameStyle::Daily,
        NameStyle::SeparatedHour,
    ];
    let kinds = [
        "MEMORY", "CPU", "BPS", "PPS", "LINKUTIL", "LINKLOSS", "ALARM", "TOPO", "FAULT", "WORKFLOW",
    ];
    let exts = ["csv", "txt", "csv.gz", "dat"];
    let subfeeds = (0..n_subfeeds)
        .map(|i| {
            let base = kinds[i % kinds.len()];
            // distinct all-alphabetic name tokens (digit suffixes would be
            // structurally indistinguishable from poller-id fields — the
            // ambiguity §5.1 leaves to human experts)
            let name = if i < kinds.len() {
                base.to_string()
            } else {
                let suffix = (b'A' + ((i / kinds.len() - 1) % 26) as u8) as char;
                format!("{base}{suffix}")
            };
            SubfeedSpec {
                name,
                style: styles[i % styles.len()],
                ext: exts[i % exts.len()].to_string(),
                period: if i % 3 == 0 {
                    TimeSpan::from_mins(5)
                } else if i % 3 == 1 {
                    TimeSpan::from_mins(15)
                } else {
                    TimeSpan::from_hours(1)
                },
                size_range: (5_000, 200_000),
            }
        })
        .collect();
    let mut cfg = FleetConfig::standard(pollers, subfeeds, duration);
    cfg.seed = seed;
    cfg
}

/// A partitioned multi-server workload: `groups` feed groups, each with
/// `kinds_per_group` subfeeds whose name tokens embed the group
/// (`ALPHA_CPU`, `ALPHA_MEM`, `BETA_CPU`, …), so every generated
/// filename classifies into exactly one group. Pair with
/// [`partitioned_config`] for the matching cluster configuration.
pub fn partitioned_fleet(
    groups: &[&str],
    kinds_per_group: usize,
    pollers: u32,
    duration: TimeSpan,
    seed: u64,
) -> FleetConfig {
    let kinds = ["CPU", "MEM", "BPS", "PPS", "ALARM", "TOPO"];
    let subfeeds = groups
        .iter()
        .flat_map(|g| {
            (0..kinds_per_group).map(move |i| SubfeedSpec {
                name: format!("{g}_{}", kinds[i % kinds.len()]),
                style: NameStyle::CompactFull,
                ext: "csv".to_string(),
                period: TimeSpan::from_mins(5),
                size_range: (5_000, 50_000),
            })
        })
        .collect();
    let mut cfg = FleetConfig::standard(pollers, subfeeds, duration);
    cfg.seed = seed;
    cfg
}

/// Bistro configuration text matching [`partitioned_fleet`]: one
/// hierarchical feed per (group, kind) — `feed ALPHA/CPU` matching the
/// `ALPHA_CPU_poller…` names — carrying that group's fault-tolerance
/// `policy`. Feed it to every cluster member and the cluster ingress.
pub fn partitioned_config(groups: &[(&str, &str)], kinds_per_group: usize) -> String {
    let kinds = ["CPU", "MEM", "BPS", "PPS", "ALARM", "TOPO"];
    let mut out = String::from("server { retention 7d; }\n");
    for (g, policy) in groups {
        for i in 0..kinds_per_group {
            let kind = kinds[i % kinds.len()];
            out.push_str(&format!(
                "feed {g}/{kind} {{\n    pattern \"{g}_{kind}_poller%i_%Y%m%d%H%M.csv\";\n    policy {policy};\n}}\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn style_rendering_matches_paper_examples() {
        let t = bistro_base::time::Calendar {
            year: 2010,
            month: 9,
            day: 25,
            hour: 4,
            minute: 51,
            second: 0,
        }
        .to_timepoint()
        .unwrap();
        assert_eq!(
            NameStyle::CompactHourMin.render("MEMORY", 1, t, "csv.gz", "POLLER"),
            "MEMORY_POLLER1_2010092504_51.csv.gz"
        );
        assert_eq!(
            NameStyle::CompactFull.render("CPU", 1, t, "txt", "POLL"),
            "CPU_POLL1_201009250451.txt"
        );
        assert_eq!(
            NameStyle::Daily.render("MEMORY", 2, t, "gz", "poller"),
            "MEMORY_poller2_20100925.gz"
        );
        assert_eq!(
            NameStyle::SeparatedHour.render("router_a", 1, t, "csv.gz", "Poller"),
            "Poller1_router_a_2010_09_25_04.csv.gz"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FleetConfig::standard(
            3,
            vec![SubfeedSpec::standard("MEMORY")],
            TimeSpan::from_hours(1),
        );
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.deposit_time, y.deposit_time);
            assert_eq!(x.size, y.size);
        }
    }

    #[test]
    fn file_counts() {
        // 3 pollers × 12 intervals × 2 subfeeds
        let cfg = FleetConfig::standard(
            3,
            vec![
                SubfeedSpec::standard("MEMORY"),
                SubfeedSpec::standard("CPU"),
            ],
            TimeSpan::from_hours(1),
        );
        let files = generate(&cfg);
        assert_eq!(files.len(), 3 * 12 * 2);
        // sorted by deposit time
        for w in files.windows(2) {
            assert!(w[0].deposit_time <= w[1].deposit_time);
        }
    }

    #[test]
    fn skips_reduce_counts() {
        let mut cfg = FleetConfig::standard(
            4,
            vec![SubfeedSpec::standard("MEMORY")],
            TimeSpan::from_hours(4),
        );
        cfg.skip_prob = 0.3;
        let files = generate(&cfg);
        let full = 4 * 48;
        assert!(files.len() < full, "{} < {full}", files.len());
        assert!(files.len() > full / 2);
    }

    #[test]
    fn stragglers_arrive_late_and_out_of_order() {
        let mut cfg = FleetConfig::standard(
            2,
            vec![SubfeedSpec::standard("MEMORY")],
            TimeSpan::from_hours(6),
        );
        cfg.straggler_prob = 0.2;
        let files = generate(&cfg);
        // out-of-order by feed time despite deposit-order sort
        let ooo = files
            .windows(2)
            .filter(|w| w[0].feed_time > w[1].feed_time)
            .count();
        assert!(ooo > 0, "expected out-of-order feed times");
        let max_lag = files
            .iter()
            .map(|f| f.deposit_time.since(f.feed_time))
            .max()
            .unwrap();
        assert!(max_lag > TimeSpan::from_hours(1));
    }

    #[test]
    fn evolution_rename_changes_names() {
        let mut cfg = FleetConfig::standard(
            1,
            vec![SubfeedSpec {
                name: "MEMORY".to_string(),
                style: NameStyle::Daily,
                ext: "gz".to_string(),
                period: TimeSpan::from_days(1),
                size_range: (100, 200),
            }],
            TimeSpan::from_days(10),
        );
        let switch = cfg.start + TimeSpan::from_days(5);
        cfg.evolution = vec![Evolution::RenamePollerWord {
            at: switch,
            to: "Poller".to_string(),
        }];
        let files = generate(&cfg);
        let lower = files.iter().filter(|f| f.name.contains("_poller")).count();
        let upper = files.iter().filter(|f| f.name.contains("_Poller")).count();
        assert_eq!(lower, 5);
        assert_eq!(upper, 5);
    }

    #[test]
    fn evolution_grow_fleet() {
        let mut cfg = FleetConfig::standard(
            2,
            vec![SubfeedSpec::standard("CPU")],
            TimeSpan::from_hours(2),
        );
        cfg.evolution = vec![Evolution::GrowFleet {
            at: cfg.start + TimeSpan::from_hours(1),
            count: 5,
        }];
        let files = generate(&cfg);
        assert_eq!(files.len(), 12 * 2 + 12 * 5);
        assert!(files.iter().any(|f| f.poller == 5));
    }

    #[test]
    fn partitioned_fleet_names_embed_their_group() {
        let cfg = partitioned_fleet(&["ALPHA", "BETA"], 2, 2, TimeSpan::from_mins(30), 9);
        let files = generate(&cfg);
        // 2 groups × 2 kinds × 2 pollers × 6 intervals
        assert_eq!(files.len(), 2 * 2 * 2 * 6);
        assert!(files
            .iter()
            .all(|f| f.name.starts_with("ALPHA_") || f.name.starts_with("BETA_")));
        // deterministic under the seed
        let again = generate(&cfg);
        assert_eq!(
            files.iter().map(|f| &f.name).collect::<Vec<_>>(),
            again.iter().map(|f| &f.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn partitioned_config_declares_one_feed_per_group_kind() {
        let src = partitioned_config(&[("ALPHA", "failover"), ("BETA", "spill")], 2);
        assert!(src.contains("feed ALPHA/CPU"));
        assert!(src.contains("feed BETA/MEM"));
        assert_eq!(src.matches("policy failover;").count(), 2);
        assert_eq!(src.matches("policy spill;").count(), 2);
        assert!(src.contains("pattern \"ALPHA_CPU_poller%i_%Y%m%d%H%M.csv\""));
    }

    #[test]
    fn aggregate_scenario_shape() {
        let cfg = aggregate_feed(25, 3, TimeSpan::from_hours(2), 7);
        assert_eq!(cfg.subfeeds.len(), 25);
        let files = generate(&cfg);
        assert!(!files.is_empty());
        // distinct subfeed names
        let names: std::collections::BTreeSet<_> =
            files.iter().map(|f| f.subfeed.clone()).collect();
        assert_eq!(names.len(), 25);
    }
}
