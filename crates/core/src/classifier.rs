//! The feed classifier (paper §3.2).
//!
//! Compiles every registered feed's patterns and classifies each
//! incoming filename as belonging to zero or more consumer feeds. A
//! first-literal dispatch index keeps the common case (hundreds of feeds,
//! distinct name prefixes) sub-linear: only patterns whose literal prefix
//! is a prefix of the filename — plus the patterns starting with a
//! variable field — are tried.

use bistro_config::Config;
use bistro_pattern::{Captures, Pattern};
use std::collections::BTreeMap;

/// One successful pattern match for a file.
#[derive(Clone, Debug)]
pub struct Classification {
    /// The feed the file belongs to.
    pub feed: String,
    /// Which of the feed's patterns matched (index into its pattern
    /// list).
    pub pattern_index: usize,
    /// The typed captures.
    pub captures: Captures,
}

struct CompiledPattern {
    feed: String,
    pattern_index: usize,
    pattern: Pattern,
    specificity: i64,
}

/// Compiled pattern set for a configuration.
pub struct Classifier {
    /// Patterns with a non-empty literal prefix, keyed by that prefix.
    /// BTreeMap range scan finds all prefixes of a given filename.
    prefixed: BTreeMap<String, Vec<usize>>,
    /// Patterns starting with a variable field — always tried.
    unprefixed: Vec<usize>,
    patterns: Vec<CompiledPattern>,
}

impl Classifier {
    /// Compile all feed patterns from a configuration.
    pub fn compile(config: &Config) -> Classifier {
        let mut patterns = Vec::new();
        for feed in &config.feeds {
            for (i, p) in feed.patterns.iter().enumerate() {
                patterns.push(CompiledPattern {
                    feed: feed.name.clone(),
                    pattern_index: i,
                    specificity: p.specificity(),
                    pattern: p.clone(),
                });
            }
        }
        let mut prefixed: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut unprefixed = Vec::new();
        for (idx, cp) in patterns.iter().enumerate() {
            let prefix = cp.pattern.literal_prefix();
            if prefix.is_empty() {
                unprefixed.push(idx);
            } else {
                prefixed.entry(prefix.to_string()).or_default().push(idx);
            }
        }
        Classifier {
            prefixed,
            unprefixed,
            patterns,
        }
    }

    /// Number of compiled patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Classify a filename into all matching feeds, most specific
    /// pattern first. An empty result means "unknown feed" — analyzer
    /// territory.
    pub fn classify(&self, name: &str) -> Vec<Classification> {
        let mut out: Vec<(i64, Classification)> = Vec::new();
        let try_pattern = |idx: usize, out: &mut Vec<(i64, Classification)>| {
            let cp = &self.patterns[idx];
            if let Some(captures) = cp.pattern.match_str(name) {
                out.push((
                    cp.specificity,
                    Classification {
                        feed: cp.feed.clone(),
                        pattern_index: cp.pattern_index,
                        captures,
                    },
                ));
            }
        };

        // candidate prefixes: every prefixed group whose key is a prefix
        // of `name`. Walk the BTreeMap by successively longer prefixes of
        // the name's first segment.
        for len in 1..=name.len() {
            if !name.is_char_boundary(len) {
                continue;
            }
            if let Some(indices) = self.prefixed.get(&name[..len]) {
                for &idx in indices {
                    try_pattern(idx, &mut out);
                }
            }
        }
        for &idx in &self.unprefixed {
            try_pattern(idx, &mut out);
        }

        // most specific first; dedupe feeds (a feed with several matching
        // patterns classifies once, via its most specific match)
        out.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.feed.cmp(&b.1.feed)));
        let mut seen = std::collections::HashSet::new();
        out.into_iter()
            .filter_map(|(_, c)| {
                if seen.insert(c.feed.clone()) {
                    Some(c)
                } else {
                    None
                }
            })
            .collect()
    }

    /// The feeds a file belongs to (names only).
    pub fn feeds_for(&self, name: &str) -> Vec<String> {
        self.classify(name).into_iter().map(|c| c.feed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_config::parse_config;

    fn classifier() -> Classifier {
        let cfg = parse_config(
            r#"
            feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
            feed SNMP/CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
            feed WILD { pattern "*_%Y_%m_%d.csv.gz"; }
            feed MULTI {
                pattern "MULTI_a_%i.dat";
                pattern "MULTI_b_%i.dat";
            }
            "#,
        )
        .unwrap();
        Classifier::compile(&cfg)
    }

    #[test]
    fn classifies_to_correct_feed() {
        let c = classifier();
        assert_eq!(
            c.feeds_for("MEMORY_poller1_20100925.gz"),
            vec!["SNMP/MEMORY"]
        );
        assert_eq!(c.feeds_for("CPU_POLL2_201009251001.txt"), vec!["SNMP/CPU"]);
        assert!(c.feeds_for("unknown_thing.bin").is_empty());
    }

    #[test]
    fn captures_travel_with_classification() {
        let c = classifier();
        let cls = c.classify("MEMORY_poller7_20100925.gz");
        assert_eq!(cls.len(), 1);
        assert_eq!(cls[0].captures.first_int(), Some(7));
        assert!(cls[0].captures.timestamp().is_some());
    }

    #[test]
    fn wildcard_feed_catches_generic_names() {
        let c = classifier();
        assert_eq!(c.feeds_for("poller1_2010_12_30.csv.gz"), vec!["WILD"]);
        assert_eq!(c.feeds_for("anything_2010_12_30.csv.gz"), vec!["WILD"]);
    }

    #[test]
    fn multiple_patterns_one_feed_dedupe() {
        let c = classifier();
        assert_eq!(c.feeds_for("MULTI_a_5.dat"), vec!["MULTI"]);
        assert_eq!(c.feeds_for("MULTI_b_5.dat"), vec!["MULTI"]);
    }

    #[test]
    fn overlapping_feeds_most_specific_first() {
        let cfg = parse_config(
            r#"
            feed SPECIFIC { pattern "BPS_poller%i_%Y%m%d.csv.gz"; }
            feed GENERIC { pattern "*_%Y%m%d.csv.gz"; }
            "#,
        )
        .unwrap();
        let c = Classifier::compile(&cfg);
        let feeds = c.feeds_for("BPS_poller1_20100925.csv.gz");
        assert_eq!(feeds, vec!["SPECIFIC", "GENERIC"]);
    }

    #[test]
    fn prefix_dispatch_scales() {
        // 500 feeds with distinct prefixes: classification must still be
        // correct (and the index keeps it fast, exercised by benches)
        let mut src = String::new();
        for i in 0..500 {
            src.push_str(&format!(
                "feed F{i} {{ pattern \"KIND{i}_p%i_%Y%m%d.csv\"; }}\n"
            ));
        }
        let cfg = parse_config(&src).unwrap();
        let c = Classifier::compile(&cfg);
        assert_eq!(c.pattern_count(), 500);
        assert_eq!(c.feeds_for("KIND250_p3_20100925.csv"), vec!["F250"]);
        assert!(c.feeds_for("KIND9999_p3_20100925.csv").is_empty());
    }
}
