//! The feed classifier (paper §3.2).
//!
//! Compiles every registered feed's patterns and classifies each
//! incoming filename as belonging to zero or more consumer feeds. A
//! first-literal dispatch index keeps the common case (hundreds of feeds,
//! distinct name prefixes) sub-linear: only patterns whose literal prefix
//! is a prefix of the filename — plus the patterns starting with a
//! variable field — are tried.

use bistro_config::Config;
use bistro_pattern::{Captures, Pattern};
use std::collections::BTreeMap;

/// One successful pattern match for a file.
#[derive(Clone, Debug)]
pub struct Classification {
    /// The feed the file belongs to.
    pub feed: String,
    /// Which of the feed's patterns matched (index into its pattern
    /// list).
    pub pattern_index: usize,
    /// The typed captures.
    pub captures: Captures,
}

struct CompiledPattern {
    feed: String,
    pattern_index: usize,
    pattern: Pattern,
    specificity: i64,
}

/// Compiled pattern set for a configuration.
pub struct Classifier {
    /// Patterns with a non-empty literal prefix, keyed by that prefix.
    /// BTreeMap range scan finds all prefixes of a given filename.
    prefixed: BTreeMap<String, Vec<usize>>,
    /// Patterns starting with a variable field — always tried.
    unprefixed: Vec<usize>,
    patterns: Vec<CompiledPattern>,
}

impl Classifier {
    /// Compile all feed patterns from a configuration.
    pub fn compile(config: &Config) -> Classifier {
        let mut patterns = Vec::new();
        for feed in &config.feeds {
            for (i, p) in feed.patterns.iter().enumerate() {
                patterns.push(CompiledPattern {
                    feed: feed.name.clone(),
                    pattern_index: i,
                    specificity: p.specificity(),
                    pattern: p.clone(),
                });
            }
        }
        let mut prefixed: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut unprefixed = Vec::new();
        for (idx, cp) in patterns.iter().enumerate() {
            let prefix = cp.pattern.literal_prefix();
            if prefix.is_empty() {
                unprefixed.push(idx);
            } else {
                prefixed.entry(prefix.to_string()).or_default().push(idx);
            }
        }
        Classifier {
            prefixed,
            unprefixed,
            patterns,
        }
    }

    /// Number of compiled patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Classify a filename into all matching feeds, most specific
    /// pattern first. An empty result means "unknown feed" — analyzer
    /// territory.
    pub fn classify(&self, name: &str) -> Vec<Classification> {
        self.classify_from(name, self.prefix_candidates(name))
    }

    /// Prefixed-pattern candidates for `name`: the indices under every
    /// dispatch key that is a prefix of `name`, ascending.
    ///
    /// One descending scan over the BTreeMap instead of `len(name)`
    /// separate lookups: `upper` is always a prefix of `name`, and
    /// `range(..=upper).next_back()` yields the largest key ≤ `upper` —
    /// which is the longest not-yet-collected prefix key if one exists.
    /// After a hit we continue below that key's length; after a miss the
    /// longest common prefix with `name` bounds every remaining prefix
    /// key, so `upper` shrinks on every step and the loop visits
    /// O(matching keys) map entries.
    fn prefix_candidates(&self, name: &str) -> Vec<usize> {
        let mut out = Vec::new();
        let mut upper = name;
        while !upper.is_empty() {
            let below = (std::ops::Bound::Unbounded, std::ops::Bound::Included(upper));
            let Some((key, indices)) = self.prefixed.range::<str, _>(below).next_back() else {
                break;
            };
            let cut = if name.starts_with(key.as_str()) {
                out.extend_from_slice(indices);
                key.len() - 1
            } else {
                key.bytes()
                    .zip(name.bytes())
                    .take_while(|(a, b)| a == b)
                    .count()
            };
            let mut cut = cut.min(upper.len().saturating_sub(1));
            while !name.is_char_boundary(cut) {
                cut -= 1;
            }
            upper = &name[..cut];
        }
        out.sort_unstable();
        out
    }

    /// The original dispatch walk — one map lookup per prefix length of
    /// `name`. Kept (test-only surface) as the reference implementation
    /// for the [`Classifier::prefix_candidates`] equivalence property.
    #[doc(hidden)]
    pub fn prefix_candidates_length_walk(&self, name: &str) -> Vec<usize> {
        let mut out = Vec::new();
        for len in 1..=name.len() {
            if !name.is_char_boundary(len) {
                continue;
            }
            if let Some(indices) = self.prefixed.get(&name[..len]) {
                out.extend_from_slice(indices);
            }
        }
        out.sort_unstable();
        out
    }

    /// `classify` with the legacy per-length dispatch walk feeding the
    /// same match/rank/dedupe pipeline. Test-only reference.
    #[doc(hidden)]
    pub fn classify_length_walk(&self, name: &str) -> Vec<Classification> {
        self.classify_from(name, self.prefix_candidates_length_walk(name))
    }

    /// Match, rank and dedupe: candidates (plus the always-tried
    /// unprefixed patterns) are matched by index, ranked most-specific
    /// first (ties broken by feed name, then compile order), and deduped
    /// so a feed with several matching patterns classifies once via its
    /// most specific match. Feed names materialize exactly once, for the
    /// surviving classifications.
    fn classify_from(&self, name: &str, candidates: Vec<usize>) -> Vec<Classification> {
        let mut hits: Vec<(i64, usize, Captures)> = Vec::new();
        for idx in candidates
            .into_iter()
            .chain(self.unprefixed.iter().copied())
        {
            let cp = &self.patterns[idx];
            if let Some(captures) = cp.pattern.match_str(name) {
                hits.push((cp.specificity, idx, captures));
            }
        }
        hits.sort_by(|a, b| {
            b.0.cmp(&a.0)
                .then_with(|| self.patterns[a.1].feed.cmp(&self.patterns[b.1].feed))
                .then(a.1.cmp(&b.1))
        });
        let mut out: Vec<Classification> = Vec::with_capacity(hits.len());
        let mut kept: Vec<usize> = Vec::with_capacity(hits.len());
        for (_, idx, captures) in hits {
            let cp = &self.patterns[idx];
            if kept.iter().any(|&k| self.patterns[k].feed == cp.feed) {
                continue;
            }
            kept.push(idx);
            out.push(Classification {
                feed: cp.feed.clone(),
                pattern_index: cp.pattern_index,
                captures,
            });
        }
        out
    }

    /// The feeds a file belongs to (names only).
    pub fn feeds_for(&self, name: &str) -> Vec<String> {
        self.classify(name).into_iter().map(|c| c.feed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_config::parse_config;

    fn classifier() -> Classifier {
        let cfg = parse_config(
            r#"
            feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
            feed SNMP/CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
            feed WILD { pattern "*_%Y_%m_%d.csv.gz"; }
            feed MULTI {
                pattern "MULTI_a_%i.dat";
                pattern "MULTI_b_%i.dat";
            }
            "#,
        )
        .unwrap();
        Classifier::compile(&cfg)
    }

    #[test]
    fn classifies_to_correct_feed() {
        let c = classifier();
        assert_eq!(
            c.feeds_for("MEMORY_poller1_20100925.gz"),
            vec!["SNMP/MEMORY"]
        );
        assert_eq!(c.feeds_for("CPU_POLL2_201009251001.txt"), vec!["SNMP/CPU"]);
        assert!(c.feeds_for("unknown_thing.bin").is_empty());
    }

    #[test]
    fn captures_travel_with_classification() {
        let c = classifier();
        let cls = c.classify("MEMORY_poller7_20100925.gz");
        assert_eq!(cls.len(), 1);
        assert_eq!(cls[0].captures.first_int(), Some(7));
        assert!(cls[0].captures.timestamp().is_some());
    }

    #[test]
    fn wildcard_feed_catches_generic_names() {
        let c = classifier();
        assert_eq!(c.feeds_for("poller1_2010_12_30.csv.gz"), vec!["WILD"]);
        assert_eq!(c.feeds_for("anything_2010_12_30.csv.gz"), vec!["WILD"]);
    }

    #[test]
    fn multiple_patterns_one_feed_dedupe() {
        let c = classifier();
        assert_eq!(c.feeds_for("MULTI_a_5.dat"), vec!["MULTI"]);
        assert_eq!(c.feeds_for("MULTI_b_5.dat"), vec!["MULTI"]);
    }

    #[test]
    fn overlapping_feeds_most_specific_first() {
        let cfg = parse_config(
            r#"
            feed SPECIFIC { pattern "BPS_poller%i_%Y%m%d.csv.gz"; }
            feed GENERIC { pattern "*_%Y%m%d.csv.gz"; }
            "#,
        )
        .unwrap();
        let c = Classifier::compile(&cfg);
        let feeds = c.feeds_for("BPS_poller1_20100925.csv.gz");
        assert_eq!(feeds, vec!["SPECIFIC", "GENERIC"]);
    }

    #[test]
    fn prefix_dispatch_scales() {
        // 500 feeds with distinct prefixes: classification must still be
        // correct (and the index keeps it fast, exercised by benches)
        let mut src = String::new();
        for i in 0..500 {
            src.push_str(&format!(
                "feed F{i} {{ pattern \"KIND{i}_p%i_%Y%m%d.csv\"; }}\n"
            ));
        }
        let cfg = parse_config(&src).unwrap();
        let c = Classifier::compile(&cfg);
        assert_eq!(c.pattern_count(), 500);
        assert_eq!(c.feeds_for("KIND250_p3_20100925.csv"), vec!["F250"]);
        assert!(c.feeds_for("KIND9999_p3_20100925.csv").is_empty());
    }
}
