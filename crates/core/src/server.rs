//! The Bistro server (paper §3, Figure 2).
//!
//! Drives the full pipeline deterministically on a shared clock:
//! landing-zone ingest → classification → normalization → staging →
//! reliable delivery (receipts) → batching → triggers, plus retention
//! expiration with archiving, progress monitoring, and the continuous
//! analyzer taps (new-feed discovery and false-negative detection on
//! unmatched files).

use crate::classifier::Classifier;
use crate::index::DeliveryIndex;
use crate::log::{EventLog, LogLevel};
use crate::normalizer::NormalizeError;
use crate::parallel::{self, Prepared};
use bistro_analyzer::discovery::DiscoveredFeed;
use bistro_analyzer::fn_detect::FnWarning;
use bistro_analyzer::{
    fp_report, FeedDiscoverer, FeedProgress, FnDetector, FpReport, ProgressAlert,
};
use bistro_base::{
    BatchId, FileId, Handoff, IdGen, Pool, ShardStat, SharedClock, TimePoint, TimeSpan,
};
use bistro_config::validate::validate;
use bistro_config::{BatchSpec, Config, DeliveryMode, FeedDef, SubscriberDef};
use bistro_receipts::{Archiver, FileRecord, GroupCommitStats, ReceiptError, ReceiptStore};
use bistro_telemetry::{
    AlarmRule, AlarmSet, Condition, Counter, Histogram, Json, Registry, SharedRegistry, Span,
};
use bistro_transport::messages::{GroupMsg, Message, ReliableMsg, SubscriberMsg};
use bistro_transport::trigger::TriggerContext;
use bistro_transport::{
    Batcher, Coverage, GroupTracker, RetryPolicy, RetryRound, RetryTracker, SimNetwork, TriggerLog,
};
use bistro_vfs::{FileStore, VfsError};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Errors from server operations.
#[derive(Debug)]
pub enum ServerError {
    /// Filesystem error.
    Vfs(VfsError),
    /// Receipt store error.
    Receipts(ReceiptError),
    /// Normalization error.
    Normalize(NormalizeError),
    /// Configuration error.
    Config(bistro_config::ConfigError),
    /// Unknown subscriber name.
    UnknownSubscriber(String),
    /// The subscriber is a member of a relay delivery group; its
    /// lifecycle is tied to the group plan and it cannot be removed
    /// individually.
    GroupedSubscriber(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Vfs(e) => write!(f, "{e}"),
            ServerError::Receipts(e) => write!(f, "{e}"),
            ServerError::Normalize(e) => write!(f, "{e}"),
            ServerError::Config(e) => write!(f, "{e}"),
            ServerError::UnknownSubscriber(s) => write!(f, "unknown subscriber {s}"),
            ServerError::GroupedSubscriber(s) => {
                write!(f, "subscriber {s} is a relay-group member")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<VfsError> for ServerError {
    fn from(e: VfsError) -> Self {
        ServerError::Vfs(e)
    }
}
impl From<ReceiptError> for ServerError {
    fn from(e: ReceiptError) -> Self {
        ServerError::Receipts(e)
    }
}
impl From<NormalizeError> for ServerError {
    fn from(e: NormalizeError) -> Self {
        ServerError::Normalize(e)
    }
}
impl From<bistro_config::ConfigError> for ServerError {
    fn from(e: bistro_config::ConfigError) -> Self {
        ServerError::Config(e)
    }
}

/// Per-subscriber delivery latency accounting. Latencies feed a
/// fixed-size histogram per subscriber, so memory is O(subscribers)
/// regardless of how many deliveries a long run records — a per-delivery
/// sample vector would be fatal at million-subscriber fanout scale.
#[derive(Clone, Default)]
pub struct DeliveryStats {
    /// Files classified into at least one feed.
    pub files_ingested: u64,
    /// Files that matched no feed (analyzer territory).
    pub files_unknown: u64,
    /// Delivery receipts recorded.
    pub deliveries: u64,
    /// Bytes pushed to subscribers.
    pub bytes_delivered: u64,
    /// Per-subscriber deposit→delivery latency histograms (microseconds;
    /// detached — these never render into `status_json`).
    pub latencies: HashMap<String, Arc<Histogram>>,
}

impl fmt::Debug for DeliveryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeliveryStats")
            .field("files_ingested", &self.files_ingested)
            .field("files_unknown", &self.files_unknown)
            .field("deliveries", &self.deliveries)
            .field("bytes_delivered", &self.bytes_delivered)
            .field("latency_subscribers", &self.latencies.len())
            .finish()
    }
}

impl DeliveryStats {
    /// `(mean, p95, max)` delivery latency for a subscriber. Mean and max
    /// are exact; p95 is the histogram's rank-exact upper quantile bound.
    pub fn latency_summary(&self, subscriber: &str) -> Option<(TimeSpan, TimeSpan, TimeSpan)> {
        let h = self.latencies.get(subscriber)?;
        let count = h.count();
        if count == 0 {
            return None;
        }
        let mean = h.sum() / count;
        let p95 = h.quantile(0.95).unwrap_or(0);
        let max = h.max().unwrap_or(0);
        Some((
            TimeSpan::from_micros(mean),
            TimeSpan::from_micros(p95),
            TimeSpan::from_micros(max),
        ))
    }

    /// How many raw latency samples are retained in memory: always zero —
    /// the histograms keep bucket counts only. (A regression guard: the
    /// old implementation kept one `TimeSpan` per delivery forever.)
    pub fn retained_latency_samples(&self) -> usize {
        0
    }
}

struct SubscriberState {
    def: SubscriberDef,
    feeds: Vec<String>,
    online: bool,
    consecutive_failures: u32,
}

/// Ack/retry state when reliable delivery is enabled (§4.2): the
/// unacked-send table. Its tallies live in the server's telemetry
/// registry (`reliable.*`), not here.
struct ReliableState {
    tracker: RetryTracker,
}

/// One active shared-delivery plan, built from a relay group in the
/// config. The relay server itself (whose name equals the relay
/// endpoint) skips the plan and fans out to the members through the
/// regular subscriber path — the same config drives both tiers.
struct GroupPlan {
    name: String,
    endpoint: String,
    /// Member subscriber names, sorted: the ack bitmap index of a member
    /// is its position here (the relay sorts identically).
    members: Vec<String>,
    /// Union of the members' concrete feeds.
    feeds: Vec<String>,
}

/// Shared-delivery-tree state (§3 delivery network): one tracker entry
/// and one coverage bitmap per `(group, file)` in flight, instead of a
/// [`RetryTracker`] entry per member — fanout bookkeeping scales with
/// the group count, not the member count. Tallies live in the server's
/// telemetry registry (`group.*`).
struct GroupState {
    plans: Vec<GroupPlan>,
    /// Every subscriber routed through some plan: excluded from direct
    /// per-subscriber fan-out and backfill.
    grouped: BTreeSet<String>,
    tracker: GroupTracker,
}

/// Seed for the group tracker's retry jitter when the server is not in
/// reliable mode (XORed into the reliable seed when it is, so the two
/// trackers never share an RNG stream).
const GROUP_RETRY_SEED: u64 = 0xB157_0009;

/// Handles into the server's telemetry registry, resolved once at
/// construction so the hot paths never re-look-up metric names.
struct ServerMetrics {
    ingest_total: Arc<Counter>,
    ingest_files: Arc<Counter>,
    ingest_unknown: Arc<Counter>,
    ingest_bytes_staged: Arc<Counter>,
    classify_us: Arc<Histogram>,
    normalize_us: Arc<Histogram>,
    delivery_receipts: Arc<Counter>,
    delivery_bytes: Arc<Counter>,
    dest_fallback: Arc<Counter>,
    acks_processed: Arc<Counter>,
    archiver_skipped: Arc<Counter>,
}

impl ServerMetrics {
    fn new(reg: &Registry) -> ServerMetrics {
        ServerMetrics {
            ingest_total: reg.counter("ingest.total"),
            ingest_files: reg.counter("ingest.files"),
            ingest_unknown: reg.counter("ingest.unknown"),
            ingest_bytes_staged: reg.counter("ingest.bytes_staged"),
            classify_us: reg.histogram("ingest.classify_us"),
            normalize_us: reg.histogram("ingest.normalize_us"),
            delivery_receipts: reg.counter("delivery.receipts"),
            delivery_bytes: reg.counter("delivery.bytes"),
            dest_fallback: reg.counter("delivery.dest_fallback"),
            acks_processed: reg.counter("reliable.acks_processed"),
            archiver_skipped: reg.counter("archiver.skipped"),
        }
    }
}

/// Where a file's payload lives when its commit stage runs — decides
/// the landing-zone bookkeeping [`Server::ingest_prepared`] performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LandingDisposition {
    /// The payload sits in `landing/` (single-file ingest, landing-zone
    /// scans): stage it, then remove the landing copy; an unknown file
    /// is renamed into `unknown/`.
    InLanding,
    /// The payload only ever existed in memory (the batch path hands
    /// deposited buffers straight to prepare, skipping the landing
    /// round-trip): stage directly; an unknown file is written into
    /// `unknown/` from the buffer prepare handed back.
    NeverLanded,
}

/// Default [`Server::with_commit_group`] flush knob: up to this many
/// receipt records share one batched WAL append + fsync.
pub const DEFAULT_COMMIT_GROUP: usize = 64;

/// How many prepared batches may sit in the prepare → commit hand-off
/// queue of [`Server::deposit_pipelined`] before the producer blocks.
const PIPELINE_DEPTH: usize = 2;

/// A Bistro server instance.
pub struct Server {
    name: String,
    config: Config,
    clock: SharedClock,
    store: Arc<dyn FileStore>,
    classifier: Arc<Classifier>,
    workers: Pool,
    /// Max receipt records per batched WAL append (the group-commit
    /// flush knob). WAL bytes are identical for any value ≥ 1.
    commit_group: usize,
    receipts: ReceiptStore,
    archiver: Option<Archiver>,
    log: EventLog,
    triggers: TriggerLog,
    batchers: HashMap<(String, String), Batcher>,
    batch_ids: IdGen,
    subscribers: HashMap<String, SubscriberState>,
    /// Inverted feed→subscriber / feed→plan / endpoint→subscriber maps,
    /// maintained at every subscriber/group mutation point so the
    /// per-deposit match is `O(matched)` (DESIGN.md §12.5).
    index: DeliveryIndex,
    /// When false, `ingest_prepared` matches by brute-force scan instead
    /// of the index — the oracle the equivalence property test compares
    /// against. Observable outputs are byte-identical either way.
    use_index: bool,
    net: Option<Arc<SimNetwork>>,
    reliable: Option<ReliableState>,
    groups: Option<GroupState>,
    progress: HashMap<String, FeedProgress>,
    discoverer: FeedDiscoverer,
    fn_detector: FnDetector,
    stats: DeliveryStats,
    telemetry: SharedRegistry,
    pool_telemetry: SharedRegistry,
    metrics: ServerMetrics,
    alarms: AlarmSet,
}

impl Server {
    /// Create a server over `store` with the given validated
    /// configuration. Opens (recovering if necessary) the receipt store
    /// and creates the landing/staging/unknown directories.
    pub fn new(
        name: &str,
        config: Config,
        clock: SharedClock,
        store: Arc<dyn FileStore>,
    ) -> Result<Server, ServerError> {
        validate(&config)?;
        store.create_dir_all(&config.server.landing)?;
        store.create_dir_all(&config.server.staging)?;
        store.create_dir_all("unknown")?;

        let telemetry = Registry::new();
        let metrics = ServerMetrics::new(&telemetry);
        let receipts = ReceiptStore::open(store.clone(), "receipts")?;
        receipts.set_telemetry(&telemetry, clock.clone());
        let archiver = if config.server.archive {
            Some(Archiver::new(store.clone(), "archive").map_err(ServerError::Vfs)?)
        } else {
            None
        };

        let classifier = Classifier::compile(&config);
        let fn_detector = FnDetector::new(
            config
                .feeds
                .iter()
                .map(|f| (f.name.clone(), f.patterns.clone()))
                .collect(),
        );

        let mut subscribers = HashMap::new();
        // subscription targets repeat across wide deployments (every
        // member of a delivery tree names the same feed), so memoize
        // resolution per target instead of re-walking the config — and
        // resolve from the def at hand rather than `subscriber_feeds`,
        // whose by-name lookup would make this loop quadratic
        let mut resolved: HashMap<String, Vec<String>> = HashMap::new();
        for def in &config.subscribers {
            let mut feeds: BTreeSet<String> = BTreeSet::new();
            for target in &def.subscriptions {
                if let Some(r) = resolved.get(target) {
                    feeds.extend(r.iter().cloned());
                } else {
                    let r = config.resolve_subscription(target)?;
                    feeds.extend(r.iter().cloned());
                    resolved.insert(target.clone(), r);
                }
            }
            subscribers.insert(
                def.name.clone(),
                SubscriberState {
                    def: def.clone(),
                    feeds: feeds.into_iter().collect(),
                    online: true,
                    consecutive_failures: 0,
                },
            );
        }

        // Shared delivery plans from the config's relay groups. The
        // relay endpoint itself skips its own plans: there the members
        // stay in the direct fan-out path, so one config drives both the
        // upstream tier (deliver once per group) and the relay tier
        // (fan out per member).
        let mut plans: Vec<GroupPlan> = Vec::new();
        let mut grouped: BTreeSet<String> = BTreeSet::new();
        for g in &config.groups {
            let Some(relay) = &g.relay else { continue };
            if relay == name {
                continue;
            }
            let mut members = g.members.clone();
            members.sort();
            let mut feeds: BTreeSet<String> = BTreeSet::new();
            for m in &members {
                // validated: every member is a subscriber, whose feeds
                // were just resolved above
                if let Some(st) = subscribers.get(m) {
                    feeds.extend(st.feeds.iter().cloned());
                }
                grouped.insert(m.clone());
            }
            plans.push(GroupPlan {
                name: g.name.clone(),
                endpoint: relay.clone(),
                members,
                feeds: feeds.into_iter().collect(),
            });
        }
        plans.sort_by(|a, b| a.name.cmp(&b.name));
        let groups = if plans.is_empty() {
            None
        } else {
            Some(GroupState {
                plans,
                grouped,
                tracker: GroupTracker::with_telemetry(
                    RetryPolicy::default(),
                    GROUP_RETRY_SEED,
                    &telemetry,
                ),
            })
        };

        // The inverted delivery index over the freshly resolved
        // subscriber table and compiled plans. Its `index.*` tallies live
        // in the pool registry: the main registry renders into
        // `status --json`, whose bytes are contract-equal between the
        // indexed and scan match paths, and only the indexed path does
        // lookups.
        let pool_telemetry = Registry::new();
        let mut index = DeliveryIndex::new(&pool_telemetry);
        for (sub_name, st) in &subscribers {
            let in_group = groups
                .as_ref()
                .is_some_and(|g| g.grouped.contains(sub_name));
            index.insert_subscriber(sub_name, &st.feeds, &st.def.endpoint, st.online, in_group);
        }
        if let Some(g) = &groups {
            index.set_group_plans(
                g.plans
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, p.feeds.as_slice())),
            );
        }

        // Rebuild analyzer state from files parked in unknown/ by a
        // previous incarnation: discovery and drift detection must
        // survive restarts just like receipts do.
        let mut discoverer = FeedDiscoverer::new();
        let mut fn_detector = fn_detector;
        for full in bistro_vfs::walk_files(store.as_ref(), "unknown")? {
            let rel = full.strip_prefix("unknown/").unwrap_or(&full);
            discoverer.observe(rel);
            fn_detector.observe(rel);
        }

        Ok(Server {
            name: name.to_string(),
            config,
            clock,
            store,
            classifier: Arc::new(classifier),
            workers: Pool::new(1),
            commit_group: DEFAULT_COMMIT_GROUP,
            receipts,
            archiver,
            log: EventLog::default(),
            triggers: TriggerLog::new(),
            batchers: HashMap::new(),
            batch_ids: IdGen::new(),
            subscribers,
            index,
            use_index: true,
            net: None,
            reliable: None,
            groups,
            progress: HashMap::new(),
            discoverer,
            fn_detector,
            stats: DeliveryStats::default(),
            telemetry,
            pool_telemetry,
            metrics,
            alarms: Server::default_alarms(),
        })
    }

    /// The alarm rules every server starts with (checked on each
    /// [`Server::tick`]; firings land in the event log at `Alarm` level).
    fn default_alarms() -> AlarmSet {
        let mut set = AlarmSet::new();
        set.add(AlarmRule::new(
            "retry-exhaustion",
            Condition::CounterAtLeast {
                metric: "reliable.exhausted".into(),
                threshold: 1,
            },
            "reliable delivery abandoned after exhausting its retry budget",
        ));
        set.add(AlarmRule::new(
            "group-retry-exhaustion",
            Condition::CounterAtLeast {
                metric: "group.exhausted".into(),
                threshold: 1,
            },
            "a shared group delivery was abandoned after exhausting its retry budget",
        ));
        set.add(AlarmRule::new(
            "classifier-miss-ratio",
            Condition::RatioAtLeast {
                num: "ingest.unknown".into(),
                den: "ingest.total".into(),
                threshold: 0.5,
                min_den: 8,
            },
            "at least half of ingested files match no configured feed",
        ));
        set.add(AlarmRule::new(
            "wal-fsync-p99",
            Condition::QuantileAtLeast {
                metric: "wal.fsync_us".into(),
                q: 0.99,
                threshold: 50_000,
            },
            "receipt WAL fsync p99 above 50ms",
        ));
        set
    }

    /// Attach a simulated network; deliveries and notifications then
    /// travel through it (with its bandwidth/latency/outages).
    pub fn with_network(mut self, net: Arc<SimNetwork>) -> Server {
        self.net = Some(net);
        self
    }

    /// Route deliveries through the ack/retry protocol (§4.2): every
    /// send travels as a [`ReliableMsg::Attempt`] envelope, the delivery
    /// receipt is written only when the subscriber's acknowledgement
    /// comes back, and unacked sends are retransmitted with seeded
    /// exponential backoff (drive via [`Server::poll_network`] and
    /// [`Server::retry_tick`]). Requires an attached network.
    pub fn with_reliable_delivery(mut self, policy: RetryPolicy, seed: u64) -> Server {
        self.reliable = Some(ReliableState {
            tracker: RetryTracker::with_telemetry(policy, seed, &self.telemetry),
        });
        // group deliveries retry on the same policy, with a distinct RNG
        // stream so the two trackers' jitter draws stay independent
        if let Some(g) = self.groups.as_mut() {
            g.tracker =
                GroupTracker::with_telemetry(policy, seed ^ GROUP_RETRY_SEED, &self.telemetry);
        }
        self
    }

    /// Fan [`Server::deposit_batch`]'s classify + normalize stage out to
    /// `workers` threads (1 = inline, the default). Any count yields
    /// byte-identical results — see `parallel` for the contract.
    pub fn with_workers(mut self, workers: usize) -> Server {
        self.workers = Pool::new(workers);
        self
    }

    /// Change the ingest worker count at runtime.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = Pool::new(workers);
    }

    /// The configured ingest worker count.
    pub fn worker_count(&self) -> usize {
        self.workers.workers()
    }

    /// Set the group-commit flush knob: at most `group` receipt records
    /// per batched WAL append (and so per fsync on a real filesystem)
    /// during [`Server::deposit_batch`]. Clamped to ≥ 1; 1 restores
    /// per-record appends. Receipts, WAL bytes and `status_json` are
    /// byte-identical for any value — only the physical append batching
    /// (visible in [`Server::pool_telemetry`]'s `wal.group_size` /
    /// `wal.physical_appends`) changes.
    pub fn with_commit_group(mut self, group: usize) -> Server {
        self.commit_group = group.max(1);
        self
    }

    /// Change the group-commit flush knob at runtime.
    pub fn set_commit_group(&mut self, group: usize) {
        self.commit_group = group.max(1);
    }

    /// The configured group-commit flush knob.
    pub fn commit_group(&self) -> usize {
        self.commit_group
    }

    /// The server's name (its network endpoint).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Register progress monitoring for a feed: expect
    /// `files_per_interval` files every `period`.
    pub fn monitor_feed(&mut self, feed: &str, period: TimeSpan, files_per_interval: usize) {
        self.progress.insert(
            feed.to_string(),
            FeedProgress::new(period, files_per_interval),
        );
    }

    /// Deposit a file into the landing zone *with* a source notification
    /// (the cooperative-source path of §4.1): ingest happens immediately.
    pub fn deposit(&mut self, rel_path: &str, data: &[u8]) -> Result<(), ServerError> {
        let landing = format!("{}/{rel_path}", self.config.server.landing);
        self.store.write(&landing, data)?;
        self.ingest(rel_path)
    }

    /// A source notified us that `rel_path` is in the landing zone.
    pub fn notify_deposit(&mut self, rel_path: &str) -> Result<(), ServerError> {
        self.ingest(rel_path)
    }

    /// Deposit a batch of files, fanning the pure classify + normalize
    /// stage across the configured worker pool ([`Server::with_workers`])
    /// and committing results — staging writes, receipt WAL appends,
    /// deliveries — strictly in deposit order on the caller's thread.
    ///
    /// Determinism contract: because workers run only the pure
    /// [`parallel::prepare`] stage (they never touch the store, the WAL
    /// or the main telemetry registry) and the commit loop replays their
    /// results in input order, the store operation sequence, receipt
    /// sequence numbers, telemetry counters and `status_json` bytes are
    /// identical for *any* worker count. Per-worker fan-out accounting
    /// goes to the separate [`Server::pool_telemetry`] registry, which is
    /// deliberately excluded from that surface.
    pub fn deposit_batch(&mut self, files: Vec<(String, Vec<u8>)>) -> Result<(), ServerError> {
        let prepare_span = Span::start(
            self.clock.clone(),
            self.pool_telemetry.histogram("pool.prepare_us"),
        );
        let (prepared, shard_stats) = Self::prepare_batch(
            &self.workers,
            &self.classifier,
            &self.config,
            &self.clock,
            files,
        );
        prepare_span.finish();
        self.record_pool_stats(&shard_stats, &prepared);
        self.commit_batch(prepared)
    }

    /// The pure prepare stage of one batch: fan classify + normalize +
    /// receipt pre-serialization across `pool`. Associated (not `&self`)
    /// so the pipelined path can run it from a producer thread.
    #[allow(clippy::type_complexity)]
    fn prepare_batch(
        pool: &Pool,
        classifier: &Classifier,
        config: &Config,
        clock: &SharedClock,
        files: Vec<(String, Vec<u8>)>,
    ) -> (
        Vec<(String, Result<Prepared, NormalizeError>)>,
        Vec<ShardStat>,
    ) {
        pool.map_with_stats(files, |_, (rel, payload)| {
            let r = parallel::prepare(classifier, config, clock, &rel, payload);
            (rel, r)
        })
    }

    /// The commit stage of one batch: stage payloads, group-commit the
    /// receipt WAL records (one batched append + fsync per
    /// [`Server::commit_group`] records instead of per file), deliver.
    /// Strictly in deposit order on the caller's thread.
    fn commit_batch(
        &mut self,
        prepared: Vec<(String, Result<Prepared, NormalizeError>)>,
    ) -> Result<(), ServerError> {
        self.receipts.begin_group(self.commit_group);
        let result = self.commit_batch_inner(prepared);
        // the window must close even on error so buffered records become
        // durable before the error propagates (suffix-loss only on crash)
        let flush = self.receipts.end_group();
        match flush {
            Ok(stats) => {
                self.record_group_stats(&stats);
                result
            }
            Err(e) => result.and(Err(e.into())),
        }
    }

    fn commit_batch_inner(
        &mut self,
        prepared: Vec<(String, Result<Prepared, NormalizeError>)>,
    ) -> Result<(), ServerError> {
        for (rel, r) in prepared {
            self.ingest_prepared(&rel, r?, LandingDisposition::NeverLanded)?;
        }
        Ok(())
    }

    /// Group-commit telemetry for one batch, into the pool registry
    /// (group-size-dependent, so excluded from `status_json` just like
    /// the per-worker tallies).
    fn record_group_stats(&self, stats: &GroupCommitStats) {
        if stats.records == 0 {
            return;
        }
        let group_size = self.pool_telemetry.histogram("wal.group_size");
        for &n in &stats.flush_sizes {
            group_size.record(n);
        }
        self.pool_telemetry
            .counter("wal.physical_appends")
            .add(stats.physical_appends);
        self.pool_telemetry
            .counter("wal.group_flushes")
            .add(stats.flushes);
    }

    /// Per-worker fan-out accounting for one [`Server::deposit_batch`].
    /// Recorded into a registry *separate* from the server's main
    /// telemetry: `status_json` embeds the full main registry, and
    /// per-worker tallies necessarily differ with the worker count,
    /// which would break the `--workers N` byte-identity contract.
    fn record_pool_stats(
        &self,
        stats: &[ShardStat],
        prepared: &[(String, Result<Prepared, NormalizeError>)],
    ) {
        // items shard statically as i % effective, so per-worker busy
        // time is reconstructible on the commit thread
        let effective = stats.iter().filter(|s| s.jobs > 0).count().max(1);
        self.pool_telemetry.counter("pool.batches").inc();
        for s in stats {
            if s.jobs > 0 {
                self.pool_telemetry
                    .counter(&format!("pool.worker{}.files", s.worker))
                    .add(s.jobs);
            }
        }
        // accumulate locally first: one counter lookup per worker per
        // batch, not one per file (this sits on the commit hot path)
        let mut busy: Vec<(u64, bool)> = vec![(0, false); effective];
        for (i, (_, r)) in prepared.iter().enumerate() {
            if let Ok(p) = r {
                let slot = &mut busy[i % effective];
                slot.0 += p.classify_us + p.normalize_us;
                slot.1 = true;
            }
        }
        for (w, (us, seen)) in busy.into_iter().enumerate() {
            if seen {
                self.pool_telemetry
                    .counter(&format!("pool.worker{w}.busy_us"))
                    .add(us);
            }
        }
    }

    /// Deposit a stream of batches through a two-stage pipeline: a
    /// producer thread runs the pure prepare stage (fanning each batch
    /// across the worker pool) while the caller's thread commits, so
    /// batch *k*'s commit overlaps batch *k+1*'s prepare. The two stages
    /// meet in a bounded [`Handoff`] queue ([`PIPELINE_DEPTH`] batches),
    /// keeping in-flight memory bounded.
    ///
    /// Equivalent, byte for byte, to calling [`Server::deposit_batch`]
    /// on each batch in order: prepare is pure, batches are committed in
    /// input order on this thread, and nothing advances the clock in
    /// between — so receipts, WAL bytes and `status_json` are identical
    /// to the sequential form for any worker count and group size.
    pub fn deposit_pipelined(
        &mut self,
        batches: Vec<Vec<(String, Vec<u8>)>>,
    ) -> Result<(), ServerError> {
        if batches.len() <= 1 {
            for batch in batches {
                self.deposit_batch(batch)?;
            }
            return Ok(());
        }
        let pool = self.workers;
        let classifier = Arc::clone(&self.classifier);
        let config = self.config.clone();
        let clock = self.clock.clone();
        let commit_lag = self.pool_telemetry.histogram("pipeline.commit_lag_us");
        #[allow(clippy::type_complexity)]
        let queue: Handoff<(
            Vec<(String, Result<Prepared, NormalizeError>)>,
            Vec<ShardStat>,
            TimePoint,
        )> = Handoff::new(PIPELINE_DEPTH);
        let mut result = Ok(());
        std::thread::scope(|scope| {
            let producer = scope.spawn(|| {
                for batch in batches {
                    let handed = Self::prepare_batch(&pool, &classifier, &config, &clock, batch);
                    let ready_at = clock.now();
                    if queue.send((handed.0, handed.1, ready_at)).is_err() {
                        return; // consumer bailed; stop preparing
                    }
                }
                queue.close();
            });
            while let Some((prepared, shard_stats, ready_at)) = queue.recv() {
                // time each batch sat prepared but uncommitted (0 under
                // a SimClock, keeping the pipelined path deterministic)
                commit_lag.record(self.clock.now().since(ready_at).as_micros());
                self.record_pool_stats(&shard_stats, &prepared);
                if let Err(e) = self.commit_batch(prepared) {
                    result = Err(e);
                    break;
                }
            }
            queue.close(); // unblock the producer if we bailed early
            let _ = producer.join();
        });
        result
    }

    /// Scan the landing zone for files from non-cooperating sources and
    /// ingest everything found. Cheap because ingest keeps the landing
    /// zone empty (§4.1: "Bistro minimizes the overhead of directory
    /// scans by immediately moving incoming files to staging
    /// directories").
    pub fn scan_landing(&mut self) -> Result<usize, ServerError> {
        let files = bistro_vfs::walk_files(self.store.as_ref(), &self.config.server.landing)?;
        let prefix = format!("{}/", self.config.server.landing);
        let mut n = 0;
        for full in files {
            let rel = full.strip_prefix(&prefix).unwrap_or(&full).to_string();
            self.ingest(&rel)?;
            n += 1;
        }
        Ok(n)
    }

    /// Ingest one landing file: prepare (classify + normalize, pure)
    /// then commit. The batch path runs the same two stages with the
    /// prepare fanned out — see [`Server::deposit_batch`].
    fn ingest(&mut self, rel_path: &str) -> Result<(), ServerError> {
        let landing_path = format!("{}/{rel_path}", self.config.server.landing);
        let payload = self.store.read(&landing_path)?;
        let prepared = parallel::prepare(
            &self.classifier,
            &self.config,
            &self.clock,
            rel_path,
            payload,
        )?;
        self.ingest_prepared(rel_path, prepared, LandingDisposition::InLanding)
    }

    /// Commit one prepared file: stage the normalized payloads, record
    /// the arrival receipt, deliver, batch. All the pipeline's side
    /// effects, on the caller's thread, in call order.
    fn ingest_prepared(
        &mut self,
        rel_path: &str,
        mut prepared: Prepared,
        landing: LandingDisposition,
    ) -> Result<(), ServerError> {
        let now = self.clock.now();
        self.metrics.ingest_total.inc();
        self.metrics.classify_us.record(prepared.classify_us);

        if prepared.classifications.is_empty() {
            // unknown feed: park for the analyzer. A duplicate deposit of
            // the same unknown name (sources do retransmit) replaces the
            // parked copy.
            let dest = format!("unknown/{rel_path}");
            match landing {
                LandingDisposition::InLanding => {
                    let landing_path = format!("{}/{rel_path}", self.config.server.landing);
                    if self.store.exists(&dest) {
                        self.store.remove(&dest)?;
                    }
                    self.store.rename(&landing_path, &dest)?;
                }
                LandingDisposition::NeverLanded => {
                    // write replaces any parked copy in one op
                    let raw = prepared.raw.take().expect("unknown files keep the payload");
                    self.store.write_owned(&dest, raw)?;
                }
            }
            self.discoverer.observe(rel_path);
            self.fn_detector.observe(rel_path);
            self.stats.files_unknown += 1;
            self.metrics.ingest_unknown.inc();
            self.log.log(
                now,
                LogLevel::Warn,
                "classifier",
                format!("no feed matches {rel_path}"),
            );
            return Ok(());
        }

        // stage once per matching feed, adopting the prepared buffers
        self.metrics.normalize_us.record(prepared.normalize_us);
        for normalized in std::mem::take(&mut prepared.staged) {
            let staged = format!("{}/{}", self.config.server.staging, normalized.staged_path);
            self.metrics
                .ingest_bytes_staged
                .add(normalized.data.len() as u64);
            self.store.write_owned(&staged, normalized.data)?;
        }
        if matches!(landing, LandingDisposition::InLanding) {
            let landing_path = format!("{}/{rel_path}", self.config.server.landing);
            self.store.remove(&landing_path)?;
        }

        let feed_time = prepared.feed_time;
        let template = prepared
            .receipt
            .as_ref()
            .expect("classified files carry a pre-serialized receipt");
        let file = self.receipts.record_arrival_prepared(template, now)?;
        self.stats.files_ingested += 1;
        self.metrics.ingest_files.inc();

        let feeds = &template.feeds;
        for feed in feeds {
            if let Some(p) = self.progress.get_mut(feed) {
                p.record(feed_time.unwrap_or(now));
            }
        }

        // delivery to online subscribers of any matched feed (sorted so
        // the network send order — and hence a faulty run's RNG stream —
        // replays bit-for-bit). The interested set is collected up front:
        // delivering to one subscriber never changes another's online
        // state or feed set, and the common case — nobody subscribes to
        // this feed — then skips the receipt lookup entirely. Members of
        // a relay group are excluded: their delivery is the one send per
        // group below. The index lookup touches only the matched
        // postings; the scan is the equivalence oracle.
        let (interested, group_matches) = if self.use_index {
            self.index.matches(feeds)
        } else {
            self.scan_matches(feeds)
        };
        if !interested.is_empty() || !group_matches.is_empty() {
            let rec = self.receipts.file(file).expect("just recorded");
            for sub in interested {
                self.deliver_one(&rec, &sub)?;
            }
            for plan in group_matches {
                self.deliver_group(plan, &rec)?;
            }
        }
        Ok(())
    }

    /// The pre-index brute-force delivery match: filter every
    /// subscriber, enumerate every plan. `O(subscribers + plans)` per
    /// call — kept as the oracle [`DeliveryIndex`] is checked against
    /// (`tests/delivery_index.rs`) and as the fallback behind
    /// [`Server::set_use_index`]. Must return exactly what
    /// [`DeliveryIndex::matches`] returns for the same state.
    fn scan_matches(&self, feeds: &[String]) -> (Vec<String>, Vec<usize>) {
        let mut interested: Vec<String> = self
            .subscribers
            .iter()
            .filter(|(name, st)| {
                st.online
                    && st.feeds.iter().any(|f| feeds.contains(f))
                    && self
                        .groups
                        .as_ref()
                        .is_none_or(|g| !g.grouped.contains(*name))
            })
            .map(|(name, _)| name.clone())
            .collect();
        interested.sort();
        let group_matches: Vec<usize> = match &self.groups {
            Some(g) => g
                .plans
                .iter()
                .enumerate()
                .filter(|(_, p)| p.feeds.iter().any(|f| feeds.contains(f)))
                .map(|(i, _)| i)
                .collect(),
            None => Vec::new(),
        };
        (interested, group_matches)
    }

    /// Route deposit matching through the brute-force scan (`false`)
    /// instead of the inverted index. Test/oracle knob: observable
    /// outputs are identical either way, only the lookup cost changes.
    #[doc(hidden)]
    pub fn set_use_index(&mut self, on: bool) {
        self.use_index = on;
    }

    /// The indexed delivery match for `feeds` — exposed for the
    /// index-vs-scan equivalence property test.
    #[doc(hidden)]
    pub fn match_via_index(&self, feeds: &[String]) -> (Vec<String>, Vec<usize>) {
        self.index.matches(feeds)
    }

    /// The brute-force delivery match for `feeds` — the oracle side of
    /// the equivalence property test.
    #[doc(hidden)]
    pub fn match_via_scan(&self, feeds: &[String]) -> (Vec<String>, Vec<usize>) {
        self.scan_matches(feeds)
    }

    /// Endpoint→subscriber resolution — exposed for ack-lookup
    /// regression tests (rename, re-home).
    #[doc(hidden)]
    pub fn resolve_endpoint(&self, endpoint: &str) -> Option<String> {
        self.subscriber_by_endpoint(endpoint)
    }

    /// Live `(feed, endpoint)` posting counts in the delivery index —
    /// exposed so churn tests can assert nothing leaks.
    #[doc(hidden)]
    pub fn index_entry_counts(&self) -> (usize, usize) {
        self.index.entry_counts()
    }

    /// The wire message for delivering `rec` to `st`, plus the metadata
    /// the receipt/batcher tail needs: `(feed, dest_path, size, msg)`.
    fn delivery_parts(
        &self,
        rec: &FileRecord,
        st: &SubscriberState,
    ) -> (String, String, u64, SubscriberMsg) {
        let feed_name = rec
            .feeds
            .iter()
            .find(|f| st.feeds.contains(f))
            .cloned()
            .unwrap_or_else(|| rec.feeds[0].clone());

        // destination path: subscriber's dest template or the staged
        // layout. A failed re-match or render falls back to the staged
        // layout — loudly: the file still lands somewhere the subscriber
        // can fetch it, but silently ignoring the configured template
        // buries a config/pattern drift bug (the dest template no longer
        // agrees with the feed's patterns) that only the subscriber's
        // downstream tooling would notice.
        let dest_path = match (&st.def.dest, self.config.feed(&feed_name)) {
            (Some(tpl), Some(feed)) => {
                // re-match to recover captures for the template
                let caps = match feed.patterns.iter().find_map(|p| p.match_str(&rec.name)) {
                    Some(caps) => caps,
                    None => {
                        self.log.log(
                            self.clock.now(),
                            LogLevel::Warn,
                            "delivery",
                            format!(
                                "dest re-match failed: file {} no longer matches any {} pattern; \
                                 rendering {}'s dest template with empty captures",
                                rec.name, feed_name, st.def.name
                            ),
                        );
                        Default::default()
                    }
                };
                match tpl.render(&caps, &rec.name, &feed_name) {
                    Ok(dest) => dest,
                    Err(e) => {
                        self.metrics.dest_fallback.inc();
                        self.log.log(
                            self.clock.now(),
                            LogLevel::Warn,
                            "delivery",
                            format!(
                                "dest template for {} failed on file {} ({e}); \
                                 falling back to incoming/{}",
                                st.def.name, rec.name, rec.staged_path
                            ),
                        );
                        format!("incoming/{}", rec.staged_path)
                    }
                }
            }
            _ => format!("incoming/{}", rec.staged_path),
        };

        let staged_full = format!("{}/{}", self.config.server.staging, rec.staged_path);
        let size = self
            .store
            .metadata(&staged_full)
            .map(|m| m.size)
            .unwrap_or(rec.size);

        let msg = match st.def.delivery {
            DeliveryMode::Push => SubscriberMsg::FileDelivered {
                file: rec.id,
                feed: feed_name.clone(),
                dest_path: dest_path.clone(),
                size,
            },
            DeliveryMode::Notify => SubscriberMsg::FileAvailable {
                file: rec.id,
                feed: feed_name.clone(),
                staged_path: rec.staged_path.clone(),
                size,
            },
        };
        (feed_name, dest_path, size, msg)
    }

    /// Deliver (push or notify) one file to one subscriber. In reliable
    /// mode this sends an [`ReliableMsg::Attempt`] and returns — the
    /// receipt is written by [`Server::poll_network`] when the ack comes
    /// back. Otherwise the receipt, stats and batcher/trigger run
    /// immediately.
    fn deliver_one(&mut self, rec: &FileRecord, sub_name: &str) -> Result<(), ServerError> {
        if self.receipts.is_delivered(rec.id, sub_name) {
            return Ok(());
        }
        let now = self.clock.now();
        let (endpoint, feed_name, dest_path, size, submsg) = {
            let st = self
                .subscribers
                .get(sub_name)
                .ok_or_else(|| ServerError::UnknownSubscriber(sub_name.to_string()))?;
            let (feed_name, dest_path, size, submsg) = self.delivery_parts(rec, st);
            (st.def.endpoint.clone(), feed_name, dest_path, size, submsg)
        };

        if let (Some(rel), Some(net)) = (self.reliable.as_mut(), self.net.clone()) {
            if rel.tracker.is_outstanding(sub_name, rec.id) {
                return Ok(()); // a send is already in flight
            }
            let attempt = rel.tracker.track(sub_name, rec.id, submsg.clone(), now);
            net.send(
                now,
                &self.name,
                &endpoint,
                Message::Reliable(ReliableMsg::Attempt {
                    attempt,
                    inner: submsg,
                }),
            );
            return Ok(());
        }

        let delivered_at = match &self.net {
            Some(net) => net.send(now, &self.name, &endpoint, Message::Subscriber(submsg)),
            None => now,
        };
        self.finish_delivery(sub_name, rec, &feed_name, &dest_path, size, delivered_at)
    }

    /// Deliver one file to a group's relay endpoint: a single
    /// [`GroupMsg::Deliver`] regardless of member count, tracked by the
    /// bitmap tracker until the relay's coverage report shows every
    /// member served. Returns whether a send actually went out (skipped
    /// when the delivery is already in flight or durably complete).
    fn deliver_group(&mut self, plan_idx: usize, rec: &FileRecord) -> Result<bool, ServerError> {
        let Some(net) = self.net.clone() else {
            return Ok(false); // group delivery is a network construct
        };
        let now = self.clock.now();
        let (group, endpoint, members) = {
            let g = self.groups.as_ref().expect("caller checked group state");
            let p = &g.plans[plan_idx];
            (p.name.clone(), p.endpoint.clone(), p.members.len() as u32)
        };
        // durably complete from a previous incarnation: the group mark
        // is the crash-recovery boundary, exactly like a delivery receipt
        if let Some((bits, wm)) = self.receipts.group_coverage(rec.id, &group) {
            if Coverage::from_wire(members, &bits, wm).complete() {
                return Ok(false);
            }
        }
        let staged_full = format!("{}/{}", self.config.server.staging, rec.staged_path);
        let size = self
            .store
            .metadata(&staged_full)
            .map(|m| m.size)
            .unwrap_or(rec.size);
        let g = self.groups.as_mut().expect("caller checked group state");
        if g.tracker.is_outstanding(&group, rec.id) {
            return Ok(false); // a send is already in flight
        }
        let attempt = g
            .tracker
            .track(&group, rec.id, members, &rec.name, size, now);
        net.send(
            now,
            &self.name,
            &endpoint,
            Message::Group(GroupMsg::Deliver {
                group,
                file: rec.id,
                file_name: rec.name.clone(),
                size,
                attempt,
            }),
        );
        Ok(true)
    }

    /// The post-delivery tail: write the receipt, update stats, and run
    /// the subscriber's batcher/trigger. `delivered_at` is the arrival
    /// time (reliable mode: the ack's arrival).
    fn finish_delivery(
        &mut self,
        sub_name: &str,
        rec: &FileRecord,
        feed_name: &str,
        dest_path: &str,
        size: u64,
        delivered_at: TimePoint,
    ) -> Result<(), ServerError> {
        let (push, spec, trigger) = {
            let st = self
                .subscribers
                .get(sub_name)
                .ok_or_else(|| ServerError::UnknownSubscriber(sub_name.to_string()))?;
            (
                st.def.delivery == DeliveryMode::Push,
                st.def.batch,
                st.def.trigger.clone(),
            )
        };
        self.receipts
            .record_delivery(rec.id, sub_name, delivered_at)?;
        self.stats.deliveries += 1;
        self.metrics.delivery_receipts.inc();
        if push {
            self.stats.bytes_delivered += size;
            self.metrics.delivery_bytes.add(size);
        }
        self.stats
            .latencies
            .entry(sub_name.to_string())
            .or_insert_with(|| Arc::new(Histogram::detached()))
            .record(delivered_at.since(rec.arrival).as_micros());

        // batching + trigger: first close any batch whose window lapsed
        // between deliveries (otherwise this file would be folded into a
        // stale batch), then account this file with its feed-time origin
        // so the window stays anchored to the interval it covers
        let key = (feed_name.to_string(), sub_name.to_string());
        let spec: BatchSpec = spec;
        let batcher = self
            .batchers
            .entry(key)
            .or_insert_with(|| Batcher::new(spec));
        let lapsed = batcher.take_lapsed(delivered_at);
        let closed = batcher.on_file_at(rec.id, delivered_at, rec.feed_time);
        for batch in lapsed.into_iter().chain(closed) {
            let batch_id: BatchId = self.batch_ids.next();
            if let Some(def) = &trigger {
                let window_lapse =
                    batch.reason == bistro_transport::batching::BatchCloseReason::Window;
                self.triggers.fire(
                    sub_name,
                    def,
                    &TriggerContext {
                        // a lapsed-window batch closed before this file
                        // existed; like `tick`, it has no file path
                        feed: feed_name,
                        file_path: if window_lapse { "" } else { dest_path },
                        batch: Some(batch_id),
                        count: batch.files.len(),
                    },
                    batch.files,
                    batch.closed,
                );
            }
        }
        self.subscribers
            .get_mut(sub_name)
            .unwrap()
            .consecutive_failures = 0;
        Ok(())
    }

    /// Complete a delivery proven by an ack: idempotent (late and
    /// duplicate acks are no-ops once the receipt exists).
    fn complete_delivery(
        &mut self,
        sub_name: &str,
        file: FileId,
        at: TimePoint,
    ) -> Result<(), ServerError> {
        if self.receipts.is_delivered(file, sub_name) {
            return Ok(());
        }
        let Some(rec) = self.receipts.file(file) else {
            return Ok(()); // ack for a file we no longer track
        };
        let (feed_name, dest_path, size) = {
            let st = self
                .subscribers
                .get(sub_name)
                .ok_or_else(|| ServerError::UnknownSubscriber(sub_name.to_string()))?;
            let (feed_name, dest_path, size, _) = self.delivery_parts(&rec, st);
            (feed_name, dest_path, size)
        };
        self.finish_delivery(sub_name, &rec, &feed_name, &dest_path, size, at)
    }

    /// Drain the server's network inbox: acknowledgements clear their
    /// unacked-send entries and write the delivery receipts. An ack that
    /// the tracker no longer knows (late duplicate, or sent before a
    /// server restart) still proves delivery and completes idempotently.
    /// Returns the number of acks processed.
    pub fn poll_network(&mut self) -> Result<usize, ServerError> {
        let Some(net) = self.net.clone() else {
            return Ok(0);
        };
        let now = self.clock.now();
        let mut n = 0;
        for d in net.recv_ready(&self.name, now) {
            if self.handle_network_message(&d.from, d.at, d.msg)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Apply one message addressed to this server's own endpoint — the
    /// per-message body of [`Server::poll_network`], exposed so a model
    /// checker can deliver messages one at a time in any order. Returns
    /// `true` if the message was an acknowledgement (per-subscriber or
    /// group coverage report) this server processed (anything else is
    /// discarded, exactly as the drain does).
    pub fn handle_network_message(
        &mut self,
        from: &str,
        at: TimePoint,
        msg: Message,
    ) -> Result<bool, ServerError> {
        match msg {
            Message::Reliable(ReliableMsg::Ack { file, attempt }) => {
                let Some(sub) = self.subscriber_by_endpoint(from) else {
                    return Ok(false);
                };
                if let Some(rel) = self.reliable.as_mut() {
                    rel.tracker.on_ack(&sub, file, attempt);
                    // counts every processed ack — including late duplicates
                    // the tracker no longer knows (those still prove delivery)
                    self.metrics.acks_processed.inc();
                }
                self.complete_delivery(&sub, file, at)?;
                Ok(true)
            }
            Message::Group(GroupMsg::Ack {
                group,
                file,
                bits,
                watermark,
            }) => self.handle_group_ack(&group, file, &bits, watermark, at),
            _ => Ok(false),
        }
    }

    /// Merge a relay's coverage report into the group tracker and, when
    /// the coverage advanced, persist it as a group delivery mark — the
    /// durable high-watermark crash recovery and cascaded backfill
    /// resume from, so members already served are never re-fanned.
    fn handle_group_ack(
        &mut self,
        group: &str,
        file: FileId,
        bits: &[u8],
        watermark: u64,
        at: TimePoint,
    ) -> Result<bool, ServerError> {
        let Some(g) = self.groups.as_mut() else {
            return Ok(false);
        };
        let Some((coverage, changed)) = g.tracker.on_ack(group, file, bits, watermark) else {
            return Ok(false); // stale report after completion
        };
        if changed {
            self.receipts.record_group_mark(
                file,
                group,
                coverage.bits(),
                u64::from(coverage.watermark()),
            )?;
        }
        if coverage.complete() {
            self.log.log(
                at,
                LogLevel::Info,
                "delivery",
                format!(
                    "group {group} delivery of file {} complete ({} members)",
                    file.raw(),
                    coverage.members()
                ),
            );
        }
        Ok(true)
    }

    /// Resolve a subscriber name from its configured endpoint (acks
    /// carry no name on the wire; the sender's endpoint identifies it).
    /// An indexed map lookup — previously a linear scan over every
    /// subscriber on every incoming ack. Endpoint sharing resolves to
    /// the lexicographically-first name, exactly as the scan-and-sort
    /// it replaced did.
    fn subscriber_by_endpoint(&self, endpoint: &str) -> Option<String> {
        self.index.subscriber_for_endpoint(endpoint).cloned()
    }

    /// Sweep the unacked-send table: lapsed sends are retransmitted
    /// (Warn) with exponential backoff; sends that exhausted the policy's
    /// attempt budget raise an Alarm and flag the subscriber offline
    /// (recovery then goes through backfill, §4.2).
    pub fn retry_tick(&mut self) -> Result<(), ServerError> {
        let now = self.clock.now();
        if let Some(rel) = self.reliable.as_mut() {
            let round = rel.tracker.due(now);
            self.run_retry_round(round, now)?;
        }
        self.group_retry_tick(now)
    }

    /// Sweep the group-delivery tracker: lapsed fanouts are re-sent to
    /// the relay (Warn); ones that exhausted the attempt budget raise an
    /// Alarm. Unlike per-subscriber retries, exhaustion does not flag
    /// anyone offline — the relay is shared infrastructure and members'
    /// individual health is tracked at the relay tier.
    fn group_retry_tick(&mut self, now: TimePoint) -> Result<(), ServerError> {
        let Some(net) = self.net.clone() else {
            return Ok(());
        };
        let round = match self.groups.as_mut() {
            Some(g) => g.tracker.due(now),
            None => return Ok(()),
        };
        let g = self.groups.as_ref().expect("checked above");
        let max_attempts = g.tracker.policy().max_attempts;
        let mut sends = Vec::new();
        for r in &round.resend {
            let Some(plan) = g.plans.iter().find(|p| p.name == r.group) else {
                continue;
            };
            sends.push((
                plan.endpoint.clone(),
                Message::Group(GroupMsg::Deliver {
                    group: r.group.clone(),
                    file: r.file,
                    file_name: r.file_name.clone(),
                    size: r.size,
                    attempt: r.attempt,
                }),
                format!(
                    "retrying file {} to group {} (attempt {})",
                    r.file.raw(),
                    r.group,
                    r.attempt
                ),
            ));
        }
        for (endpoint, msg, line) in sends {
            net.send(now, &self.name, &endpoint, msg);
            self.log.log(now, LogLevel::Warn, "delivery", line);
        }
        for (group, file) in &round.exhausted {
            self.log.log(
                now,
                LogLevel::Alarm,
                "delivery",
                format!(
                    "group {group} delivery of file {} abandoned after {max_attempts} attempts",
                    file.raw()
                ),
            );
        }
        Ok(())
    }

    /// Retransmit *every* outstanding unacked send immediately,
    /// regardless of deadlines — the model checker's "retry timer
    /// fires" action ([`RetryTracker::fire_all`]): an interleaving with
    /// a retransmission is explored without simulating the backoff
    /// schedule that would produce one.
    pub fn retry_fire(&mut self) -> Result<(), ServerError> {
        let now = self.clock.now();
        let round = match self.reliable.as_mut() {
            Some(rel) => rel.tracker.fire_all(now),
            None => return Ok(()),
        };
        self.run_retry_round(round, now)
    }

    fn run_retry_round(&mut self, round: RetryRound, now: TimePoint) -> Result<(), ServerError> {
        let Some(net) = self.net.clone() else {
            return Ok(());
        };
        for r in &round.resend {
            let Some(st) = self.subscribers.get(&r.subscriber) else {
                continue;
            };
            net.send(
                now,
                &self.name,
                &st.def.endpoint,
                Message::Reliable(ReliableMsg::Attempt {
                    attempt: r.attempt,
                    inner: r.msg.clone(),
                }),
            );
            self.log.log(
                now,
                LogLevel::Warn,
                "delivery",
                format!(
                    "retrying file {} to {} (attempt {})",
                    r.file.raw(),
                    r.subscriber,
                    r.attempt
                ),
            );
        }
        for (sub, file) in &round.exhausted {
            self.log.log(
                now,
                LogLevel::Alarm,
                "delivery",
                format!(
                    "delivery of file {} to {sub} abandoned after {} attempts",
                    file.raw(),
                    self.reliable
                        .as_ref()
                        .map(|r| r.tracker.policy().max_attempts)
                        .unwrap_or(0)
                ),
            );
            self.set_subscriber_online(sub, false)?;
        }
        Ok(())
    }

    /// Re-deliver everything the receipt store does not show as
    /// delivered, across all online subscribers (sorted for determinism).
    /// In reliable mode receipts record only acked sends, so after a
    /// crash-restart this is exactly the unacked backfill.
    pub fn backfill_unacked(&mut self) -> Result<usize, ServerError> {
        let mut subs: Vec<String> = self.subscribers.keys().cloned().collect();
        subs.sort();
        let mut n = 0;
        for sub in subs {
            n += self.deliver_pending_for(&sub)?;
        }
        n += self.backfill_groups()?;
        Ok(n)
    }

    /// Re-fan every live file whose durable group coverage is still
    /// incomplete. Crash recovery for delivery trees: the relay reports
    /// cumulative member coverage on every ack, so redelivery resumes
    /// from the persisted bitmap instead of restarting the whole group.
    fn backfill_groups(&mut self) -> Result<usize, ServerError> {
        let plan_feeds: Vec<Vec<String>> = match self.groups.as_ref() {
            Some(g) => g.plans.iter().map(|p| p.feeds.clone()).collect(),
            None => return Ok(0),
        };
        let mut n = 0;
        for (idx, feeds) in plan_feeds.iter().enumerate() {
            let mut files: BTreeMap<u64, FileRecord> = BTreeMap::new();
            for feed in feeds {
                for rec in self.receipts.files_in_feed(feed) {
                    files.insert(rec.id.raw(), rec);
                }
            }
            for rec in files.values() {
                if self.deliver_group(idx, rec)? {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Unfinished group (delivery-tree) fanouts currently in flight.
    pub fn group_outstanding(&self) -> usize {
        self.groups
            .as_ref()
            .map(|g| g.tracker.outstanding_count())
            .unwrap_or(0)
    }

    /// `(acks merged, resends, exhausted)` for group deliveries since
    /// start; all zero when this server plans no delivery trees.
    pub fn group_counters(&self) -> (u64, u64, u64) {
        self.groups
            .as_ref()
            .map(|g| g.tracker.totals())
            .unwrap_or((0, 0, 0))
    }

    /// Unacked reliable sends currently in flight.
    pub fn unacked_count(&self) -> usize {
        self.reliable
            .as_ref()
            .map(|r| r.tracker.outstanding_count())
            .unwrap_or(0)
    }

    /// `(acks received, retries sent, deliveries abandoned)` since start;
    /// all zero when reliable delivery is not enabled. Acks counts every
    /// processed acknowledgement (late duplicates included), which is why
    /// it reads `reliable.acks_processed` rather than the tracker's
    /// `reliable.acks` (only acks that cleared an outstanding entry).
    pub fn reliability_counters(&self) -> (u64, u64, u64) {
        match &self.reliable {
            Some(rel) => {
                let (_cleared, resends, exhausted) = rel.tracker.totals();
                (self.metrics.acks_processed.get(), resends, exhausted)
            }
            None => (0, 0, 0),
        }
    }

    /// Mark a subscriber offline (failure detected) or online
    /// (recovered). Recovery triggers backfill of the full pending queue
    /// (§4.2).
    pub fn set_subscriber_online(&mut self, sub: &str, online: bool) -> Result<(), ServerError> {
        let now = self.clock.now();
        let feeds = {
            let st = self
                .subscribers
                .get_mut(sub)
                .ok_or_else(|| ServerError::UnknownSubscriber(sub.to_string()))?;
            if st.online == online {
                return Ok(());
            }
            st.online = online;
            st.feeds.clone()
        };
        let in_group = self
            .groups
            .as_ref()
            .is_some_and(|g| g.grouped.contains(sub));
        self.index.set_online(sub, &feeds, online, in_group);
        if !online {
            // stop retrying into a dead subscriber; recovery backfills
            if let Some(rel) = self.reliable.as_mut() {
                rel.tracker.forget_subscriber(sub);
            }
        }
        if online {
            self.log.log(
                now,
                LogLevel::Info,
                "delivery",
                format!("{sub} recovered; backfilling"),
            );
            self.deliver_pending_for(sub)?;
        } else {
            self.log.log(
                now,
                LogLevel::Alarm,
                "delivery",
                format!("{sub} flagged offline"),
            );
        }
        Ok(())
    }

    /// Deliver everything pending for one subscriber (backfill).
    pub fn deliver_pending_for(&mut self, sub: &str) -> Result<usize, ServerError> {
        // members of a relay group ride the shared delivery plan — direct
        // backfill here would double-deliver what the relay fans out
        if self
            .groups
            .as_ref()
            .is_some_and(|g| g.grouped.contains(sub))
        {
            return Ok(0);
        }
        let feeds = {
            let st = self
                .subscribers
                .get(sub)
                .ok_or_else(|| ServerError::UnknownSubscriber(sub.to_string()))?;
            if !st.online {
                return Ok(0);
            }
            st.feeds.clone()
        };
        let pending = self.receipts.pending_for(sub, &feeds);
        let n = pending.len();
        for rec in pending {
            self.deliver_one(&rec, sub)?;
        }
        Ok(n)
    }

    /// Register a new subscriber at runtime; it immediately receives the
    /// full available history of its feeds (§4.2).
    pub fn add_subscriber(&mut self, def: SubscriberDef) -> Result<usize, ServerError> {
        // validate against the candidate config, rolling the push back on
        // rejection — leaving the invalid def in place would poison every
        // later validate() call on this server
        self.config.subscribers.push(def.clone());
        let feeds = match validate(&self.config)
            .map_err(ServerError::from)
            .and_then(|()| self.config.subscriber_feeds(&def.name).map_err(Into::into))
        {
            Ok(feeds) => feeds,
            Err(e) => {
                self.config.subscribers.pop();
                return Err(e);
            }
        };
        let in_group = self
            .groups
            .as_ref()
            .is_some_and(|g| g.grouped.contains(&def.name));
        self.index
            .insert_subscriber(&def.name, &feeds, &def.endpoint, true, in_group);
        self.subscribers.insert(
            def.name.clone(),
            SubscriberState {
                feeds,
                def: def.clone(),
                online: true,
                consecutive_failures: 0,
            },
        );
        self.deliver_pending_for(&def.name)
    }

    /// Deregister a subscriber at runtime: drops its config entry, live
    /// state, index postings, batcher state and any in-flight reliable
    /// retries. Members of a relay delivery group are refused — their
    /// delivery rides the shared group plan, which cannot lose a member
    /// without recompiling the tree.
    pub fn remove_subscriber(&mut self, sub: &str) -> Result<(), ServerError> {
        if self
            .groups
            .as_ref()
            .is_some_and(|g| g.grouped.contains(sub))
        {
            return Err(ServerError::GroupedSubscriber(sub.to_string()));
        }
        let st = self
            .subscribers
            .remove(sub)
            .ok_or_else(|| ServerError::UnknownSubscriber(sub.to_string()))?;
        self.config.subscribers.retain(|d| d.name != sub);
        self.index
            .remove_subscriber(sub, &st.feeds, &st.def.endpoint);
        if let Some(rel) = self.reliable.as_mut() {
            rel.tracker.forget_subscriber(sub);
        }
        self.batchers.retain(|(_, s), _| s != sub);
        self.log.log(
            self.clock.now(),
            LogLevel::Info,
            "delivery",
            format!("{sub} deregistered"),
        );
        Ok(())
    }

    /// Replace a feed definition (subscriber-approved analyzer
    /// suggestion, §5): recompiles the classifier and reclassifies live
    /// files, then backfills any newly matching deliveries.
    pub fn redefine_feed(&mut self, def: FeedDef) -> Result<(), ServerError> {
        let name = def.name.clone();
        match self.config.feeds.iter_mut().find(|f| f.name == name) {
            Some(slot) => *slot = def,
            None => self.config.feeds.push(def),
        }
        validate(&self.config)?;
        self.classifier = Arc::new(Classifier::compile(&self.config));
        self.fn_detector = FnDetector::new(
            self.config
                .feeds
                .iter()
                .map(|f| (f.name.clone(), f.patterns.clone()))
                .collect(),
        );
        // reclassify live files
        for rec in self.receipts.all_live() {
            let feeds = self.classifier.feeds_for(&rec.name);
            if feeds != rec.feeds && !feeds.is_empty() {
                self.receipts.record_reclassification(rec.id, feeds)?;
            }
        }
        // re-scan unknown directory: drifted files may now match
        let unknowns = bistro_vfs::walk_files(self.store.as_ref(), "unknown")?;
        for full in unknowns {
            let rel = full.strip_prefix("unknown/").unwrap_or(&full).to_string();
            if !self.classifier.classify(&rel).is_empty() {
                // move back through the landing zone and ingest
                self.store
                    .rename(&full, &format!("{}/{rel}", self.config.server.landing))?;
                self.ingest(&rel)?;
            }
        }
        // deliver any newly pending files (sorted: see `ingest`)
        let mut subs: Vec<String> = self.subscribers.keys().cloned().collect();
        subs.sort();
        for sub in subs {
            self.deliver_pending_for(&sub)?;
        }
        self.log.log(
            self.clock.now(),
            LogLevel::Info,
            "config",
            format!("feed {name} redefined"),
        );
        Ok(())
    }

    /// Periodic housekeeping: close lapsed batch windows (firing
    /// triggers) and audit feed progress (raising alarms).
    pub fn tick(&mut self) {
        let now = self.clock.now();
        // batch windows (sorted so trigger-log order is deterministic)
        let mut keys: Vec<(String, String)> = self.batchers.keys().cloned().collect();
        keys.sort();
        for key in keys {
            let batch = self.batchers.get_mut(&key).and_then(|b| b.on_tick(now));
            if let Some(batch) = batch {
                let (feed, sub) = &key;
                let trigger = self
                    .subscribers
                    .get(sub)
                    .and_then(|s| s.def.trigger.clone());
                let batch_id: BatchId = self.batch_ids.next();
                if let Some(def) = trigger {
                    self.triggers.fire(
                        sub,
                        &def,
                        &TriggerContext {
                            feed,
                            file_path: "",
                            batch: Some(batch_id),
                            count: batch.files.len(),
                        },
                        batch.files,
                        now,
                    );
                }
            }
        }
        // progress audits (sorted: HashMap iteration order must not
        // decide the event-log line order)
        let mut audited: Vec<&String> = self.progress.keys().collect();
        audited.sort();
        for feed in audited {
            let progress = &self.progress[feed];
            for alert in progress.audit(now) {
                let (level, msg) = match alert {
                    ProgressAlert::MissingData {
                        interval,
                        expected,
                        got,
                    } => (
                        LogLevel::Alarm,
                        format!("feed {feed}: interval {interval} has {got}/{expected} files"),
                    ),
                    ProgressAlert::SurplusData {
                        interval,
                        expected,
                        got,
                    } => (
                        LogLevel::Warn,
                        format!(
                            "feed {feed}: interval {interval} has {got} files, expected {expected}"
                        ),
                    ),
                    ProgressAlert::FeedSilent { silent_for, .. } => (
                        LogLevel::Alarm,
                        format!("feed {feed}: silent for {silent_for}"),
                    ),
                };
                self.log.log(now, level, "monitor", msg);
            }
        }
        // bridge the store's metadata ledger, then sweep the alarm rules;
        // edge-triggered firings land in the event log
        self.store.stats().publish(&self.telemetry);
        for firing in self.alarms.check(&self.telemetry) {
            self.log.log(
                now,
                LogLevel::Alarm,
                "telemetry",
                format!("{}: {} ({})", firing.rule, firing.message, firing.detail),
            );
        }
    }

    /// A cooperative source marked end-of-batch for a feed: close the
    /// feed's open batches immediately (§4.1 punctuation).
    pub fn punctuate_feed(&mut self, feed: &str) {
        let now = self.clock.now();
        let mut keys: Vec<(String, String)> = self
            .batchers
            .keys()
            .filter(|(f, _)| f == feed)
            .cloned()
            .collect();
        keys.sort();
        for key in keys {
            let batch = self
                .batchers
                .get_mut(&key)
                .and_then(|b| b.on_punctuation(now));
            if let Some(batch) = batch {
                let (feed, sub) = &key;
                let trigger = self
                    .subscribers
                    .get(sub)
                    .and_then(|s| s.def.trigger.clone());
                let batch_id: BatchId = self.batch_ids.next();
                if let Some(def) = trigger {
                    self.triggers.fire(
                        sub,
                        &def,
                        &TriggerContext {
                            feed,
                            file_path: "",
                            batch: Some(batch_id),
                            count: batch.files.len(),
                        },
                        batch.files,
                        now,
                    );
                }
            }
        }
    }

    /// Expire files beyond the retention window (§4.2), in crash-safe
    /// order per victim: archive the payload (if configured), log the
    /// expiration receipt, and only then delete the staged payload. A
    /// crash between the receipt and the delete leaves a harmless orphan
    /// payload — never a live receipt pointing at a deleted file. A
    /// transient archive failure skips the victim entirely (payload and
    /// receipt intact) so the next sweep retries it.
    pub fn expire(&mut self) -> Result<usize, ServerError> {
        let now = self.clock.now();
        let cutoff = now.saturating_sub(self.config.server.retention);
        let victims = self.receipts.expire_candidates(cutoff);
        let mut n = 0usize;
        for rec in victims {
            let staged = format!("{}/{}", self.config.server.staging, rec.staged_path);
            if let Some(arch) = &self.archiver {
                match self.store.read(&staged) {
                    Ok(payload) => {
                        arch.archive_file(&rec, &payload, now)
                            .map_err(ServerError::Vfs)?;
                    }
                    Err(VfsError::NotFound(_)) => {
                        // already removed by a previous, interrupted sweep
                        // (the expiration receipt is what got lost, not
                        // the payload) — nothing left to archive
                    }
                    Err(e) => {
                        self.metrics.archiver_skipped.inc();
                        self.log.log(
                            now,
                            LogLevel::Warn,
                            "expirer",
                            format!(
                                "archiving {} failed ({e}); keeping payload for retry",
                                rec.staged_path
                            ),
                        );
                        continue;
                    }
                }
            }
            self.receipts.record_expiration(rec.id, now)?;
            match self.store.remove(&staged) {
                Ok(()) | Err(VfsError::NotFound(_)) => {}
                Err(e) => return Err(ServerError::Vfs(e)),
            }
            n += 1;
        }
        if n > 0 {
            self.log.log(
                now,
                LogLevel::Info,
                "expirer",
                format!("expired {n} files beyond {}", self.config.server.retention),
            );
        }
        Ok(n)
    }

    /// Snapshot the receipt store (bounds recovery time).
    pub fn snapshot(&self) -> Result<usize, ServerError> {
        Ok(self.receipts.snapshot()?)
    }

    /// Persist the *current* configuration — including runtime-added
    /// subscribers and approved feed redefinitions — into the store, so
    /// [`Server::open_existing`] restarts with exactly what was running.
    pub fn persist_config(&self) -> Result<(), ServerError> {
        // write-then-rename: a crash mid-write must never tear the config
        // the next incarnation boots from
        self.store
            .write("bistro.conf.tmp", self.config.to_source().as_bytes())?;
        self.store.replace("bistro.conf.tmp", "bistro.conf")?;
        Ok(())
    }

    /// Reopen a server from a store that carries a persisted
    /// configuration (written by [`Server::persist_config`]). Recovers
    /// the receipt database as usual.
    pub fn open_existing(
        name: &str,
        clock: SharedClock,
        store: Arc<dyn FileStore>,
    ) -> Result<Server, ServerError> {
        let src = store.read("bistro.conf")?;
        let src = String::from_utf8(src).map_err(|e| {
            ServerError::Config(bistro_config::ConfigError::Parse {
                line: 0,
                msg: format!("persisted config is not utf-8: {e}"),
            })
        })?;
        let config = bistro_config::parse_config(&src)?;
        Server::new(name, config, clock, store)
    }

    /// Suggested groupings of the analyzer's discovered feeds (the §5.1
    /// future-work direction implemented in `bistro_analyzer::grouping`).
    pub fn group_suggestions(&self, min_support: usize) -> Vec<bistro_analyzer::GroupSuggestion> {
        bistro_analyzer::suggest_groups(
            &self.discoverer.suggestions(min_support),
            bistro_analyzer::grouping::DEFAULT_GROUP_THRESHOLD,
        )
    }

    /// Content schema of a parked unknown file (LEARNPADS-direction
    /// evidence for reviewing discovery suggestions, §3.2).
    pub fn unknown_file_schema(
        &self,
        rel_path: &str,
    ) -> Result<Option<bistro_analyzer::RecordSchema>, ServerError> {
        let data = self.store.read(&format!("unknown/{rel_path}"))?;
        Ok(bistro_analyzer::infer_schema(&data))
    }

    /// New-feed suggestions from the unmatched-file stream (§5.1).
    pub fn discovery_report(&self, min_support: usize) -> Vec<DiscoveredFeed> {
        self.discoverer.suggestions(min_support)
    }

    /// False-negative warnings from the unmatched-file stream (§5.2).
    pub fn fn_warnings(&self) -> Vec<FnWarning> {
        self.fn_detector.warnings()
    }

    /// False-positive / composition report for one feed (§5.3).
    pub fn feed_composition(&self, feed: &str) -> FpReport {
        let files = self.receipts.files_in_feed(feed);
        fp_report(feed, files.iter().map(|f| f.name.as_str()), 0.05)
    }

    /// The receipt store (for inspection).
    pub fn receipts(&self) -> &ReceiptStore {
        &self.receipts
    }

    /// Schedule-independent digest of this server's protocol state: the
    /// receipt store's content digest, each subscriber's liveness, and
    /// the unacked reliable sends (by file *name*, not id — ids depend
    /// on arrival order). Two runs that reached the same logical state
    /// through different interleavings hash equal; used by the model
    /// checker to dedup explored states.
    pub fn state_digest(&self) -> u64 {
        use std::fmt::Write as _;
        let mut acc = String::new();
        let mut subs: Vec<&String> = self.subscribers.keys().collect();
        subs.sort();
        for name in subs {
            let st = &self.subscribers[name];
            writeln!(
                acc,
                "sub\0{name}\0{}\0{}",
                st.online, st.consecutive_failures
            )
            .unwrap();
        }
        if let Some(rel) = &self.reliable {
            let mut out: Vec<String> = rel
                .tracker
                .outstanding_entries()
                .into_iter()
                .map(|(sub, file, attempt)| {
                    let name = self
                        .receipts
                        .file(FileId(file))
                        .map(|r| r.name)
                        .unwrap_or_else(|| format!("#{file}"));
                    format!("out\0{sub}\0{name}\0{attempt}")
                })
                .collect();
            out.sort();
            for line in out {
                acc.push_str(&line);
                acc.push('\n');
            }
        }
        if let Some(g) = &self.groups {
            let mut out: Vec<String> = g
                .tracker
                .outstanding_entries()
                .into_iter()
                .map(|(group, file, attempt, covered)| {
                    let name = self
                        .receipts
                        .file(FileId(file))
                        .map(|r| r.name)
                        .unwrap_or_else(|| format!("#{file}"));
                    format!("gout\0{group}\0{name}\0{attempt}\0{covered}")
                })
                .collect();
            out.sort();
            for line in out {
                acc.push_str(&line);
                acc.push('\n');
            }
        }
        let mut bytes = acc.into_bytes();
        bytes.extend_from_slice(&self.receipts.state_digest().to_le_bytes());
        bistro_base::fnv1a64(&bytes)
    }

    /// The trigger invocation log.
    pub fn trigger_log(&self) -> &TriggerLog {
        &self.triggers
    }

    /// The event log.
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// Delivery statistics.
    pub fn stats(&self) -> &DeliveryStats {
        &self.stats
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<dyn FileStore> {
        &self.store
    }

    /// The archiver, if archiving is enabled.
    pub fn archiver(&self) -> Option<&Archiver> {
        self.archiver.as_ref()
    }

    /// The telemetry registry every pipeline stage records into.
    pub fn telemetry(&self) -> &SharedRegistry {
        &self.telemetry
    }

    /// Per-worker fan-out accounting (`pool.batches`,
    /// `pool.worker{i}.files`, `pool.worker{i}.busy_us`,
    /// `pool.prepare_us`). Separate from [`Server::telemetry`] so
    /// worker-count-dependent tallies never leak into the
    /// [`Server::status_json`] determinism surface.
    pub fn pool_telemetry(&self) -> &SharedRegistry {
        &self.pool_telemetry
    }

    /// Add an alarm rule to the set checked on every [`Server::tick`].
    pub fn add_alarm_rule(&mut self, rule: AlarmRule) {
        self.alarms.add(rule);
    }

    /// One-screen health snapshot as JSON: identity, subscriber states,
    /// receipt totals, event-log counts, and the full metric registry.
    /// Deterministic — identical runs render byte-identical snapshots.
    pub fn status_json(&self) -> Json {
        self.store.stats().publish(&self.telemetry);
        let mut subs: Vec<(&String, &SubscriberState)> = self.subscribers.iter().collect();
        subs.sort_by_key(|(name, _)| name.to_string());
        let subscribers = Json::Arr(
            subs.into_iter()
                .map(|(name, st)| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(name.clone())),
                        ("online".into(), Json::Bool(st.online)),
                        ("feeds".into(), Json::Num(st.feeds.len() as f64)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("server".into(), Json::Str(self.name.clone())),
            (
                "now_us".into(),
                Json::Num(self.clock.now().as_micros() as f64),
            ),
            ("subscribers".into(), subscribers),
            (
                "receipts".into(),
                Json::Obj(vec![
                    (
                        "deliveries".into(),
                        Json::Num(self.receipts.delivery_count() as f64),
                    ),
                    ("unacked".into(), Json::Num(self.unacked_count() as f64)),
                ]),
            ),
            (
                "events".into(),
                Json::Obj(vec![
                    (
                        "info".into(),
                        Json::Num(self.log.count(LogLevel::Info) as f64),
                    ),
                    (
                        "warn".into(),
                        Json::Num(self.log.count(LogLevel::Warn) as f64),
                    ),
                    (
                        "alarm".into(),
                        Json::Num(self.log.count(LogLevel::Alarm) as f64),
                    ),
                ]),
            ),
            ("metrics".into(), self.telemetry.snapshot_json()),
        ])
    }

    /// Human-readable rendering of the [`Server::status_json`] snapshot.
    pub fn status_text(&self) -> String {
        self.store.stats().publish(&self.telemetry);
        let mut out = String::new();
        out.push_str(&format!(
            "server {} @ {}\n",
            self.name,
            self.clock.now().as_micros()
        ));
        let mut subs: Vec<(&String, &SubscriberState)> = self.subscribers.iter().collect();
        subs.sort_by_key(|(name, _)| name.to_string());
        for (name, st) in subs {
            out.push_str(&format!(
                "  subscriber {name}: {} ({} feeds)\n",
                if st.online { "online" } else { "OFFLINE" },
                st.feeds.len()
            ));
        }
        out.push_str(&format!(
            "  receipts: {} deliveries, {} unacked\n",
            self.receipts.delivery_count(),
            self.unacked_count()
        ));
        out.push_str(&format!(
            "  events: {} info / {} warn / {} alarm\n",
            self.log.count(LogLevel::Info),
            self.log.count(LogLevel::Warn),
            self.log.count(LogLevel::Alarm)
        ));
        out.push_str("  counters:\n");
        for (name, v) in self.telemetry.counters_sorted() {
            out.push_str(&format!("    {name} = {v}\n"));
        }
        let gauges = self.telemetry.gauges_sorted();
        if !gauges.is_empty() {
            out.push_str("  gauges:\n");
            for (name, v) in gauges {
                out.push_str(&format!("    {name} = {v}\n"));
            }
        }
        let hists = self.telemetry.histograms_sorted();
        if !hists.is_empty() {
            out.push_str("  histograms (us):\n");
            for (name, s) in hists {
                out.push_str(&format!(
                    "    {name}: count={} p50={} p99={} max={}\n",
                    s.count, s.p50, s.p99, s.max
                ));
            }
        }
        out
    }
}
