//! Inverted delivery index: feed → interested subscribers, feed →
//! group plans, endpoint → subscribers.
//!
//! The paper's server "matches each deposited file against the
//! subscriber population" (§4.2); done naively that match is a scan of
//! every registered subscriber on every deposit, which the E14 fanout
//! experiment shows dominating deposit cost at a million subscribers.
//! [`DeliveryIndex`] inverts the subscription relation so
//! `ingest_prepared` touches only `O(matched)` state per deposit:
//!
//! * `by_feed` — feed name → the *online, ungrouped* subscribers whose
//!   resolved feed set contains that feed. Sorted sets, so a lookup
//!   yields the same delivery order the sorted scan produced.
//! * `groups_by_feed` — feed name → the shared-delivery plan indices
//!   whose member feed union contains that feed, ascending — identical
//!   to enumerating the plan list in order.
//! * `by_endpoint` — configured endpoint → subscriber names sharing it
//!   (acks carry no name on the wire; the lexicographically-first name
//!   is the resolution, matching the scan-and-sort it replaces).
//!
//! The index is *incrementally maintained* at every mutation point —
//! subscriber registration and removal, online/offline flips, group
//! plan compilation, and (through those) cluster re-homing after
//! failover — and must at all times equal the brute-force scan over
//! the subscriber table. `tests/delivery_index.rs` checks exactly that
//! equivalence under random churn, plus byte-identity of receipts, WAL
//! and `status --json` against the scan path.
//!
//! Index tallies (`index.*`) live in the server's *pool* telemetry
//! registry, not the main one: the main registry renders into
//! `status_json`, whose bytes are contract-equal between the indexed
//! and scan delivery paths, and only the indexed path performs lookups.

use bistro_telemetry::{Counter, Gauge, Registry};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Handles into the owning server's pool-telemetry registry, resolved
/// once so maintenance never re-looks-up metric names.
struct IndexMetrics {
    /// Delivery-match lookups served (one per classified deposit).
    lookups: Arc<Counter>,
    /// Interested subscribers returned across all lookups.
    matched_subscribers: Arc<Counter>,
    /// Group plans returned across all lookups.
    matched_groups: Arc<Counter>,
    /// Subscribers inserted (registration, construction, re-homing).
    inserts: Arc<Counter>,
    /// Subscribers removed.
    removes: Arc<Counter>,
    /// Online/offline transitions applied.
    online_flips: Arc<Counter>,
    /// Live (feed, subscriber) postings in `by_feed`.
    feed_entries: Arc<Gauge>,
    /// Live (endpoint, subscriber) postings in `by_endpoint`.
    endpoint_entries: Arc<Gauge>,
}

/// The inverted feed→subscriber / feed→plan / endpoint→subscriber
/// index. See the module docs for the invariants.
pub(crate) struct DeliveryIndex {
    by_feed: HashMap<String, BTreeSet<String>>,
    groups_by_feed: HashMap<String, BTreeSet<usize>>,
    by_endpoint: HashMap<String, BTreeSet<String>>,
    metrics: IndexMetrics,
}

impl DeliveryIndex {
    /// An empty index recording its `index.*` tallies into `reg`.
    pub fn new(reg: &Registry) -> DeliveryIndex {
        DeliveryIndex {
            by_feed: HashMap::new(),
            groups_by_feed: HashMap::new(),
            by_endpoint: HashMap::new(),
            metrics: IndexMetrics {
                lookups: reg.counter("index.lookups"),
                matched_subscribers: reg.counter("index.matched_subscribers"),
                matched_groups: reg.counter("index.matched_groups"),
                inserts: reg.counter("index.inserts"),
                removes: reg.counter("index.removes"),
                online_flips: reg.counter("index.online_flips"),
                feed_entries: reg.gauge("index.feed_entries"),
                endpoint_entries: reg.gauge("index.endpoint_entries"),
            },
        }
    }

    /// Register `name` under its endpoint and — when `online` and not
    /// routed through a relay group — under each of its feeds.
    pub fn insert_subscriber(
        &mut self,
        name: &str,
        feeds: &[String],
        endpoint: &str,
        online: bool,
        grouped: bool,
    ) {
        self.metrics.inserts.inc();
        if self
            .by_endpoint
            .entry(endpoint.to_string())
            .or_default()
            .insert(name.to_string())
        {
            self.metrics.endpoint_entries.add(1);
        }
        if online && !grouped {
            self.post_feeds(name, feeds);
        }
    }

    /// Drop every posting for `name`. `feeds`/`endpoint`/`online` are
    /// the state the subscriber was registered with.
    pub fn remove_subscriber(&mut self, name: &str, feeds: &[String], endpoint: &str) {
        self.metrics.removes.inc();
        if let Some(set) = self.by_endpoint.get_mut(endpoint) {
            if set.remove(name) {
                self.metrics.endpoint_entries.add(-1);
            }
            if set.is_empty() {
                self.by_endpoint.remove(endpoint);
            }
        }
        self.unpost_feeds(name, feeds);
    }

    /// Apply an online/offline transition: offline subscribers keep
    /// their endpoint posting (acks still identify them) but leave the
    /// per-feed interested sets.
    pub fn set_online(&mut self, name: &str, feeds: &[String], online: bool, grouped: bool) {
        self.metrics.online_flips.inc();
        if grouped {
            return; // grouped members never sit in by_feed
        }
        if online {
            self.post_feeds(name, feeds);
        } else {
            self.unpost_feeds(name, feeds);
        }
    }

    /// (Re)build the feed → plan-index postings from the compiled
    /// shared-delivery plans, in plan order.
    pub fn set_group_plans<'a>(&mut self, plans: impl Iterator<Item = (usize, &'a [String])>) {
        self.groups_by_feed.clear();
        for (idx, feeds) in plans {
            for feed in feeds {
                self.groups_by_feed
                    .entry(feed.clone())
                    .or_default()
                    .insert(idx);
            }
        }
    }

    /// The delivery match for a classified file: the sorted union of
    /// interested online subscribers and the ascending union of matched
    /// plan indices, over the file's feeds. Equals the brute-force
    /// subscriber/plan scan by the module invariant.
    pub fn matches(&self, feeds: &[String]) -> (Vec<String>, Vec<usize>) {
        self.metrics.lookups.inc();
        let subscribers: Vec<String> = match feeds {
            [feed] => self
                .by_feed
                .get(feed)
                .map(|s| s.iter().cloned().collect())
                .unwrap_or_default(),
            _ => {
                let mut merged: BTreeSet<&String> = BTreeSet::new();
                for feed in feeds {
                    if let Some(s) = self.by_feed.get(feed) {
                        merged.extend(s);
                    }
                }
                merged.into_iter().cloned().collect()
            }
        };
        let plans: Vec<usize> = match feeds {
            [feed] => self
                .groups_by_feed
                .get(feed)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default(),
            _ => {
                let mut merged: BTreeSet<usize> = BTreeSet::new();
                for feed in feeds {
                    if let Some(s) = self.groups_by_feed.get(feed) {
                        merged.extend(s.iter().copied());
                    }
                }
                merged.into_iter().collect()
            }
        };
        self.metrics
            .matched_subscribers
            .add(subscribers.len() as u64);
        self.metrics.matched_groups.add(plans.len() as u64);
        (subscribers, plans)
    }

    /// The subscriber an ack from `endpoint` resolves to: the
    /// lexicographically-first registered name on that endpoint.
    pub fn subscriber_for_endpoint(&self, endpoint: &str) -> Option<&String> {
        self.by_endpoint.get(endpoint)?.iter().next()
    }

    /// `(feed postings, endpoint postings)` currently live — the gauge
    /// values, exposed for invariant checks in tests.
    pub fn entry_counts(&self) -> (usize, usize) {
        (
            self.by_feed.values().map(|s| s.len()).sum(),
            self.by_endpoint.values().map(|s| s.len()).sum(),
        )
    }

    fn post_feeds(&mut self, name: &str, feeds: &[String]) {
        for feed in feeds {
            if self
                .by_feed
                .entry(feed.clone())
                .or_default()
                .insert(name.to_string())
            {
                self.metrics.feed_entries.add(1);
            }
        }
    }

    fn unpost_feeds(&mut self, name: &str, feeds: &[String]) {
        for feed in feeds {
            if let Some(set) = self.by_feed.get_mut(feed) {
                if set.remove(name) {
                    self.metrics.feed_entries.add(-1);
                }
                if set.is_empty() {
                    self.by_feed.remove(feed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feeds(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn matches_unions_and_sorts_across_feeds() {
        let reg = Registry::new();
        let mut idx = DeliveryIndex::new(&reg);
        idx.insert_subscriber("zeta", &feeds(&["A", "B"]), "z:1", true, false);
        idx.insert_subscriber("alpha", &feeds(&["B"]), "a:1", true, false);
        idx.insert_subscriber("mid", &feeds(&["C"]), "m:1", true, false);
        let (subs, _) = idx.matches(&feeds(&["A", "B"]));
        assert_eq!(subs, vec!["alpha", "zeta"], "sorted union, deduped");
        let (subs, _) = idx.matches(&feeds(&["C"]));
        assert_eq!(subs, vec!["mid"]);
        let (subs, _) = idx.matches(&feeds(&["NONE"]));
        assert!(subs.is_empty());
    }

    #[test]
    fn offline_and_grouped_subscribers_leave_feed_postings() {
        let reg = Registry::new();
        let mut idx = DeliveryIndex::new(&reg);
        idx.insert_subscriber("s1", &feeds(&["A"]), "h:1", true, false);
        idx.insert_subscriber("s2", &feeds(&["A"]), "h:2", true, true); // grouped
        let (subs, _) = idx.matches(&feeds(&["A"]));
        assert_eq!(subs, vec!["s1"], "grouped member must not fan out directly");

        idx.set_online("s1", &feeds(&["A"]), false, false);
        let (subs, _) = idx.matches(&feeds(&["A"]));
        assert!(subs.is_empty());
        // the endpoint posting survives offline: acks still resolve
        assert_eq!(idx.subscriber_for_endpoint("h:1").unwrap(), "s1");

        idx.set_online("s1", &feeds(&["A"]), true, false);
        let (subs, _) = idx.matches(&feeds(&["A"]));
        assert_eq!(subs, vec!["s1"]);
    }

    #[test]
    fn endpoint_resolution_is_lexicographically_first_and_tracks_removal() {
        let reg = Registry::new();
        let mut idx = DeliveryIndex::new(&reg);
        idx.insert_subscriber("late", &feeds(&["A"]), "shared:1", true, false);
        idx.insert_subscriber("early", &feeds(&["A"]), "shared:1", true, false);
        assert_eq!(idx.subscriber_for_endpoint("shared:1").unwrap(), "early");
        idx.remove_subscriber("early", &feeds(&["A"]), "shared:1");
        assert_eq!(idx.subscriber_for_endpoint("shared:1").unwrap(), "late");
        idx.remove_subscriber("late", &feeds(&["A"]), "shared:1");
        assert!(idx.subscriber_for_endpoint("shared:1").is_none());
        assert_eq!(idx.entry_counts(), (0, 0), "no postings may leak");
    }

    #[test]
    fn group_plans_rebuild_and_merge_ascending() {
        let reg = Registry::new();
        let mut idx = DeliveryIndex::new(&reg);
        let p0 = feeds(&["A", "B"]);
        let p1 = feeds(&["B", "C"]);
        idx.set_group_plans([(0usize, p0.as_slice()), (1, p1.as_slice())].into_iter());
        let (_, plans) = idx.matches(&feeds(&["B"]));
        assert_eq!(plans, vec![0, 1]);
        let (_, plans) = idx.matches(&feeds(&["C", "A"]));
        assert_eq!(plans, vec![0, 1]);
        // rebuild replaces, never accumulates
        idx.set_group_plans([(0usize, p1.as_slice())].into_iter());
        let (_, plans) = idx.matches(&feeds(&["A"]));
        assert!(plans.is_empty());
    }

    #[test]
    fn gauges_track_posting_counts() {
        let reg = Registry::new();
        let mut idx = DeliveryIndex::new(&reg);
        idx.insert_subscriber("s1", &feeds(&["A", "B"]), "h:1", true, false);
        idx.insert_subscriber("s2", &feeds(&["B"]), "h:2", true, false);
        assert_eq!(reg.gauge_value("index.feed_entries"), Some(3));
        assert_eq!(reg.gauge_value("index.endpoint_entries"), Some(2));
        idx.set_online("s1", &feeds(&["A", "B"]), false, false);
        assert_eq!(reg.gauge_value("index.feed_entries"), Some(1));
        idx.remove_subscriber("s2", &feeds(&["B"]), "h:2");
        assert_eq!(reg.gauge_value("index.feed_entries"), Some(0));
        assert_eq!(reg.gauge_value("index.endpoint_entries"), Some(1));
        let (f, e) = idx.entry_counts();
        assert_eq!((f as i64, e as i64), (0, 1));
    }
}
