//! The §2.2 strawmen, over the same VFS as Bistro itself.
//!
//! * [`PullPoller`] — a pull-based subscriber: it must repeatedly list the
//!   provider's directories to discover new files, and the cost of each
//!   poll grows with the stored history ("the cost of the filesystem
//!   metadata operations grows linearly with the history size").
//! * [`rsync_cron_sync`] — an rsync/cron-style stateless synchronizer: it
//!   compares the full source and destination trees on every run and
//!   copies the difference ("rsync stores no state about which files
//!   were already delivered … the cost of the directory scan grows
//!   linearly and completely dominates the actual data transmission
//!   time").
//!
//! Both report their work via the stores' [`bistro_vfs::MetaStats`],
//! which experiments E1/E2 read.

use bistro_vfs::{walk_files, FileStore, VfsError};
use std::collections::HashSet;

/// A pull-based subscriber polling a provider's directory tree.
pub struct PullPoller {
    /// Which files this subscriber has already retrieved.
    seen: HashSet<String>,
    root: String,
    /// Optional recency window: only paths lexicographically ≥ this
    /// marker are scanned (the paper's "limit the directory listing
    /// operation to a set of directories that contain only the most
    /// recent data" — which then *misses* out-of-order stragglers).
    window_floor: Option<String>,
}

impl PullPoller {
    /// A poller over `root` (provider-side directory).
    pub fn new(root: &str) -> PullPoller {
        PullPoller {
            seen: HashSet::new(),
            root: root.to_string(),
            window_floor: None,
        }
    }

    /// Restrict scanning to paths ≥ `floor` (recency-window shortcut).
    pub fn with_window_floor(mut self, floor: &str) -> PullPoller {
        self.window_floor = Some(floor.to_string());
        self
    }

    /// One poll: list the provider tree and return (retrieving) files not
    /// seen before. Every poll pays the full metadata cost of the
    /// provider's history.
    pub fn poll(&mut self, provider: &dyn FileStore) -> Result<Vec<String>, VfsError> {
        let mut new_files = Vec::new();
        let files = walk_files(provider, &self.root)?;
        for f in files {
            if let Some(floor) = &self.window_floor {
                if f.as_str() < floor.as_str() {
                    continue;
                }
            }
            if self.seen.insert(f.clone()) {
                // retrieve: read the payload (costed by MetaStats)
                provider.read(&f)?;
                new_files.push(f);
            }
        }
        Ok(new_files)
    }

    /// Number of files retrieved so far.
    pub fn retrieved(&self) -> usize {
        self.seen.len()
    }
}

/// One rsync/cron run: make `dst_root` in `dst` mirror `src_root` in
/// `src`. Stateless: compares full listings of both trees every time.
/// Returns the number of files copied.
pub fn rsync_cron_sync(
    src: &dyn FileStore,
    src_root: &str,
    dst: &dyn FileStore,
    dst_root: &str,
) -> Result<usize, VfsError> {
    let src_files = walk_files(src, src_root)?;
    dst.create_dir_all(dst_root)?;
    let dst_files: HashSet<String> = walk_files(dst, dst_root)?
        .into_iter()
        .map(|p| {
            p.strip_prefix(&format!("{dst_root}/"))
                .unwrap_or(&p)
                .to_string()
        })
        .collect();

    let mut copied = 0;
    let src_prefix = format!("{src_root}/");
    for f in &src_files {
        let rel = f.strip_prefix(&src_prefix).unwrap_or(f);
        let dst_path = format!("{dst_root}/{rel}");
        let needs_copy = if dst_files.contains(rel) {
            // size comparison (rsync's quick check) — stat both sides
            let s = src.metadata(f)?;
            match dst.metadata(&dst_path) {
                Ok(d) => s.size != d.size,
                Err(_) => true,
            }
        } else {
            true
        };
        if needs_copy {
            let data = src.read(f)?;
            dst.write(&dst_path, &data)?;
            copied += 1;
        }
    }
    Ok(copied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::SimClock;
    use bistro_vfs::MemFs;
    use std::sync::Arc;

    fn provider_with(n: usize) -> Arc<MemFs> {
        let fs = MemFs::shared(SimClock::new());
        for i in 0..n {
            fs.write(&format!("staging/F/day{:03}/f{i}.csv", i / 10), b"data")
                .unwrap();
        }
        fs
    }

    #[test]
    fn pull_poller_finds_new_files_once() {
        let fs = provider_with(20);
        let mut poller = PullPoller::new("staging");
        assert_eq!(poller.poll(fs.as_ref()).unwrap().len(), 20);
        assert_eq!(poller.poll(fs.as_ref()).unwrap().len(), 0);
        fs.write("staging/F/day999/new.csv", b"x").unwrap();
        assert_eq!(poller.poll(fs.as_ref()).unwrap().len(), 1);
        assert_eq!(poller.retrieved(), 21);
    }

    #[test]
    fn pull_poll_cost_grows_with_history() {
        let small = provider_with(10);
        let large = provider_with(1000);
        let mut p1 = PullPoller::new("staging");
        let mut p2 = PullPoller::new("staging");
        p1.poll(small.as_ref()).unwrap();
        p2.poll(large.as_ref()).unwrap();
        let before_small = small.stats().snapshot();
        let before_large = large.stats().snapshot();
        // steady-state polls (no new files) still pay full scan cost
        p1.poll(small.as_ref()).unwrap();
        p2.poll(large.as_ref()).unwrap();
        let cost_small = small.stats().snapshot().since(&before_small).metadata_ops();
        let cost_large = large.stats().snapshot().since(&before_large).metadata_ops();
        assert!(
            cost_large > cost_small * 20,
            "poll cost must scale with history: {cost_small} vs {cost_large}"
        );
    }

    #[test]
    fn window_floor_misses_stragglers() {
        let fs = provider_with(20);
        let mut poller = PullPoller::new("staging").with_window_floor("staging/F/day001");
        let got = poller.poll(fs.as_ref()).unwrap();
        // files under day000 are invisible — the out-of-orderness hazard
        assert!(got.len() < 20);
        assert!(got.iter().all(|f| !f.contains("day000")));
    }

    #[test]
    fn rsync_copies_diff_only() {
        let src = provider_with(10);
        let dst = MemFs::shared(SimClock::new());
        assert_eq!(
            rsync_cron_sync(src.as_ref(), "staging", dst.as_ref(), "mirror").unwrap(),
            10
        );
        assert_eq!(
            rsync_cron_sync(src.as_ref(), "staging", dst.as_ref(), "mirror").unwrap(),
            0
        );
        src.write("staging/F/day999/new.csv", b"xx").unwrap();
        assert_eq!(
            rsync_cron_sync(src.as_ref(), "staging", dst.as_ref(), "mirror").unwrap(),
            1
        );
        assert_eq!(dst.read("mirror/F/day999/new.csv").unwrap(), b"xx");
    }

    #[test]
    fn rsync_rewrites_changed_sizes() {
        let src = MemFs::shared(SimClock::new());
        src.write("s/a.csv", b"one").unwrap();
        let dst = MemFs::shared(SimClock::new());
        rsync_cron_sync(src.as_ref(), "s", dst.as_ref(), "d").unwrap();
        src.write("s/a.csv", b"longer-content").unwrap();
        assert_eq!(
            rsync_cron_sync(src.as_ref(), "s", dst.as_ref(), "d").unwrap(),
            1
        );
        assert_eq!(dst.read("d/a.csv").unwrap(), b"longer-content");
    }

    #[test]
    fn rsync_steady_state_cost_scales_with_history() {
        let src = provider_with(500);
        let dst = MemFs::shared(SimClock::new());
        rsync_cron_sync(src.as_ref(), "staging", dst.as_ref(), "mirror").unwrap();
        let before = src.stats().snapshot();
        let before_dst = dst.stats().snapshot();
        // no changes: a full run still scans everything
        rsync_cron_sync(src.as_ref(), "staging", dst.as_ref(), "mirror").unwrap();
        let cost = src.stats().snapshot().since(&before).metadata_ops()
            + dst.stats().snapshot().since(&before_dst).metadata_ops();
        assert!(
            cost > 1000,
            "steady-state rsync should still pay O(history) = {cost} metadata ops"
        );
    }
}
