//! File normalization (paper §3.1).
//!
//! "The Bistro file normalizer takes knowledge of field semantics
//! embedded in feed patterns to drive the normalization process" — it
//! renders the staging path from the match captures (e.g. daily
//! directories from the embedded timestamp) and applies the feed's
//! compression option via the `bistro-compress` container.

#[cfg(test)]
use bistro_compress::Codec;
use bistro_compress::{container, CompressError};
use bistro_config::{CompressOpt, FeedDef};
use bistro_pattern::Captures;
use std::fmt;

/// Errors from normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormalizeError {
    /// The normalize template failed to render.
    Template(String),
    /// Decompression of a container payload failed.
    Compress(CompressError),
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalizeError::Template(e) => write!(f, "template: {e}"),
            NormalizeError::Compress(e) => write!(f, "compress: {e}"),
        }
    }
}

impl std::error::Error for NormalizeError {}

impl From<CompressError> for NormalizeError {
    fn from(e: CompressError) -> Self {
        NormalizeError::Compress(e)
    }
}

/// The result of normalizing one file for one feed.
#[derive(Clone, Debug)]
pub struct Normalized {
    /// Staging path relative to the staging root (includes the feed's
    /// directory).
    pub staged_path: String,
    /// The bytes to stage.
    pub data: Vec<u8>,
}

/// Normalize a matched file for a feed.
///
/// * path: the feed's `normalize` template rendered with the captures,
///   or `<feed name>/<original name>` when no template is configured;
/// * payload: per the feed's [`CompressOpt`] — kept verbatim, expanded
///   (if it is a Bistro container), or (re-)sealed with a codec.
pub fn normalize(
    feed: &FeedDef,
    name: &str,
    captures: &Captures,
    payload: &[u8],
) -> Result<Normalized, NormalizeError> {
    let staged_path = staged_path(feed, name, captures)?;
    let data = match feed.compress {
        CompressOpt::Keep => payload.to_vec(),
        CompressOpt::Expand => {
            if container::is_container(payload) {
                container::open(payload)?
            } else {
                payload.to_vec()
            }
        }
        CompressOpt::To(codec) => {
            if container::is_container(payload) {
                container::transcode(payload, codec)?
            } else {
                container::seal(codec, payload)
            }
        }
    };
    Ok(Normalized { staged_path, data })
}

/// [`normalize`] taking ownership of the payload: a `Keep` feed (the
/// common case) moves the buffer into the result instead of copying it.
/// Byte-identical output to [`normalize`].
pub fn normalize_owned(
    feed: &FeedDef,
    name: &str,
    captures: &Captures,
    payload: Vec<u8>,
) -> Result<Normalized, NormalizeError> {
    if matches!(feed.compress, CompressOpt::Keep) {
        let staged_path = staged_path(feed, name, captures)?;
        return Ok(Normalized {
            staged_path,
            data: payload,
        });
    }
    normalize(feed, name, captures, &payload)
}

/// Render the staging path for a matched file.
fn staged_path(feed: &FeedDef, name: &str, captures: &Captures) -> Result<String, NormalizeError> {
    let rel = match &feed.normalize {
        Some(tpl) => tpl
            .render(captures, name, &feed.name)
            .map_err(|e| NormalizeError::Template(e.to_string()))?,
        None => format!("{}/{}", feed.name, name),
    };
    // template output may or may not start with the feed name; ensure the
    // staged layout is always rooted per feed for expiration/archival
    let rooted = rel.len() > feed.name.len()
        && rel.as_bytes()[feed.name.len()] == b'/'
        && rel.starts_with(&feed.name);
    Ok(if rooted || rel == feed.name {
        rel
    } else {
        format!("{}/{}", feed.name, rel)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_config::parse_config;

    fn feed(src: &str) -> FeedDef {
        parse_config(src).unwrap().feeds.remove(0)
    }

    #[test]
    fn default_layout_is_feed_slash_name() {
        let f = feed(r#"feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }"#);
        let caps = f.patterns[0]
            .match_str("MEMORY_poller1_20100925.gz")
            .unwrap();
        let n = normalize(&f, "MEMORY_poller1_20100925.gz", &caps, b"body").unwrap();
        assert_eq!(n.staged_path, "SNMP/MEMORY/MEMORY_poller1_20100925.gz");
        assert_eq!(n.data, b"body");
    }

    #[test]
    fn daily_directory_template() {
        let f = feed(
            r#"feed SNMP/MEMORY {
                pattern "MEMORY_poller%i_%Y%m%d.gz";
                normalize "%Y/%m/%d/%f";
            }"#,
        );
        let caps = f.patterns[0]
            .match_str("MEMORY_poller1_20100925.gz")
            .unwrap();
        let n = normalize(&f, "MEMORY_poller1_20100925.gz", &caps, b"x").unwrap();
        assert_eq!(
            n.staged_path,
            "SNMP/MEMORY/2010/09/25/MEMORY_poller1_20100925.gz"
        );
    }

    #[test]
    fn compress_to_codec_seals() {
        let f = feed(r#"feed F { pattern "f_%i.csv"; compress lzss; }"#);
        let caps = f.patterns[0].match_str("f_1.csv").unwrap();
        let body = b"measurement,1,2,3\n".repeat(50);
        let n = normalize(&f, "f_1.csv", &caps, &body).unwrap();
        assert!(container::is_container(&n.data));
        assert_eq!(container::open(&n.data).unwrap(), body);
        assert!(n.data.len() < body.len());
    }

    #[test]
    fn expand_opens_containers() {
        let f = feed(r#"feed F { pattern "f_%i.csv"; compress expand; }"#);
        let caps = f.patterns[0].match_str("f_1.csv").unwrap();
        let body = b"hello world hello world";
        let sealed = container::seal(Codec::Rle, body);
        let n = normalize(&f, "f_1.csv", &caps, &sealed).unwrap();
        assert_eq!(n.data, body);
        // non-container payload passes through
        let n = normalize(&f, "f_1.csv", &caps, b"plain").unwrap();
        assert_eq!(n.data, b"plain");
    }

    #[test]
    fn transcode_on_recompress() {
        let f = feed(r#"feed F { pattern "f_%i.csv"; compress rle; }"#);
        let caps = f.patterns[0].match_str("f_1.csv").unwrap();
        let body = b"abcabcabc".repeat(20);
        let sealed = container::seal(Codec::Lzss, &body);
        let n = normalize(&f, "f_1.csv", &caps, &sealed).unwrap();
        let (codec, _, _) = container::peek(&n.data).unwrap();
        assert_eq!(codec, Codec::Rle);
        assert_eq!(container::open(&n.data).unwrap(), body);
    }

    #[test]
    fn corrupt_container_rejected_on_expand() {
        let f = feed(r#"feed F { pattern "f_%i.csv"; compress expand; }"#);
        let caps = f.patterns[0].match_str("f_1.csv").unwrap();
        let mut sealed = container::seal(Codec::Rle, b"data data data data");
        let n = sealed.len();
        sealed[n - 1] ^= 0xFF;
        assert!(matches!(
            normalize(&f, "f_1.csv", &caps, &sealed),
            Err(NormalizeError::Compress(_))
        ));
    }
}
