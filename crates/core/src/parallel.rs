//! The parallel ingest stage: the *pure* half of the pipeline.
//!
//! Ingesting a file splits cleanly in two:
//!
//! 1. **prepare** (this module) — classify the name, normalize the
//!    payload for every matching feed, and pre-serialize the arrival
//!    receipt bytes (everything but the commit-assigned id and arrival
//!    time). Pure computation over inputs the caller already holds: no
//!    store writes, no WAL appends, no shared counters. This is the
//!    CPU-heavy part, and because it is pure it can fan out across
//!    [`bistro_base::Pool`] workers freely.
//! 2. **commit** (`Server::ingest_prepared`) — stage the bytes, record
//!    the arrival receipt (group-committed to the WAL per batch), and
//!    deliver. All side effects, executed strictly in deposit order by
//!    the server's own thread.
//!
//! The determinism contract of `Server::deposit_batch` falls out of this
//! split: workers touch nothing observable (in particular they never
//! touch the receipts WAL — a WAL append allocates the next sequence
//! number, so letting workers race to it would make receipt numbering
//! schedule-dependent), and the commit loop replays the pure results in
//! input order, so every store operation, receipt sequence number and
//! telemetry counter is byte-identical for any worker count.

use crate::classifier::{Classification, Classifier};
use crate::normalizer::{normalize, normalize_owned, NormalizeError, Normalized};
use bistro_base::{SharedClock, TimePoint};
use bistro_config::Config;
use bistro_receipts::ArrivalTemplate;

/// The pure result of classifying + normalizing one deposited file.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// All matching feeds, most specific first. Empty ⇒ unknown feed.
    pub classifications: Vec<Classification>,
    /// One normalized staging payload per classification, same order
    /// (entry `i` belongs to `classifications[i].feed`).
    pub staged: Vec<Normalized>,
    /// The feed-time captured from the name (first classification wins).
    pub feed_time: Option<TimePoint>,
    /// The deposited payload, handed back when no feed matched so the
    /// commit stage can park it in `unknown/` without re-reading it.
    /// `None` when classified — the buffer moved into `staged`.
    pub raw: Option<Vec<u8>>,
    /// The arrival receipt pre-serialized by the prepare worker (all
    /// fields but the commit-assigned id and arrival time). `None` when
    /// no feed matched.
    pub receipt: Option<ArrivalTemplate>,
    /// Deposited payload length in bytes.
    pub payload_len: u64,
    /// Wall time spent classifying, µs (0 under a simulated clock).
    pub classify_us: u64,
    /// Wall time spent normalizing, µs (0 under a simulated clock).
    pub normalize_us: u64,
}

/// Classify `rel_path` and normalize `payload` for every matching feed.
/// Pure: reads only the classifier/config, touches no store, returns
/// everything by value. Safe to call from any [`bistro_base::Pool`]
/// worker.
///
/// Takes the payload by value so `compress keep` feeds (the common case)
/// stage the deposited buffer itself instead of a copy; the last
/// matching feed receives the original allocation.
pub fn prepare(
    classifier: &Classifier,
    config: &Config,
    clock: &SharedClock,
    rel_path: &str,
    payload: Vec<u8>,
) -> Result<Prepared, NormalizeError> {
    let t0 = clock.now();
    let classifications = classifier.classify(rel_path);
    let t1 = clock.now();
    let payload_len = payload.len() as u64;

    let mut staged = Vec::with_capacity(classifications.len());
    let mut feed_time = None;
    let mut raw = Some(payload);
    let last = classifications.len().saturating_sub(1);
    for (i, c) in classifications.iter().enumerate() {
        let feed = config
            .feed(&c.feed)
            .expect("classifier only yields configured feeds");
        let normalized = if i == last {
            // the final feed may take the deposited buffer outright
            normalize_owned(
                feed,
                rel_path,
                &c.captures,
                raw.take().expect("consumed once"),
            )?
        } else {
            normalize(
                feed,
                rel_path,
                &c.captures,
                raw.as_deref().expect("still held"),
            )?
        };
        staged.push(normalized);
        if feed_time.is_none() {
            feed_time = c.captures.timestamp();
        }
    }
    let receipt = staged.first().map(|primary| {
        ArrivalTemplate::new(
            rel_path.to_string(),
            primary.staged_path.clone(),
            payload_len,
            feed_time,
            classifications.iter().map(|c| c.feed.clone()).collect(),
        )
    });
    let t2 = clock.now();

    Ok(Prepared {
        classifications,
        staged,
        feed_time,
        raw,
        receipt,
        payload_len,
        classify_us: t1.since(t0).as_micros(),
        normalize_us: t2.since(t1).as_micros(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::{Pool, SimClock, TimePoint};
    use bistro_config::parse_config;

    fn fixture() -> (Classifier, Config) {
        let cfg = parse_config(
            r#"
            feed M { pattern "MEM_poller%i_%Y%m%d%H%M.csv"; }
            feed ALL { pattern "*_%Y%m%d%H%M.csv"; }
            "#,
        )
        .unwrap();
        (Classifier::compile(&cfg), cfg)
    }

    #[test]
    fn prepare_is_pure_and_complete() {
        let (classifier, cfg) = fixture();
        let clock: SharedClock = SimClock::starting_at(TimePoint::from_secs(5));
        let p = prepare(
            &classifier,
            &cfg,
            &clock,
            "MEM_poller3_201009250455.csv",
            b"x".to_vec(),
        )
        .unwrap();
        assert_eq!(p.classifications.len(), 2); // M + ALL
        assert_eq!(p.staged.len(), 2);
        assert_eq!(p.classifications[0].feed, "M");
        assert!(p.feed_time.is_some());
        assert_eq!(p.payload_len, 1);
        // classified: the buffer moved into staging, and the receipt is
        // pre-serialized for the commit stage
        assert!(p.raw.is_none());
        let t = p.receipt.as_ref().expect("classified files get a template");
        assert_eq!(t.name, "MEM_poller3_201009250455.csv");
        assert_eq!(t.staged_path, p.staged[0].staged_path);
        assert_eq!(t.feeds, vec!["M".to_string(), "ALL".to_string()]);
        // simulated clock: no time passes inside prepare
        assert_eq!((p.classify_us, p.normalize_us), (0, 0));

        let unknown = prepare(&classifier, &cfg, &clock, "nope.bin", b"x".to_vec()).unwrap();
        assert!(unknown.classifications.is_empty());
        assert!(unknown.staged.is_empty());
        assert_eq!(
            unknown.raw,
            Some(b"x".to_vec()),
            "unknown keeps the payload"
        );
        assert!(unknown.receipt.is_none());
    }

    #[test]
    fn prepare_fans_out_deterministically() {
        let (classifier, cfg) = fixture();
        let clock: SharedClock = SimClock::starting_at(TimePoint::from_secs(5));
        let names: Vec<String> = (0..23)
            .map(|i| format!("MEM_poller{i}_201009250455.csv"))
            .collect();
        let run = |workers: usize| -> Vec<String> {
            Pool::new(workers).map(names.clone(), |_, name| {
                let p =
                    prepare(&classifier, &cfg, &clock, &name, name.clone().into_bytes()).unwrap();
                format!(
                    "{name}→{:?}",
                    p.classifications
                        .iter()
                        .zip(p.staged.iter())
                        .map(|(c, n)| (&c.feed, &n.staged_path))
                        .collect::<Vec<_>>()
                )
            })
        };
        let reference = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), reference, "workers={workers}");
        }
    }
}
