//! The parallel ingest stage: the *pure* half of the pipeline.
//!
//! Ingesting a file splits cleanly in two:
//!
//! 1. **prepare** (this module) — classify the name and normalize the
//!    payload for every matching feed. Pure computation over inputs the
//!    caller already holds: no store writes, no WAL appends, no shared
//!    counters. This is the CPU-heavy part, and because it is pure it
//!    can fan out across [`bistro_base::Pool`] workers freely.
//! 2. **commit** (`Server::ingest_prepared`) — stage the bytes, record
//!    the arrival receipt, and deliver. All side effects, executed
//!    strictly in deposit order by the server's own thread.
//!
//! The determinism contract of `Server::deposit_batch` falls out of this
//! split: workers touch nothing observable (in particular they never
//! touch the receipts WAL — a WAL append allocates the next sequence
//! number, so letting workers race to it would make receipt numbering
//! schedule-dependent), and the commit loop replays the pure results in
//! input order, so every store operation, receipt sequence number and
//! telemetry counter is byte-identical for any worker count.

use crate::classifier::{Classification, Classifier};
use crate::normalizer::{normalize, NormalizeError, Normalized};
use bistro_base::{SharedClock, TimePoint};
use bistro_config::Config;

/// The pure result of classifying + normalizing one deposited file.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// All matching feeds, most specific first. Empty ⇒ unknown feed.
    pub classifications: Vec<Classification>,
    /// One normalized staging payload per classification, same order:
    /// `(feed name, normalized)`.
    pub staged: Vec<(String, Normalized)>,
    /// The feed-time captured from the name (first classification wins).
    pub feed_time: Option<TimePoint>,
    /// Wall time spent classifying, µs (0 under a simulated clock).
    pub classify_us: u64,
    /// Wall time spent normalizing, µs (0 under a simulated clock).
    pub normalize_us: u64,
}

/// Classify `rel_path` and normalize `payload` for every matching feed.
/// Pure: reads only the classifier/config, touches no store, returns
/// everything by value. Safe to call from any [`bistro_base::Pool`]
/// worker.
pub fn prepare(
    classifier: &Classifier,
    config: &Config,
    clock: &SharedClock,
    rel_path: &str,
    payload: &[u8],
) -> Result<Prepared, NormalizeError> {
    let t0 = clock.now();
    let classifications = classifier.classify(rel_path);
    let t1 = clock.now();

    let mut staged = Vec::with_capacity(classifications.len());
    let mut feed_time = None;
    for c in &classifications {
        let feed = config
            .feed(&c.feed)
            .expect("classifier only yields configured feeds");
        staged.push((
            c.feed.clone(),
            normalize(feed, rel_path, &c.captures, payload)?,
        ));
        if feed_time.is_none() {
            feed_time = c.captures.timestamp();
        }
    }
    let t2 = clock.now();

    Ok(Prepared {
        classifications,
        staged,
        feed_time,
        classify_us: t1.since(t0).as_micros(),
        normalize_us: t2.since(t1).as_micros(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::{Pool, SimClock, TimePoint};
    use bistro_config::parse_config;

    fn fixture() -> (Classifier, Config) {
        let cfg = parse_config(
            r#"
            feed M { pattern "MEM_poller%i_%Y%m%d%H%M.csv"; }
            feed ALL { pattern "*_%Y%m%d%H%M.csv"; }
            "#,
        )
        .unwrap();
        (Classifier::compile(&cfg), cfg)
    }

    #[test]
    fn prepare_is_pure_and_complete() {
        let (classifier, cfg) = fixture();
        let clock: SharedClock = SimClock::starting_at(TimePoint::from_secs(5));
        let p = prepare(
            &classifier,
            &cfg,
            &clock,
            "MEM_poller3_201009250455.csv",
            b"x",
        )
        .unwrap();
        assert_eq!(p.classifications.len(), 2); // M + ALL
        assert_eq!(p.staged.len(), 2);
        assert_eq!(p.staged[0].0, "M");
        assert!(p.feed_time.is_some());
        // simulated clock: no time passes inside prepare
        assert_eq!((p.classify_us, p.normalize_us), (0, 0));

        let unknown = prepare(&classifier, &cfg, &clock, "nope.bin", b"x").unwrap();
        assert!(unknown.classifications.is_empty());
        assert!(unknown.staged.is_empty());
    }

    #[test]
    fn prepare_fans_out_deterministically() {
        let (classifier, cfg) = fixture();
        let clock: SharedClock = SimClock::starting_at(TimePoint::from_secs(5));
        let names: Vec<String> = (0..23)
            .map(|i| format!("MEM_poller{i}_201009250455.csv"))
            .collect();
        let run = |workers: usize| -> Vec<String> {
            Pool::new(workers).map(names.clone(), |_, name| {
                let p = prepare(&classifier, &cfg, &clock, &name, name.as_bytes()).unwrap();
                format!(
                    "{name}→{:?}",
                    p.staged
                        .iter()
                        .map(|(f, n)| (f, &n.staged_path))
                        .collect::<Vec<_>>()
                )
            })
        };
        let reference = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), reference, "workers={workers}");
        }
    }
}
