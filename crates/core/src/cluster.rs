//! Multi-server Bistro: partitioned feed groups with failover.
//!
//! The paper runs Bistro as "a network of cooperating feed managers"
//! (§3); this module adds the placement layer that makes that network
//! survive a server loss. Feeds are partitioned into *feed groups* (the
//! top-level segment of the hierarchical feed name: `SNMP/CPU` belongs
//! to group `SNMP`), and a [`Directory`] maps every group to a *home*
//! server plus an ordered list of *standbys*. All placement state is
//! epoch-fenced: each reassignment bumps the directory epoch, and
//! members ignore assignments older than what they have already seen.
//!
//! Fault-tolerance is a per-feed knob (`policy discard|spill|failover`
//! in the configuration language), echoing the ingestion policies of
//! fault-tolerant feed platforms:
//!
//! * **discard** — deposits arriving while the group's home is down are
//!   dropped (counted in `cluster.discarded`);
//! * **spill** — deposits are buffered at the ingress and replayed into
//!   the group's home once one is live again;
//! * **failover** — every deposit is synchronously replicated to the
//!   first live standby over a [`ClusterMsg::Replicate`] channel; when
//!   heartbeat silence exceeds the failure window the directory
//!   promotes that standby, re-homes the group's subscribers to it, and
//!   backfills their delivery state from the failed home's durable
//!   receipt store so re-homed subscribers observe exactly-once
//!   delivery.
//!
//! All server↔directory traffic flows through the simulated network on
//! dedicated control endpoints ([`DIRECTORY_ENDPOINT`] and
//! `"<server>.cluster"` per member — a server's own endpoint belongs to
//! its ack stream and [`Server::poll_network`] discards everything
//! else). The re-homing handshake is fully message-driven and paged:
//!
//! ```text
//! directory --- DirAssign{group, home, epoch} ---> every live member
//! new home  --- BackfillRequest{from_seq: 0}  ---> directory
//! directory --- BackfillPage{names, next_seq} ---> new home   (repeat)
//! directory --- BackfillPage{done: true}      ---> new home
//! ```
//!
//! The pages carry file *names* (file ids are store-local) ordered by
//! the failed store's WAL sequence ([`ReceiptStore::deliveries_since`]);
//! the new home marks each named file it holds as already delivered and
//! only then attaches the subscriber, whose attach-time backfill covers
//! exactly the files the failed home never delivered.
//!
//! Everything is deterministic: `BTreeMap` iteration everywhere, the
//! same seed replays bit-for-bit.

use crate::classifier::Classifier;
use crate::server::{Server, ServerError};
use bistro_base::{TimePoint, TimeSpan};
use bistro_config::{Config, ConfigError, FeedPolicy, SubscriberDef};
use bistro_receipts::{ReceiptError, ReceiptStore};
use bistro_telemetry::{
    AlarmFiring, AlarmRule, AlarmSet, Condition, Counter, Json, Registry, SharedRegistry,
};
use bistro_transport::messages::{ClusterMsg, Message};
use bistro_transport::SimNetwork;
use bistro_vfs::FileStore;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// The directory service's endpoint on the simulated network.
pub const DIRECTORY_ENDPOINT: &str = "directory";

/// Delivery receipts per [`ClusterMsg::BackfillPage`]. Pages are
/// extended past this to finish a run of equal WAL sequences (snapshot
/// receipts all recover at seq 0), so `next_seq` is always a clean
/// resume point.
pub const BACKFILL_PAGE: usize = 64;

/// A member's cluster-control endpoint (heartbeats out, directory
/// assignments / replicas / backfill pages in). Distinct from the
/// server's own endpoint, which carries subscriber acks.
pub fn control_endpoint(server: &str) -> String {
    format!("{server}.cluster")
}

/// The feed group a feed belongs to: the top-level segment of its
/// hierarchical name (`SNMP/CPU` → `SNMP`; a flat name is its own
/// group). Groups are the unit of placement and failover.
pub fn group_of(feed: &str) -> &str {
    feed.split('/').next().unwrap_or(feed)
}

/// Errors from cluster operations.
#[derive(Debug)]
pub enum ClusterError {
    /// An underlying server operation failed.
    Server(ServerError),
    /// Reading a failed member's receipt store failed.
    Receipts(ReceiptError),
    /// Subscription resolution failed.
    Config(ConfigError),
    /// A named server is not a cluster member.
    UnknownServer(String),
    /// A feed group has no directory entry.
    UnknownGroup(String),
    /// `add_server` with a name that is already a member.
    DuplicateServer(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Server(e) => write!(f, "{e}"),
            ClusterError::Receipts(e) => write!(f, "{e}"),
            ClusterError::Config(e) => write!(f, "{e}"),
            ClusterError::UnknownServer(s) => write!(f, "unknown server {s}"),
            ClusterError::UnknownGroup(g) => write!(f, "no home assigned for feed group {g}"),
            ClusterError::DuplicateServer(s) => write!(f, "server {s} already joined"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ServerError> for ClusterError {
    fn from(e: ServerError) -> Self {
        ClusterError::Server(e)
    }
}

impl From<ReceiptError> for ClusterError {
    fn from(e: ReceiptError) -> Self {
        ClusterError::Receipts(e)
    }
}

impl From<ConfigError> for ClusterError {
    fn from(e: ConfigError) -> Self {
        ClusterError::Config(e)
    }
}

/// One feed group's placement.
#[derive(Clone, Debug)]
pub struct HomeEntry {
    /// The server currently homing the group.
    pub home: String,
    /// Failover candidates, in promotion order.
    pub standbys: Vec<String>,
    /// Directory epoch of the last (re)assignment — members fence
    /// stale assignments with this.
    pub epoch: u64,
}

/// The feed-group → home-server map. Owned by [`Cluster`]; members see
/// it only through `DirHome` / `DirAssign` messages.
#[derive(Default)]
pub struct Directory {
    homes: BTreeMap<String, HomeEntry>,
    epoch: u64,
}

impl Directory {
    /// The placement of `group`, if assigned.
    pub fn home_of(&self, group: &str) -> Option<&HomeEntry> {
        self.homes.get(group)
    }

    /// The current directory epoch (bumped by every reassignment).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Groups currently homed on `server`, sorted.
    fn groups_homed_on(&self, server: &str) -> Vec<String> {
        self.homes
            .iter()
            .filter(|(_, e)| e.home == server)
            .map(|(g, _)| g.clone())
            .collect()
    }
}

struct Member {
    /// `None` after [`Cluster::kill`] — the crashed incarnation. The
    /// durable store below outlives it.
    server: Option<Server>,
    /// The member's durable store, kept so the directory can read a
    /// dead member's receipts for backfill and a restart can recover.
    store: Arc<dyn FileStore>,
    /// This member's view of placements: group → (home, epoch).
    view: BTreeMap<String, (String, u64)>,
    /// When this member last heartbeated (drives the send cadence).
    last_heartbeat: Option<TimePoint>,
}

/// Names accumulated from backfill pages for one (group, subscriber)
/// re-homing in flight.
#[derive(Default)]
struct Rehome {
    names: Vec<String>,
}

struct ClusterMetrics {
    heartbeats: Arc<Counter>,
    deposits: Arc<Counter>,
    replicated: Arc<Counter>,
    replica_applied: Arc<Counter>,
    replica_dropped: Arc<Counter>,
    replica_rejected: Arc<Counter>,
    stale_assigns: Arc<Counter>,
    spilled: Arc<Counter>,
    spill_replayed: Arc<Counter>,
    discarded: Arc<Counter>,
    unknown: Arc<Counter>,
    failovers: Arc<Counter>,
    stranded: Arc<Counter>,
    rehomed: Arc<Counter>,
    rehome_conflicts: Arc<Counter>,
    backfill_pages: Arc<Counter>,
    backfill_marked: Arc<Counter>,
    backfill_delivered: Arc<Counter>,
}

impl ClusterMetrics {
    fn new(reg: &Registry) -> ClusterMetrics {
        ClusterMetrics {
            heartbeats: reg.counter("cluster.heartbeats"),
            deposits: reg.counter("cluster.deposits_routed"),
            replicated: reg.counter("cluster.replicated"),
            replica_applied: reg.counter("cluster.replica_applied"),
            replica_dropped: reg.counter("cluster.replica_dropped"),
            replica_rejected: reg.counter("cluster.replica_rejected"),
            stale_assigns: reg.counter("cluster.stale_assigns"),
            spilled: reg.counter("cluster.spilled"),
            spill_replayed: reg.counter("cluster.spill_replayed"),
            discarded: reg.counter("cluster.discarded"),
            unknown: reg.counter("cluster.unknown"),
            failovers: reg.counter("cluster.failovers"),
            stranded: reg.counter("cluster.stranded"),
            rehomed: reg.counter("cluster.rehomed_subscribers"),
            rehome_conflicts: reg.counter("cluster.rehome_conflicts"),
            backfill_pages: reg.counter("cluster.backfill_pages"),
            backfill_marked: reg.counter("cluster.backfill_marked"),
            backfill_delivered: reg.counter("cluster.backfill_delivered"),
        }
    }
}

/// A set of Bistro servers partitioned by feed group, with a directory
/// service, heartbeat failure detection, per-feed fault-tolerance
/// policy and subscriber re-homing.
///
/// The cluster owns the member [`Server`]s and the ingress: sources
/// call [`Cluster::route_deposit`] instead of depositing at a specific
/// server, and subscribers register through
/// [`Cluster::register_subscriber`], which splits a subscription by
/// group and attaches each slice at that group's home. Member configs
/// should declare no subscribers of their own.
///
/// Drive it with [`Cluster::tick`] (heartbeats, failure detection,
/// alarms) and [`Cluster::pump`] (control-message processing) on every
/// simulation step.
pub struct Cluster {
    config: Config,
    classifier: Classifier,
    net: Arc<SimNetwork>,
    heartbeat_every: TimeSpan,
    failure_after: TimeSpan,
    members: BTreeMap<String, Member>,
    directory: Directory,
    /// When the directory last heard each member (heartbeat arrivals;
    /// seeded on the first tick after a member joins).
    last_seen: BTreeMap<String, TimePoint>,
    dead: BTreeSet<String>,
    /// group → the failed server whose receipt store seeds backfill.
    failover_source: BTreeMap<String, String>,
    /// Receipt stores of dead members, reopened read-mostly for
    /// backfill queries.
    dead_stores: BTreeMap<String, ReceiptStore>,
    /// group → deposits buffered while the group had no live home.
    spill: BTreeMap<String, Vec<(String, Vec<u8>)>>,
    /// (group, subscriber) → the per-group subscriber definition (its
    /// subscriptions narrowed to that group's feeds).
    defs: BTreeMap<(String, String), SubscriberDef>,
    /// Re-homings awaiting their final backfill page.
    rehomes: BTreeMap<(String, String), Rehome>,
    /// Epoch-fence replicas at the receiving member (default on). The
    /// model checker's revert-verified regression disables this to
    /// reproduce the in-flight-replicate vs. backfill-marking race.
    replica_fence: bool,
    telemetry: SharedRegistry,
    metrics: ClusterMetrics,
    alarms: AlarmSet,
}

impl Cluster {
    /// Create an empty cluster over `net`. `config` is the cluster-wide
    /// feed catalog (the union every member also runs) — it drives
    /// ingress classification, policy lookup and subscription
    /// resolution. Members heartbeat every `heartbeat_every`; a member
    /// silent for longer than `failure_after` is declared failed.
    pub fn new(
        config: Config,
        net: Arc<SimNetwork>,
        heartbeat_every: TimeSpan,
        failure_after: TimeSpan,
    ) -> Cluster {
        let classifier = Classifier::compile(&config);
        let telemetry = Registry::new();
        let metrics = ClusterMetrics::new(&telemetry);
        let mut alarms = AlarmSet::new();
        alarms.add(AlarmRule::new(
            "cluster-failover",
            Condition::CounterAtLeast {
                metric: "cluster.failovers".into(),
                threshold: 1,
            },
            "a feed group failed over to a standby home",
        ));
        alarms.add(AlarmRule::new(
            "cluster-stranded",
            Condition::CounterAtLeast {
                metric: "cluster.stranded".into(),
                threshold: 1,
            },
            "a failed feed group has no live standby",
        ));
        Cluster {
            config,
            classifier,
            net,
            heartbeat_every,
            failure_after,
            members: BTreeMap::new(),
            directory: Directory::default(),
            last_seen: BTreeMap::new(),
            dead: BTreeSet::new(),
            failover_source: BTreeMap::new(),
            dead_stores: BTreeMap::new(),
            spill: BTreeMap::new(),
            defs: BTreeMap::new(),
            rehomes: BTreeMap::new(),
            replica_fence: true,
            telemetry,
            metrics,
            alarms,
        }
    }

    /// Join `server` to the cluster. Its name becomes its member id.
    pub fn add_server(&mut self, server: Server) -> Result<(), ClusterError> {
        let name = server.name().to_string();
        if self.members.contains_key(&name) {
            return Err(ClusterError::DuplicateServer(name));
        }
        let store = server.store().clone();
        self.members.insert(
            name,
            Member {
                server: Some(server),
                store,
                view: BTreeMap::new(),
                last_heartbeat: None,
            },
        );
        Ok(())
    }

    /// Statically place `group` on `home` with `standbys` as failover
    /// candidates (promotion order). Initial placement is applied to
    /// every member's view directly — only *re*assignments travel over
    /// the wire.
    pub fn assign(
        &mut self,
        group: &str,
        home: &str,
        standbys: &[&str],
    ) -> Result<(), ClusterError> {
        for s in std::iter::once(&home).chain(standbys.iter()) {
            if !self.members.contains_key(*s) {
                return Err(ClusterError::UnknownServer(s.to_string()));
            }
        }
        self.directory.epoch += 1;
        let epoch = self.directory.epoch;
        self.directory.homes.insert(
            group.to_string(),
            HomeEntry {
                home: home.to_string(),
                standbys: standbys.iter().map(|s| s.to_string()).collect(),
                epoch,
            },
        );
        for member in self.members.values_mut() {
            member
                .view
                .insert(group.to_string(), (home.to_string(), epoch));
        }
        Ok(())
    }

    /// Register a subscriber cluster-wide. The subscription is resolved
    /// to feeds, sliced by feed group, and each slice is attached at
    /// that group's current home (narrowed `subscriptions` keep a home
    /// from delivering files it merely holds as a standby replica).
    /// Returns how many files were delivered by the attach-time
    /// backfills.
    pub fn register_subscriber(&mut self, def: &SubscriberDef) -> Result<usize, ClusterError> {
        let mut feeds: BTreeSet<String> = BTreeSet::new();
        for target in &def.subscriptions {
            feeds.extend(self.config.resolve_subscription(target)?);
        }
        let mut by_group: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for feed in feeds {
            by_group
                .entry(group_of(&feed).to_string())
                .or_default()
                .push(feed);
        }
        let mut delivered = 0;
        for (group, group_feeds) in by_group {
            let entry = self
                .directory
                .homes
                .get(&group)
                .ok_or_else(|| ClusterError::UnknownGroup(group.clone()))?;
            let mut slice = def.clone();
            slice.subscriptions = group_feeds;
            let home = entry.home.clone();
            self.defs
                .insert((group.clone(), def.name.clone()), slice.clone());
            let member = self
                .members
                .get_mut(&home)
                .ok_or(ClusterError::UnknownServer(home))?;
            if let Some(server) = member.server.as_mut() {
                delivered += server.add_subscriber(slice)?;
            }
        }
        Ok(delivered)
    }

    /// Ingress: classify `name`, route the deposit to the home of every
    /// matched feed group, and apply the per-feed fault-tolerance
    /// policy when a home is down. Failover-policy deposits are also
    /// replicated to the group's first live standby.
    pub fn route_deposit(
        &mut self,
        name: &str,
        payload: &[u8],
        now: TimePoint,
    ) -> Result<(), ClusterError> {
        let matches = self.classifier.classify(name);
        if matches.is_empty() {
            self.metrics.unknown.inc();
            return Ok(());
        }
        let mut by_group: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for m in matches {
            by_group
                .entry(group_of(&m.feed).to_string())
                .or_default()
                .push(m.feed);
        }
        for (group, feeds) in by_group {
            let entry = self
                .directory
                .homes
                .get(&group)
                .ok_or_else(|| ClusterError::UnknownGroup(group.clone()))?;
            // A file can match several feeds of the group; the
            // strongest policy among them governs it.
            let policy = feeds
                .iter()
                .filter_map(|f| self.config.feed(f))
                .map(|f| f.policy)
                .max_by_key(|p| match p {
                    FeedPolicy::Discard => 0,
                    FeedPolicy::Spill => 1,
                    FeedPolicy::Failover => 2,
                })
                .unwrap_or_default();
            let home = entry.home.clone();
            let group_epoch = entry.epoch;
            let standby = entry
                .standbys
                .iter()
                .find(|s| **s != home && self.members.get(*s).is_some_and(|m| m.server.is_some()))
                .cloned();
            let member = self
                .members
                .get_mut(&home)
                .ok_or_else(|| ClusterError::UnknownServer(home.clone()))?;
            match member.server.as_mut() {
                Some(server) => {
                    server.deposit(name, payload)?;
                    self.metrics.deposits.inc();
                    if policy == FeedPolicy::Failover {
                        if let Some(standby) = standby {
                            self.net.send(
                                now,
                                &control_endpoint(&home),
                                &control_endpoint(&standby),
                                Message::Cluster(ClusterMsg::Replicate {
                                    group: group.clone(),
                                    name: name.to_string(),
                                    payload: payload.to_vec(),
                                    epoch: group_epoch,
                                }),
                            );
                            self.metrics.replicated.inc();
                        }
                    }
                }
                None => match policy {
                    FeedPolicy::Discard => self.metrics.discarded.inc(),
                    FeedPolicy::Spill | FeedPolicy::Failover => {
                        self.spill
                            .entry(group.clone())
                            .or_default()
                            .push((name.to_string(), payload.to_vec()));
                        self.metrics.spilled.inc();
                    }
                },
            }
        }
        Ok(())
    }

    /// One control-plane step: send due heartbeats, absorb arrivals at
    /// the directory, declare members silent past the failure window
    /// dead (kicking off failover for their failover-policy groups),
    /// and evaluate alarms. Call once per simulation step, before
    /// [`Cluster::pump`].
    pub fn tick(&mut self, now: TimePoint) -> Result<Vec<AlarmFiring>, ClusterError> {
        // heartbeats (live members only — a crashed server is silent)
        for (name, member) in self.members.iter_mut() {
            if member.server.is_none() {
                continue;
            }
            let due = member
                .last_heartbeat
                .is_none_or(|t| now >= t + self.heartbeat_every);
            if due {
                let epoch = member.view.values().map(|(_, e)| *e).max().unwrap_or(0);
                self.net.send(
                    now,
                    &control_endpoint(name),
                    DIRECTORY_ENDPOINT,
                    Message::Cluster(ClusterMsg::Heartbeat {
                        server: name.clone(),
                        epoch,
                    }),
                );
                member.last_heartbeat = Some(now);
            }
        }

        self.drain_directory(now)?;

        // failure detection: baseline each member on its first tick, so
        // a member that never heartbeats is still eventually declared.
        let names: Vec<String> = self.members.keys().cloned().collect();
        for name in names {
            let seen = *self.last_seen.entry(name.clone()).or_insert(now);
            if self.dead.contains(&name) {
                continue;
            }
            if now > seen + self.failure_after {
                self.fail_over(&name, now)?;
            }
        }

        Ok(self.alarms.check(&self.telemetry))
    }

    /// Drain and apply all ready cluster-control messages: the
    /// directory's inbox (heartbeats, lookups, backfill requests) and
    /// every member's control inbox (assignments, replicas, backfill
    /// pages). Returns how many messages were processed. Multi-hop
    /// exchanges (assign → request → page → …) need one pump per
    /// network latency; pump until quiescent to settle a failover.
    pub fn pump(&mut self, now: TimePoint) -> Result<usize, ClusterError> {
        let mut n = self.drain_directory(now)?;
        let names: Vec<String> = self.members.keys().cloned().collect();
        for name in names {
            for d in self.net.recv_ready(&control_endpoint(&name), now) {
                n += 1;
                let Message::Cluster(msg) = d.msg else {
                    continue;
                };
                self.handle_member_msg(&name, msg, now)?;
            }
        }
        Ok(n)
    }

    /// Simulate a crash: drop the member's server. Its durable store
    /// survives for backfill and restart. Detection happens via
    /// heartbeat silence, not this call.
    pub fn kill(&mut self, name: &str) -> Result<(), ClusterError> {
        let member = self
            .members
            .get_mut(name)
            .ok_or_else(|| ClusterError::UnknownServer(name.to_string()))?;
        member.server = None;
        Ok(())
    }

    /// Rejoin a restarted incarnation (built over the member's original
    /// durable store — see [`Cluster::store_of`]). The member comes
    /// back as whatever the directory now says it is (groups that
    /// failed over stay with their new homes), and any spill buffered
    /// for groups it still homes is replayed into it.
    pub fn restart(&mut self, server: Server, now: TimePoint) -> Result<(), ClusterError> {
        let name = server.name().to_string();
        let member = self
            .members
            .get_mut(&name)
            .ok_or_else(|| ClusterError::UnknownServer(name.clone()))?;
        member.server = Some(server);
        member.last_heartbeat = None;
        self.dead.remove(&name);
        self.dead_stores.remove(&name);
        self.last_seen.insert(name.clone(), now);
        // replay spill for groups this member (still) homes
        let groups: Vec<String> = self.directory.groups_homed_on(&name);
        for group in groups {
            if let Some(files) = self.spill.remove(&group) {
                let server = self
                    .members
                    .get_mut(&name)
                    .and_then(|m| m.server.as_mut())
                    .expect("just restarted");
                for (f, p) in files {
                    server.deposit(&f, &p)?;
                    self.metrics.spill_replayed.inc();
                }
            }
        }
        Ok(())
    }

    /// Ask the directory (over the wire) where `group` lives; the
    /// `DirHome` reply updates `server`'s view when pumped.
    pub fn send_lookup(&self, server: &str, group: &str, now: TimePoint) {
        self.net.send(
            now,
            &control_endpoint(server),
            DIRECTORY_ENDPOINT,
            Message::Cluster(ClusterMsg::DirLookup {
                group: group.to_string(),
            }),
        );
    }

    /// A member's current view of a group: (home, epoch).
    pub fn view_of(&self, server: &str, group: &str) -> Option<(String, u64)> {
        self.members.get(server)?.view.get(group).cloned()
    }

    /// The member's server, if alive.
    pub fn server(&self, name: &str) -> Option<&Server> {
        self.members.get(name)?.server.as_ref()
    }

    /// Mutable access to a live member's server.
    pub fn server_mut(&mut self, name: &str) -> Option<&mut Server> {
        self.members.get_mut(name)?.server.as_mut()
    }

    /// A member's durable store (survives [`Cluster::kill`]; use it to
    /// build the restarted incarnation).
    pub fn store_of(&self, name: &str) -> Option<Arc<dyn FileStore>> {
        Some(self.members.get(name)?.store.clone())
    }

    /// The placement directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Cluster-level counters (`cluster.*`).
    pub fn telemetry(&self) -> &SharedRegistry {
        &self.telemetry
    }

    /// Append an alarm rule over the cluster registry.
    pub fn add_alarm_rule(&mut self, rule: AlarmRule) {
        self.alarms.add(rule);
    }

    /// One deterministic JSON document for the whole cluster: the
    /// directory epoch, every live member's full status snapshot
    /// (sorted by name), and the cluster counters. Two same-seed runs
    /// render byte-identical documents.
    pub fn status_json(&self) -> Json {
        let mut servers = Vec::new();
        for (name, m) in &self.members {
            if let Some(s) = &m.server {
                servers.push((name.clone(), s.status_json()));
            }
        }
        Json::Obj(vec![
            ("epoch".to_string(), Json::Num(self.directory.epoch as f64)),
            ("servers".to_string(), Json::Obj(servers)),
            ("cluster".to_string(), self.telemetry.snapshot_json()),
        ])
    }

    fn drain_directory(&mut self, now: TimePoint) -> Result<usize, ClusterError> {
        let mut n = 0;
        for d in self.net.recv_ready(DIRECTORY_ENDPOINT, now) {
            n += 1;
            let Message::Cluster(msg) = d.msg else {
                continue;
            };
            self.handle_directory_msg(&d.from, d.at, msg, now)?;
        }
        Ok(n)
    }

    /// Apply one message at the directory endpoint — the per-message
    /// body of the directory drain, exposed so a model checker can
    /// deliver directory traffic one message at a time in any order.
    /// `at` is the message's arrival time (feeds heartbeat liveness);
    /// `now` stamps any replies sent.
    pub fn handle_directory_msg(
        &mut self,
        from: &str,
        at: TimePoint,
        msg: ClusterMsg,
        now: TimePoint,
    ) -> Result<(), ClusterError> {
        match msg {
            ClusterMsg::Heartbeat { server, .. } => {
                self.last_seen.insert(server, at);
                self.metrics.heartbeats.inc();
            }
            ClusterMsg::DirLookup { group } => {
                if let Some(entry) = self.directory.homes.get(&group) {
                    self.net.send(
                        now,
                        DIRECTORY_ENDPOINT,
                        from,
                        Message::Cluster(ClusterMsg::DirHome {
                            group,
                            home: entry.home.clone(),
                            epoch: entry.epoch,
                        }),
                    );
                }
            }
            ClusterMsg::BackfillRequest {
                group,
                subscriber,
                from_seq,
            } => {
                self.serve_backfill(&group, &subscriber, from_seq, from, now)?;
            }
            _ => {}
        }
        Ok(())
    }

    /// Declare `name` failed *now*, without waiting for heartbeat
    /// silence — the model checker's failure-detection action, which
    /// abstracts the failure window away just as
    /// [`RetryTracker::fire_all`] abstracts retry deadlines. Returns
    /// `false` if the member was already declared dead.
    ///
    /// [`RetryTracker::fire_all`]: bistro_transport::RetryTracker::fire_all
    pub fn declare_failed(&mut self, name: &str, now: TimePoint) -> Result<bool, ClusterError> {
        if !self.members.contains_key(name) {
            return Err(ClusterError::UnknownServer(name.to_string()));
        }
        if self.dead.contains(name) {
            return Ok(false);
        }
        self.fail_over(name, now)?;
        Ok(true)
    }

    /// True if `name` has been declared failed (and not restarted).
    pub fn is_dead(&self, name: &str) -> bool {
        self.dead.contains(name)
    }

    /// Member names, sorted.
    pub fn member_names(&self) -> Vec<String> {
        self.members.keys().cloned().collect()
    }

    /// Disable (or re-enable) the replica epoch fence. Test-only knob
    /// backing the revert-verified regression: with the fence off, the
    /// model checker must rediscover the in-flight-replicate race.
    pub fn set_replica_fence(&mut self, on: bool) {
        self.replica_fence = on;
    }

    /// A schedule-independent digest of the cluster's protocol state:
    /// the directory (epoch + placements), every member's placement
    /// view, liveness and server state digest, the dead set, spill
    /// buffers, pending re-homings and registered subscriber slices.
    /// Combined with [`SimNetwork::in_flight_digest`] this identifies a
    /// model-checker state; telemetry, logs and timing are excluded.
    ///
    /// [`SimNetwork::in_flight_digest`]: bistro_transport::SimNetwork::in_flight_digest
    pub fn state_digest(&self) -> u64 {
        use bistro_base::fnv1a64;
        use std::fmt::Write as _;
        let mut acc = String::new();
        let _ = writeln!(acc, "epoch={}", self.directory.epoch);
        for (g, e) in &self.directory.homes {
            let _ = writeln!(
                acc,
                "dir\0{g}\0{}\0{}\0{}",
                e.home,
                e.standbys.join(","),
                e.epoch
            );
        }
        let mut server_digests = Vec::new();
        for (name, m) in &self.members {
            let _ = writeln!(acc, "member\0{name}\0{}", m.server.is_some() as u8);
            for (g, (h, ep)) in &m.view {
                let _ = writeln!(acc, "view\0{name}\0{g}\0{h}\0{ep}");
            }
            if let Some(s) = &m.server {
                server_digests.push(s.state_digest());
            }
        }
        for name in &self.dead {
            let _ = writeln!(acc, "dead\0{name}");
        }
        for (g, s) in &self.failover_source {
            let _ = writeln!(acc, "failsrc\0{g}\0{s}");
        }
        for (g, files) in &self.spill {
            for (name, _) in files {
                let _ = writeln!(acc, "spill\0{g}\0{name}");
            }
        }
        for ((g, sub), r) in &self.rehomes {
            let _ = writeln!(acc, "rehome\0{g}\0{sub}\0{}", r.names.join(","));
        }
        for (g, sub) in self.defs.keys() {
            let _ = writeln!(acc, "def\0{g}\0{sub}");
        }
        let mut bytes = acc.into_bytes();
        for d in server_digests {
            bytes.extend_from_slice(&d.to_le_bytes());
        }
        fnv1a64(&bytes)
    }

    /// Serve one backfill page for `(group, subscriber)` from the
    /// failed home's durable receipt store.
    fn serve_backfill(
        &mut self,
        group: &str,
        subscriber: &str,
        from_seq: u64,
        reply_to: &str,
        now: TimePoint,
    ) -> Result<(), ClusterError> {
        let page = match self.failover_source.get(group) {
            None => ClusterMsg::BackfillPage {
                group: group.to_string(),
                subscriber: subscriber.to_string(),
                delivered: Vec::new(),
                next_seq: from_seq,
                done: true,
            },
            Some(source) => {
                let source = source.clone();
                if !self.dead_stores.contains_key(&source) {
                    let store = self
                        .members
                        .get(&source)
                        .ok_or_else(|| ClusterError::UnknownServer(source.clone()))?
                        .store
                        .clone();
                    self.dead_stores
                        .insert(source.clone(), ReceiptStore::open(store, "receipts")?);
                }
                let db = &self.dead_stores[&source];
                let marks: Vec<_> = db
                    .deliveries_since(from_seq)
                    .into_iter()
                    .filter(|m| m.subscriber == subscriber)
                    .collect();
                // cut at the page size, but finish any run of equal
                // seqs (snapshot-recovered receipts all carry seq 0)
                let mut cut = marks.len().min(BACKFILL_PAGE);
                while cut > 0 && cut < marks.len() && marks[cut].seq == marks[cut - 1].seq {
                    cut += 1;
                }
                let done = cut == marks.len();
                let next_seq = if done {
                    db.delivery_cursor()
                } else {
                    marks[cut - 1].seq + 1
                };
                ClusterMsg::BackfillPage {
                    group: group.to_string(),
                    subscriber: subscriber.to_string(),
                    delivered: marks[..cut].iter().map(|m| m.file_name.clone()).collect(),
                    next_seq,
                    done,
                }
            }
        };
        self.metrics.backfill_pages.inc();
        self.net
            .send(now, DIRECTORY_ENDPOINT, reply_to, Message::Cluster(page));
        Ok(())
    }

    /// Declare `name` dead and fail over every failover-policy group it
    /// homes to that group's first live standby.
    fn fail_over(&mut self, name: &str, now: TimePoint) -> Result<(), ClusterError> {
        self.dead.insert(name.to_string());
        for group in self.directory.groups_homed_on(name) {
            let eligible = self
                .config
                .feeds
                .iter()
                .any(|f| group_of(&f.name) == group && f.policy == FeedPolicy::Failover);
            if !eligible {
                continue; // spill/discard groups wait for a restart
            }
            let entry = &self.directory.homes[&group];
            let new_home = entry.standbys.iter().find(|s| {
                s.as_str() != name
                    && !self.dead.contains(*s)
                    && self.members.get(*s).is_some_and(|m| m.server.is_some())
            });
            let Some(new_home) = new_home.cloned() else {
                self.metrics.stranded.inc();
                continue;
            };
            self.directory.epoch += 1;
            let epoch = self.directory.epoch;
            let entry = self.directory.homes.get_mut(&group).expect("just read");
            entry.home = new_home.clone();
            entry.epoch = epoch;
            self.failover_source.insert(group.clone(), name.to_string());
            self.metrics.failovers.inc();
            for (member_name, member) in &self.members {
                if member.server.is_some() {
                    self.net.send(
                        now,
                        DIRECTORY_ENDPOINT,
                        &control_endpoint(member_name),
                        Message::Cluster(ClusterMsg::DirAssign {
                            group: group.clone(),
                            home: new_home.clone(),
                            epoch,
                        }),
                    );
                }
            }
        }
        Ok(())
    }

    /// Apply one cluster-control message at member `name`'s control
    /// endpoint — the per-message body of [`Cluster::pump`], exposed so
    /// a model checker can deliver control messages one at a time in any
    /// order. `name` must be a member.
    pub fn handle_member_msg(
        &mut self,
        name: &str,
        msg: ClusterMsg,
        now: TimePoint,
    ) -> Result<(), ClusterError> {
        if !self.members.contains_key(name) {
            return Err(ClusterError::UnknownServer(name.to_string()));
        }
        match msg {
            ClusterMsg::Replicate {
                group,
                name: file,
                payload,
                epoch,
            } => {
                let member = self.members.get_mut(name).expect("checked above");
                // Epoch fence: a replica stamped with an epoch older than
                // this member's view of the group was sent by a deposed
                // home. Applying it here after backfill marking ran would
                // deposit the file *fresh* at the promoted standby and
                // re-deliver it to the re-homed subscriber — the
                // in-flight-replicate race bistro-mc finds when the fence
                // is disabled (DESIGN.md §11).
                let view_epoch = member.view.get(&group).map(|(_, e)| *e).unwrap_or(0);
                if self.replica_fence && epoch < view_epoch {
                    self.metrics.replica_rejected.inc();
                    return Ok(());
                }
                match member.server.as_mut() {
                    Some(server) => {
                        server.deposit(&file, &payload)?;
                        self.metrics.replica_applied.inc();
                    }
                    None => self.metrics.replica_dropped.inc(),
                }
            }
            ClusterMsg::DirHome { group, home, epoch }
            | ClusterMsg::DirAssign { group, home, epoch } => {
                let is_assign = {
                    let member = self.members.get_mut(name).expect("checked above");
                    let seen = member.view.get(&group).map(|(_, e)| *e).unwrap_or(0);
                    if epoch <= seen {
                        // stale: epoch fencing. Counted so a test (or an
                        // operator) can see reordered assignments being
                        // rejected rather than silently swallowed.
                        self.metrics.stale_assigns.inc();
                        return Ok(());
                    }
                    member.view.insert(group.clone(), (home.clone(), epoch));
                    home == *name && member.server.is_some()
                };
                if is_assign {
                    // this member is the group's new home: pull backfill
                    // for each registered subscriber of the group, then
                    // absorb any deposits spilled while the group was
                    // homeless
                    let subs: Vec<String> = self
                        .defs
                        .keys()
                        .filter(|(g, _)| *g == group)
                        .map(|(_, s)| s.clone())
                        .collect();
                    for sub in subs {
                        self.rehomes
                            .insert((group.clone(), sub.clone()), Rehome::default());
                        self.net.send(
                            now,
                            &control_endpoint(name),
                            DIRECTORY_ENDPOINT,
                            Message::Cluster(ClusterMsg::BackfillRequest {
                                group: group.clone(),
                                subscriber: sub,
                                from_seq: 0,
                            }),
                        );
                    }
                    if let Some(files) = self.spill.remove(&group) {
                        let server = self
                            .members
                            .get_mut(name)
                            .and_then(|m| m.server.as_mut())
                            .expect("checked alive above");
                        for (f, p) in files {
                            server.deposit(&f, &p)?;
                            self.metrics.spill_replayed.inc();
                        }
                    }
                }
            }
            ClusterMsg::BackfillPage {
                group,
                subscriber,
                delivered,
                next_seq,
                done,
            } => {
                let key = (group.clone(), subscriber.clone());
                self.rehomes
                    .entry(key.clone())
                    .or_default()
                    .names
                    .extend(delivered);
                if !done {
                    self.net.send(
                        now,
                        &control_endpoint(name),
                        DIRECTORY_ENDPOINT,
                        Message::Cluster(ClusterMsg::BackfillRequest {
                            group,
                            subscriber,
                            from_seq: next_seq,
                        }),
                    );
                    return Ok(());
                }
                let rehome = self.rehomes.remove(&key).unwrap_or_default();
                let def = self.defs.get(&key).cloned();
                let member = self.members.get_mut(name).expect("pumping own member");
                let Some(server) = member.server.as_mut() else {
                    return Ok(()); // died mid-rehome: next failover retries
                };
                // Mark what the failed home already delivered, by name
                // (replicas the new home never received are skipped —
                // they were delivered, so nothing is owed), THEN attach:
                // the attach-time backfill delivers exactly the rest.
                for file_name in &rehome.names {
                    if let Some(rec) = server.receipts().file_by_name(file_name) {
                        server
                            .receipts()
                            .record_delivery(rec.id, &subscriber, now)?;
                        self.metrics.backfill_marked.inc();
                    }
                }
                if let Some(def) = def {
                    if server
                        .config()
                        .subscribers
                        .iter()
                        .any(|s| s.name == subscriber)
                    {
                        // already attached here for another group —
                        // per-group defs can't merge; deliver what the
                        // existing attachment now sees
                        self.metrics.rehome_conflicts.inc();
                        server.deliver_pending_for(&subscriber)?;
                    } else {
                        let n = server.add_subscriber(def)?;
                        self.metrics.backfill_delivered.add(n as u64);
                        self.metrics.rehomed.inc();
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::{Clock, SimClock};
    use bistro_config::parse_config;
    use bistro_transport::LinkSpec;
    use bistro_vfs::MemFs;

    const START: TimePoint = TimePoint::from_secs(1_285_372_800);

    const CONFIG: &str = r#"
        server { retention 7d; }

        feed SNMP/CPU {
            pattern "CPU_%Y%m%d%H%M.csv";
            policy failover;
        }

        feed SNMP/MEM {
            pattern "MEM_%Y%m%d%H%M.csv";
            policy failover;
        }

        feed SYSLOG/RAW {
            pattern "syslog_%Y%m%d.log";
            policy spill;
        }

        feed NETFLOW/V5 {
            pattern "nf5_%Y%m%d%H.dat";
            policy discard;
        }
    "#;

    fn harness(names: &[&str]) -> (Arc<SimClock>, Arc<SimNetwork>, Cluster) {
        let clock = SimClock::starting_at(START);
        let net = Arc::new(SimNetwork::new(LinkSpec {
            bandwidth: 10_000_000,
            latency: TimeSpan::from_millis(5),
        }));
        let cfg = parse_config(CONFIG).unwrap();
        let mut cluster = Cluster::new(
            cfg.clone(),
            net.clone(),
            TimeSpan::from_secs(1),
            TimeSpan::from_secs(5),
        );
        for name in names {
            let server = Server::new(
                name,
                cfg.clone(),
                clock.clone(),
                MemFs::shared(clock.clone()),
            )
            .unwrap()
            .with_network(net.clone());
            cluster.add_server(server).unwrap();
        }
        (clock, net, cluster)
    }

    fn sub(name: &str, targets: &[&str]) -> SubscriberDef {
        SubscriberDef {
            name: name.to_string(),
            endpoint: format!("{name}:7070"),
            subscriptions: targets.iter().map(|s| s.to_string()).collect(),
            delivery: bistro_config::DeliveryMode::Push,
            deadline: TimeSpan::from_secs(60),
            batch: bistro_config::BatchSpec::default(),
            trigger: None,
            dest: None,
        }
    }

    /// Unique (file, subscriber) deliveries recorded at `server` for
    /// `sub` — counted through the backfill cursor, which dedupes.
    fn delivered_count(server: &Server, sub: &str) -> usize {
        server
            .receipts()
            .deliveries_since(0)
            .iter()
            .filter(|m| m.subscriber == sub)
            .count()
    }

    /// Advance the clock one step and run a full control round.
    fn step(clock: &Arc<SimClock>, cluster: &mut Cluster, by: TimeSpan) -> Vec<AlarmFiring> {
        clock.advance(by);
        let now = clock.now();
        let fired = cluster.tick(now).unwrap();
        cluster.pump(now).unwrap();
        fired
    }

    #[test]
    fn group_of_uses_top_level_prefix() {
        assert_eq!(group_of("SNMP/CPU"), "SNMP");
        assert_eq!(group_of("SNMP/CPU/CORE"), "SNMP");
        assert_eq!(group_of("FLAT"), "FLAT");
    }

    #[test]
    fn directory_lookup_over_the_wire_updates_member_view() {
        let (clock, _net, mut cluster) = harness(&["s1", "s2"]);
        cluster.assign("SNMP", "s1", &["s2"]).unwrap();
        // s2 forgets and asks again (simulate a fresh view)
        cluster.send_lookup("s2", "SNMP", clock.now());
        // lookup + reply need two latency hops
        for _ in 0..3 {
            step(&clock, &mut cluster, TimeSpan::from_millis(10));
        }
        let (home, epoch) = cluster.view_of("s2", "SNMP").unwrap();
        assert_eq!(home, "s1");
        assert_eq!(epoch, cluster.directory().epoch());
    }

    #[test]
    fn deposit_routes_to_home_and_replicates_to_standby() {
        let (clock, _net, mut cluster) = harness(&["s1", "s2"]);
        cluster.assign("SNMP", "s1", &["s2"]).unwrap();
        cluster
            .route_deposit("CPU_201009010000.csv", b"cpu-data", clock.now())
            .unwrap();
        // replica needs a hop to arrive
        step(&clock, &mut cluster, TimeSpan::from_millis(10));
        assert!(cluster
            .server("s1")
            .unwrap()
            .receipts()
            .file_by_name("CPU_201009010000.csv")
            .is_some());
        assert!(cluster
            .server("s2")
            .unwrap()
            .receipts()
            .file_by_name("CPU_201009010000.csv")
            .is_some());
        let reg = cluster.telemetry();
        assert_eq!(reg.counter_value("cluster.replicated"), Some(1));
        assert_eq!(reg.counter_value("cluster.replica_applied"), Some(1));
    }

    #[test]
    fn discard_and_spill_policies_govern_deposits_to_a_dead_home() {
        let (clock, _net, mut cluster) = harness(&["s1", "s2"]);
        cluster.assign("SYSLOG", "s1", &[]).unwrap();
        cluster.assign("NETFLOW", "s1", &[]).unwrap();
        cluster.assign("SNMP", "s2", &[]).unwrap();
        cluster.kill("s1").unwrap();
        let now = clock.now();
        cluster
            .route_deposit("syslog_20100901.log", b"lines", now)
            .unwrap();
        cluster
            .route_deposit("nf5_2010090100.dat", b"flows", now)
            .unwrap();
        let reg = cluster.telemetry().clone();
        assert_eq!(reg.counter_value("cluster.spilled"), Some(1));
        assert_eq!(reg.counter_value("cluster.discarded"), Some(1));

        // restart over the same durable store: spill replays
        let store = cluster.store_of("s1").unwrap();
        let cfg = parse_config(CONFIG).unwrap();
        let server = Server::new("s1", cfg, clock.clone(), store).unwrap();
        cluster.restart(server, clock.now()).unwrap();
        assert_eq!(reg.counter_value("cluster.spill_replayed"), Some(1));
        assert!(cluster
            .server("s1")
            .unwrap()
            .receipts()
            .file_by_name("syslog_20100901.log")
            .is_some());
        // the discarded netflow file is gone for good
        assert!(cluster
            .server("s1")
            .unwrap()
            .receipts()
            .file_by_name("nf5_2010090100.dat")
            .is_none());
    }

    #[test]
    fn heartbeat_silence_promotes_standby_and_rehomes_subscriber() {
        let (clock, _net, mut cluster) = harness(&["s1", "s2"]);
        cluster.assign("SNMP", "s1", &["s2"]).unwrap();
        cluster.register_subscriber(&sub("wh", &["SNMP"])).unwrap();

        // two deposits delivered by the home, replicated to the standby
        cluster
            .route_deposit("CPU_201009010000.csv", b"a", clock.now())
            .unwrap();
        cluster
            .route_deposit("MEM_201009010000.csv", b"b", clock.now())
            .unwrap();
        for _ in 0..3 {
            step(&clock, &mut cluster, TimeSpan::from_secs(1));
        }
        assert_eq!(delivered_count(cluster.server("s1").unwrap(), "wh"), 2);

        // kill the home; heartbeat silence crosses the failure window
        cluster.kill("s1").unwrap();
        let mut saw_failover_alarm = false;
        for _ in 0..12 {
            let fired = step(&clock, &mut cluster, TimeSpan::from_secs(1));
            saw_failover_alarm |= fired.iter().any(|a| a.rule == "cluster-failover");
        }
        assert!(saw_failover_alarm, "failover alarm should fire");
        assert_eq!(cluster.directory().home_of("SNMP").unwrap().home, "s2");

        // the subscriber was re-homed and owes nothing: both files were
        // already delivered by s1 and the backfill marked them
        let reg = cluster.telemetry();
        assert_eq!(reg.counter_value("cluster.failovers"), Some(1));
        assert_eq!(reg.counter_value("cluster.rehomed_subscribers"), Some(1));
        assert_eq!(reg.counter_value("cluster.backfill_marked"), Some(2));
        assert_eq!(reg.counter_value("cluster.backfill_delivered"), Some(0));

        // a post-failover deposit flows to the new home and is delivered
        cluster
            .route_deposit("CPU_201009010100.csv", b"c", clock.now())
            .unwrap();
        // 2 backfill-marked replicas + 1 fresh delivery
        assert_eq!(delivered_count(cluster.server("s2").unwrap(), "wh"), 3);
    }

    #[test]
    fn rehomed_subscriber_lands_in_new_home_delivery_index() {
        // re-homing rides Server::add_subscriber, so the promoted
        // standby's inverted delivery index must pick the subscriber up:
        // acks from its endpoint resolve at the new home, the indexed
        // deposit match equals the brute-force scan, and the dead home
        // no longer owns the endpoint's delivery path
        let (clock, _net, mut cluster) = harness(&["s1", "s2"]);
        cluster.assign("SNMP", "s1", &["s2"]).unwrap();
        cluster.register_subscriber(&sub("wh", &["SNMP"])).unwrap();
        cluster
            .route_deposit("CPU_201009010000.csv", b"a", clock.now())
            .unwrap();
        for _ in 0..3 {
            step(&clock, &mut cluster, TimeSpan::from_secs(1));
        }
        // before failover: only the home resolves the endpoint
        assert_eq!(
            cluster
                .server("s1")
                .unwrap()
                .resolve_endpoint("wh:7070")
                .as_deref(),
            Some("wh")
        );
        assert_eq!(
            cluster.server("s2").unwrap().resolve_endpoint("wh:7070"),
            None
        );

        cluster.kill("s1").unwrap();
        for _ in 0..12 {
            step(&clock, &mut cluster, TimeSpan::from_secs(1));
        }
        assert_eq!(cluster.directory().home_of("SNMP").unwrap().home, "s2");
        let s2 = cluster.server("s2").unwrap();
        assert_eq!(s2.resolve_endpoint("wh:7070").as_deref(), Some("wh"));
        let feeds = vec!["SNMP/CPU".to_string(), "SNMP/MEM".to_string()];
        assert_eq!(s2.match_via_index(&feeds), s2.match_via_scan(&feeds));
        let (matched, _) = s2.match_via_index(&feeds);
        assert_eq!(matched, vec!["wh".to_string()]);

        // and a post-failover deposit actually uses that index entry
        cluster
            .route_deposit("CPU_201009010100.csv", b"c", clock.now())
            .unwrap();
        assert!(delivered_count(cluster.server("s2").unwrap(), "wh") >= 1);
    }

    #[test]
    fn stale_dir_assign_is_rejected_and_counted() {
        let (clock, _net, mut cluster) = harness(&["s1", "s2"]);
        cluster.assign("SNMP", "s1", &["s2"]).unwrap(); // epoch 1
        cluster.assign("SNMP", "s2", &["s1"]).unwrap(); // epoch 2
        let now = clock.now();

        // a DirAssign from before the reassignment arrives late
        cluster
            .handle_member_msg(
                "s1",
                ClusterMsg::DirAssign {
                    group: "SNMP".to_string(),
                    home: "s1".to_string(),
                    epoch: 1,
                },
                now,
            )
            .unwrap();
        // the member's view keeps the newer assignment…
        assert_eq!(
            cluster.view_of("s1", "SNMP").unwrap(),
            ("s2".to_string(), 2)
        );
        // …and the rejection is visible in telemetry
        assert_eq!(
            cluster.telemetry().counter_value("cluster.stale_assigns"),
            Some(1)
        );
        // an equal-epoch redelivery (a duplicated frame) is also fenced
        cluster
            .handle_member_msg(
                "s1",
                ClusterMsg::DirAssign {
                    group: "SNMP".to_string(),
                    home: "s2".to_string(),
                    epoch: 2,
                },
                now,
            )
            .unwrap();
        assert_eq!(
            cluster.telemetry().counter_value("cluster.stale_assigns"),
            Some(2)
        );
    }

    #[test]
    fn stale_replica_is_fenced_by_epoch() {
        let (clock, _net, mut cluster) = harness(&["s1", "s2"]);
        cluster.assign("SNMP", "s1", &["s2"]).unwrap(); // epoch 1
        let now = clock.now();

        // s2 learns of a failover (its view moves to epoch 2)…
        cluster
            .handle_member_msg(
                "s2",
                ClusterMsg::DirAssign {
                    group: "SNMP".to_string(),
                    home: "s2".to_string(),
                    epoch: 2,
                },
                now,
            )
            .unwrap();
        // …then a replica stamped by the deposed home limps in
        cluster
            .handle_member_msg(
                "s2",
                ClusterMsg::Replicate {
                    group: "SNMP".to_string(),
                    name: "CPU_201009010000.csv".to_string(),
                    payload: b"late".to_vec(),
                    epoch: 1,
                },
                now,
            )
            .unwrap();
        assert!(
            cluster
                .server("s2")
                .unwrap()
                .receipts()
                .file_by_name("CPU_201009010000.csv")
                .is_none(),
            "stale replica must not be deposited"
        );
        let reg = cluster.telemetry().clone();
        assert_eq!(reg.counter_value("cluster.replica_rejected"), Some(1));

        // with the fence disabled the same replica is applied — the
        // knob the model checker's revert-verified regression uses
        cluster.set_replica_fence(false);
        cluster
            .handle_member_msg(
                "s2",
                ClusterMsg::Replicate {
                    group: "SNMP".to_string(),
                    name: "CPU_201009010000.csv".to_string(),
                    payload: b"late".to_vec(),
                    epoch: 1,
                },
                now,
            )
            .unwrap();
        assert!(cluster
            .server("s2")
            .unwrap()
            .receipts()
            .file_by_name("CPU_201009010000.csv")
            .is_some());
    }

    #[test]
    fn declare_failed_promotes_without_waiting_for_silence() {
        let (clock, net, mut cluster) = harness(&["s1", "s2"]);
        cluster.assign("SNMP", "s1", &["s2"]).unwrap();
        cluster.kill("s1").unwrap();
        let now = clock.now();
        assert!(cluster.declare_failed("s1", now).unwrap());
        assert!(cluster.is_dead("s1"));
        // idempotent: a second declaration is a no-op
        assert!(!cluster.declare_failed("s1", now).unwrap());
        assert_eq!(cluster.directory().home_of("SNMP").unwrap().home, "s2");
        assert!(cluster.declare_failed("nobody", now).is_err());
        // the DirAssign fan-out is in flight, addressable by the checker
        let pending = net.pending_messages();
        assert!(pending.iter().any(|p| p.endpoint == "s2.cluster"));
    }
}
