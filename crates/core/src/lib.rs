//! # bistro-core
//!
//! The Bistro server (paper §3, Figure 2): the component that ties every
//! substrate together.
//!
//! ```text
//!  landing dirs ──► classifier ──► normalizer ──► staging dirs
//!                       │                             │
//!                  feed analyzer                delivery subsystem ──► subscribers
//!                       │                             │        └───► triggers
//!                  suggestions                  delivery receipts
//!                                                     │
//!                                                 archiver
//! ```
//!
//! * [`classifier`] — compiles the configuration's feed patterns and maps
//!   each incoming filename to its feeds (with typed captures).
//! * [`normalizer`] — renders staging paths from capture semantics and
//!   applies the feed's compression option.
//! * [`parallel`] — the pure classify + normalize "prepare" stage that
//!   [`server::Server::deposit_batch`] fans out across a
//!   `bistro_base::Pool` of workers (side effects stay sequential).
//! * [`server::Server`] — landing-zone ingest (notification-driven, §4.1),
//!   reliable push/notify delivery backed by the receipt store (§4.2),
//!   batching and trigger invocation, retention expiration with
//!   archiving, feed progress monitoring, and continuous analyzer feeds
//!   (§5).
//! * [`baselines`] — the §2.2 strawmen, implemented over the same VFS so
//!   their metadata costs are directly comparable: a polling pull
//!   subscriber and an rsync/cron-style stateless tree synchronizer.
//! * `index` (crate-private) — the inverted feed→subscriber /
//!   feed→group-plan / endpoint→subscriber delivery index that keeps
//!   [`server::Server::ingest_prepared`]'s per-deposit match
//!   `O(matched)` instead of `O(subscribers)` (DESIGN.md §12.5).
//! * [`relay`] — Bistro-as-subscriber-of-Bistro: the distributed feed
//!   delivery network of §3.
//! * [`cluster`] — multi-server Bistro: feed groups partitioned across
//!   servers by a directory service, with per-feed fault-tolerance
//!   policy (discard / spill / failover), heartbeat failure detection,
//!   and subscriber re-homing with exactly-once backfill.
//! * [`log`] — the logging subsystem: leveled event ring with alarms.

pub mod baselines;
pub mod classifier;
pub mod cluster;
mod index;
pub mod log;
pub mod normalizer;
pub mod parallel;
pub mod relay;
pub mod server;

pub use classifier::{Classification, Classifier};
pub use cluster::{Cluster, ClusterError, Directory, HomeEntry};
pub use log::{EventLog, LogEvent, LogLevel};
pub use server::{DeliveryStats, Server, ServerError, DEFAULT_COMMIT_GROUP};
