//! The logging subsystem (paper §3.2).
//!
//! "An important feature of Bistro is to perform extensive logging to
//! track the status of all the feeds … and alarm if it is unable to
//! correct errors." A bounded in-memory event ring with levels; alarms
//! (the highest level) are additionally retained in full so none is lost
//! to ring eviction.

use bistro_base::sync::Mutex;
use bistro_base::TimePoint;
use std::collections::VecDeque;
use std::fmt;

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Routine progress.
    Info,
    /// Suspicious but self-corrected.
    Warn,
    /// Requires operator attention.
    Alarm,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogLevel::Info => write!(f, "INFO"),
            LogLevel::Warn => write!(f, "WARN"),
            LogLevel::Alarm => write!(f, "ALARM"),
        }
    }
}

/// One logged event.
#[derive(Clone, Debug)]
pub struct LogEvent {
    /// When it happened.
    pub at: TimePoint,
    /// Severity.
    pub level: LogLevel,
    /// Originating component (`classifier`, `delivery`, …).
    pub component: &'static str,
    /// Message.
    pub message: String,
}

/// Bounded event log with unbounded alarm retention.
pub struct EventLog {
    inner: Mutex<LogInner>,
}

struct LogInner {
    ring: VecDeque<LogEvent>,
    capacity: usize,
    alarms: Vec<LogEvent>,
    counts: [u64; 3],
}

impl EventLog {
    /// A log retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            inner: Mutex::new(LogInner {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                alarms: Vec::new(),
                counts: [0; 3],
            }),
        }
    }

    /// Record an event.
    pub fn log(&self, at: TimePoint, level: LogLevel, component: &'static str, message: String) {
        let mut inner = self.inner.lock();
        inner.counts[level as usize] += 1;
        let ev = LogEvent {
            at,
            level,
            component,
            message,
        };
        if level == LogLevel::Alarm {
            inner.alarms.push(ev.clone());
        }
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(ev);
    }

    /// The most recent events (up to the ring capacity).
    pub fn recent(&self) -> Vec<LogEvent> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Every alarm ever raised.
    pub fn alarms(&self) -> Vec<LogEvent> {
        self.inner.lock().alarms.clone()
    }

    /// Count of events at a level.
    pub fn count(&self, level: LogLevel) -> u64 {
        self.inner.lock().counts[level as usize]
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_but_alarms_persist() {
        let log = EventLog::new(3);
        let t = TimePoint::from_secs(1);
        log.log(t, LogLevel::Alarm, "delivery", "subscriber down".into());
        for i in 0..5 {
            log.log(t, LogLevel::Info, "classifier", format!("file {i}"));
        }
        assert_eq!(log.recent().len(), 3);
        assert_eq!(log.alarms().len(), 1);
        assert_eq!(log.count(LogLevel::Info), 5);
        assert_eq!(log.count(LogLevel::Alarm), 1);
    }

    #[test]
    fn levels_order() {
        assert!(LogLevel::Alarm > LogLevel::Warn);
        assert!(LogLevel::Warn > LogLevel::Info);
        assert_eq!(LogLevel::Alarm.to_string(), "ALARM");
    }
}
