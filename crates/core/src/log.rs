//! The logging subsystem (paper §3.2).
//!
//! "An important feature of Bistro is to perform extensive logging to
//! track the status of all the feeds … and alarm if it is unable to
//! correct errors." A bounded in-memory event ring with levels; alarms
//! (the highest level) are additionally retained in full so none is lost
//! to ring eviction.

use bistro_base::sync::Mutex;
use bistro_base::TimePoint;
use std::collections::VecDeque;
use std::fmt;

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Routine progress.
    Info,
    /// Suspicious but self-corrected.
    Warn,
    /// Requires operator attention.
    Alarm,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogLevel::Info => write!(f, "INFO"),
            LogLevel::Warn => write!(f, "WARN"),
            LogLevel::Alarm => write!(f, "ALARM"),
        }
    }
}

/// One logged event.
#[derive(Clone, Debug)]
pub struct LogEvent {
    /// When it happened.
    pub at: TimePoint,
    /// Severity.
    pub level: LogLevel,
    /// Originating component (`classifier`, `delivery`, …).
    pub component: &'static str,
    /// Message.
    pub message: String,
}

/// Bounded event log with unbounded alarm retention.
pub struct EventLog {
    inner: Mutex<LogInner>,
}

struct LogInner {
    ring: VecDeque<LogEvent>,
    capacity: usize,
    alarms: Vec<LogEvent>,
    // Monotone totals-seen per level, indexed by `LogLevel as usize`.
    // These count every event ever logged — NOT the current ring
    // contents — so `count()` keeps growing after eviction starts.
    counts: [u64; 3],
}

impl EventLog {
    /// A log retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            inner: Mutex::new(LogInner {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                alarms: Vec::new(),
                counts: [0; 3],
            }),
        }
    }

    /// Record an event.
    pub fn log(&self, at: TimePoint, level: LogLevel, component: &'static str, message: String) {
        let mut inner = self.inner.lock();
        inner.counts[level as usize] += 1;
        let ev = LogEvent {
            at,
            level,
            component,
            message,
        };
        if level == LogLevel::Alarm {
            inner.alarms.push(ev.clone());
        }
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(ev);
    }

    /// The most recent events (up to the ring capacity).
    pub fn recent(&self) -> Vec<LogEvent> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Every alarm ever raised.
    pub fn alarms(&self) -> Vec<LogEvent> {
        self.inner.lock().alarms.clone()
    }

    /// Count of events ever logged at a level — a monotone total, not
    /// the number currently held in the ring (evicted events stay
    /// counted).
    pub fn count(&self, level: LogLevel) -> u64 {
        self.inner.lock().counts[level as usize]
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_but_alarms_persist() {
        let log = EventLog::new(3);
        let t = TimePoint::from_secs(1);
        log.log(t, LogLevel::Alarm, "delivery", "subscriber down".into());
        for i in 0..5 {
            log.log(t, LogLevel::Info, "classifier", format!("file {i}"));
        }
        assert_eq!(log.recent().len(), 3);
        assert_eq!(log.alarms().len(), 1);
        assert_eq!(log.count(LogLevel::Info), 5);
        assert_eq!(log.count(LogLevel::Alarm), 1);
    }

    #[test]
    fn counts_are_totals_seen_not_ring_contents() {
        let log = EventLog::new(2);
        let t = TimePoint::from_secs(1);
        for i in 0..10 {
            log.log(t, LogLevel::Info, "c", format!("e{i}"));
        }
        // the ring holds only the last 2, the totals keep all 10
        assert_eq!(log.recent().len(), 2);
        assert_eq!(log.recent()[0].message, "e8");
        assert_eq!(log.recent()[1].message, "e9");
        assert_eq!(log.count(LogLevel::Info), 10);
        assert_eq!(log.count(LogLevel::Warn), 0);
    }

    #[test]
    fn alarm_retention_is_unbounded_at_and_over_capacity() {
        let cap = 4;
        let log = EventLog::new(cap);
        let t = TimePoint::from_secs(2);
        // log exactly capacity alarms, then well past it
        for i in 0..cap {
            log.log(t, LogLevel::Alarm, "d", format!("a{i}"));
        }
        assert_eq!(log.alarms().len(), cap);
        for i in cap..(3 * cap) {
            log.log(t, LogLevel::Alarm, "d", format!("a{i}"));
        }
        // the ring evicted most of them; the alarm archive kept every one
        assert_eq!(log.recent().len(), cap);
        assert_eq!(log.alarms().len(), 3 * cap);
        assert_eq!(log.count(LogLevel::Alarm), 3 * cap as u64);
        // order preserved, none lost
        for (i, ev) in log.alarms().iter().enumerate() {
            assert_eq!(ev.message, format!("a{i}"));
        }
    }

    #[test]
    fn levels_order() {
        assert!(LogLevel::Alarm > LogLevel::Warn);
        assert!(LogLevel::Warn > LogLevel::Info);
        assert_eq!(LogLevel::Alarm.to_string(), "ALARM");
    }
}
