//! Bistro-as-subscriber: distributed feed delivery networks (paper §3).
//!
//! "A Bistro server can act as subscriber to another Bistro server
//! allowing the creation of distributed feed delivery network. By
//! organizing Bistro servers into a network of cooperating feed managers
//! we can further increase the scalability of the system and minimize
//! the impact on low-bandwidth network pipes."
//!
//! [`Relay`] moves one delivery hop: it drains the upstream server's
//! outbound messages for the downstream server's endpoint (as delivered
//! by the shared [`SimNetwork`]), deposits the referenced payloads into
//! the downstream server's landing zone, and lets the downstream server
//! ingest them with its own classification/normalization/delivery — the
//! full pipeline repeats per hop. Three protocol obligations live here:
//!
//! * only relay-relevant messages are drained ([`SimNetwork::recv_where`]);
//!   unrelated traffic sharing the endpoint stays queued for its owner.
//! * reliable [`ReliableMsg::Attempt`] envelopes are acknowledged on
//!   *every* attempt, and redelivered payloads are suppressed against the
//!   downstream receipt store (durable dedup: a relay restart cannot
//!   double-deposit).
//! * group [`GroupMsg::Deliver`] fanouts are answered with a cumulative
//!   member-coverage report built from the downstream server's own
//!   delivery receipts — the upstream tracker retries until every member
//!   of the delivery tree is durably covered (cascaded backfill).

use crate::server::{Server, ServerError};
use bistro_base::TimePoint;
use bistro_transport::messages::{GroupMsg, Message, ReliableMsg, SubscriberMsg};
use bistro_transport::{Coverage, SimNetwork};
use std::collections::HashMap;

/// Counters accumulated across [`Relay::pump`] calls.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RelayStats {
    /// Payloads deposited downstream (first copies).
    pub relayed: usize,
    /// Redelivered payloads suppressed by the downstream receipt store.
    pub duplicates: usize,
    /// Reliable attempts acknowledged back upstream.
    pub acked: usize,
    /// Group coverage reports sent back upstream.
    pub group_acks: usize,
}

/// One relay hop between two servers sharing a [`SimNetwork`]. The
/// struct itself is stateless between calls — deduplication rides the
/// downstream receipt store, so it survives relay restarts — but it
/// accumulates [`RelayStats`] for observability and memoizes each
/// group's sorted member list (the coverage-report order), which is
/// pure config: re-sorting it on every ack made each group ack
/// `O(M log M)` in the member count.
#[derive(Debug, Default)]
pub struct Relay {
    stats: RelayStats,
    sorted_members: HashMap<String, Vec<String>>,
}

impl Relay {
    pub fn new() -> Relay {
        Relay::default()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &RelayStats {
        &self.stats
    }

    /// Pump deliveries from `upstream` to `downstream` through `net` as
    /// of simulated time `now`. Returns the number of *new* files
    /// deposited downstream by this call (duplicates are acknowledged
    /// but not counted).
    ///
    /// The downstream server must be registered at `upstream` as a
    /// subscriber (or group relay) whose endpoint equals
    /// `downstream.name()`.
    pub fn pump(
        &mut self,
        net: &SimNetwork,
        upstream: &Server,
        downstream: &mut Server,
        now: TimePoint,
    ) -> Result<usize, ServerError> {
        let mut relayed = 0;
        // drain only what a relay consumes; anything else addressed to
        // this endpoint (cluster heartbeats, source notifications, acks
        // owned by a co-located server) stays queued for its owner
        let batch = net.recv_where(downstream.name(), now, |d| {
            matches!(
                &d.msg,
                Message::Subscriber(
                    SubscriberMsg::FileDelivered { .. } | SubscriberMsg::FileAvailable { .. }
                ) | Message::Reliable(ReliableMsg::Attempt {
                    inner: SubscriberMsg::FileDelivered { .. }
                        | SubscriberMsg::FileAvailable { .. },
                    ..
                }) | Message::Group(GroupMsg::Deliver { .. })
            )
        });
        for delivery in batch {
            match delivery.msg {
                Message::Subscriber(inner) => {
                    if self.relay_file(&inner, upstream, downstream)? == Deposit::New {
                        relayed += 1;
                    }
                }
                Message::Reliable(ReliableMsg::Attempt { attempt, inner }) => {
                    let outcome = self.relay_file(&inner, upstream, downstream)?;
                    if outcome == Deposit::New {
                        relayed += 1;
                    }
                    // ack every attempt we could serve — including
                    // redeliveries of a payload we already hold, whose
                    // first ack may have been lost in flight. Without
                    // this the upstream tracker retries until its
                    // attempt budget exhausts and falsely alarms.
                    if outcome != Deposit::Gone {
                        if let Some(file) = file_of(&inner) {
                            net.send(
                                now,
                                downstream.name(),
                                &delivery.from,
                                Message::Reliable(ReliableMsg::Ack { file, attempt }),
                            );
                            self.stats.acked += 1;
                        }
                    }
                }
                Message::Group(GroupMsg::Deliver { group, file, .. }) => {
                    let Some(rec) = upstream.receipts().file(file) else {
                        continue; // expired upstream; retries will alarm
                    };
                    if self.deposit_once(&rec.name, upstream, &rec.staged_path, downstream)?
                        == Deposit::New
                    {
                        relayed += 1;
                    }
                    // report cumulative member coverage from our own
                    // delivery receipts; the upstream tracker keeps the
                    // fanout outstanding until the tree is complete
                    if let Some((bits, watermark)) =
                        self.member_coverage(downstream, &group, &rec.name)
                    {
                        net.send(
                            now,
                            downstream.name(),
                            &delivery.from,
                            Message::Group(GroupMsg::Ack {
                                group,
                                file, // the *upstream* id the tracker keys on
                                bits,
                                watermark,
                            }),
                        );
                        self.stats.group_acks += 1;
                    }
                }
                _ => unreachable!("recv_where predicate admits only relay traffic"),
            }
        }
        Ok(relayed)
    }

    /// Relay one per-subscriber delivery notification: fetch the payload
    /// from the upstream staging area and deposit it downstream unless
    /// the receipt store already holds it.
    fn relay_file(
        &mut self,
        inner: &SubscriberMsg,
        upstream: &Server,
        downstream: &mut Server,
    ) -> Result<Deposit, ServerError> {
        let Some(file) = file_of(inner) else {
            return Ok(Deposit::Gone);
        };
        let Some(rec) = upstream.receipts().file(file) else {
            return Ok(Deposit::Gone); // expired upstream before relay
        };
        // the original *filename* is what downstream classifies; the
        // message's dest/staged path is upstream's layout choice for us
        self.deposit_once(&rec.name, upstream, &rec.staged_path, downstream)
    }

    /// Deposit `name` downstream exactly once: the downstream receipt
    /// store is the durable dedup index, so redelivered attempts (lost
    /// acks, retries, relay restarts) never double-ingest.
    fn deposit_once(
        &mut self,
        name: &str,
        upstream: &Server,
        staged_path: &str,
        downstream: &mut Server,
    ) -> Result<Deposit, ServerError> {
        if downstream.receipts().file_by_name(name).is_some() {
            self.stats.duplicates += 1;
            return Ok(Deposit::Duplicate);
        }
        let staged = format!("{}/{staged_path}", upstream.config().server.staging);
        let payload = upstream.store().read(&staged)?;
        downstream.deposit(name, &payload)?;
        self.stats.relayed += 1;
        Ok(Deposit::New)
    }

    /// Build the coverage bitmap for `group` from the downstream
    /// server's delivery receipts: member order is the *sorted* member
    /// list, matching the upstream fanout plan. Returns `None` when the
    /// downstream config does not define the group or has not ingested
    /// the file — no ack is sent, so the upstream retries and alarms
    /// instead of silently marking members covered.
    fn member_coverage(
        &mut self,
        downstream: &Server,
        group: &str,
        name: &str,
    ) -> Option<(Vec<u8>, u64)> {
        let def = downstream.config().group(group)?;
        let local = downstream.receipts().file_by_name(name)?;
        // group membership is fixed at config time, so the sorted order
        // is computed once per group, not once per ack
        let members = self
            .sorted_members
            .entry(group.to_string())
            .or_insert_with(|| {
                let mut m = def.members.clone();
                m.sort();
                m
            });
        let mut coverage = Coverage::new(members.len() as u32);
        for (i, member) in members.iter().enumerate() {
            if downstream.receipts().is_delivered(local.id, member) {
                coverage.set(i as u32);
            }
        }
        let watermark = u64::from(coverage.watermark());
        Some((coverage.bits().to_vec(), watermark))
    }
}

/// What [`Relay::deposit_once`] did with a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Deposit {
    /// First copy: deposited and ingested downstream.
    New,
    /// Already held downstream; suppressed.
    Duplicate,
    /// Upstream no longer has the payload (expired); nothing to do.
    Gone,
}

/// The file a delivery notification refers to.
fn file_of(msg: &SubscriberMsg) -> Option<bistro_base::FileId> {
    match msg {
        SubscriberMsg::FileDelivered { file, .. } | SubscriberMsg::FileAvailable { file, .. } => {
            Some(*file)
        }
        _ => None,
    }
}

/// Pump deliveries from `upstream` to `downstream` through `net` as of
/// simulated time `now`, with a throwaway [`Relay`]. Returns the number
/// of files relayed. Deduplication is durable (it rides the downstream
/// receipt store), so repeated calls through fresh relays stay
/// exactly-once; hold a [`Relay`] instead when you want cumulative
/// stats.
pub fn pump(
    net: &SimNetwork,
    upstream: &Server,
    downstream: &mut Server,
    now: TimePoint,
) -> Result<usize, ServerError> {
    Relay::new().pump(net, upstream, downstream, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::{Clock, SimClock, TimePoint, TimeSpan};
    use bistro_config::parse_config;
    use bistro_transport::messages::ClusterMsg;
    use bistro_transport::{LinkSpec, RetryPolicy, SimNetwork};
    use bistro_vfs::MemFs;
    use std::sync::Arc;

    const START: TimePoint = TimePoint::from_secs(1_285_372_800);

    fn hub_edge(
        clock: &Arc<SimClock>,
        net: &Arc<SimNetwork>,
        reliable: Option<RetryPolicy>,
    ) -> (Server, Server) {
        let hub_cfg = parse_config(
            r#"
            feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
            feed SNMP/CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
            subscriber edge_server {
                endpoint "edge";
                subscribe SNMP/MEMORY;
                delivery push;
            }
            "#,
        )
        .unwrap();
        let hub_store = MemFs::shared(clock.clone());
        let mut hub = Server::new("hub", hub_cfg, clock.clone(), hub_store)
            .unwrap()
            .with_network(net.clone());
        if let Some(policy) = reliable {
            hub = hub.with_reliable_delivery(policy, 7);
        }

        let edge_cfg = parse_config(
            r#"
            feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
            subscriber warehouse {
                endpoint "warehouse";
                subscribe SNMP/MEMORY;
                delivery push;
            }
            "#,
        )
        .unwrap();
        let edge_store = MemFs::shared(clock.clone());
        let edge = Server::new("edge", edge_cfg, clock.clone(), edge_store)
            .unwrap()
            .with_network(net.clone());
        (hub, edge)
    }

    #[test]
    fn two_hop_relay_network() {
        let clock = SimClock::starting_at(START);
        let net = Arc::new(SimNetwork::new(LinkSpec::default()));
        let (mut hub, mut edge) = hub_edge(&clock, &net, None);

        // sources deposit at the hub
        hub.deposit("MEMORY_poller1_20100925.gz", b"memory-data")
            .unwrap();
        hub.deposit("CPU_POLL1_201009250000.txt", b"cpu-data")
            .unwrap();

        // advance past network latency and pump the relay hop
        clock.advance(TimeSpan::from_secs(1));
        let relayed = pump(&net, &hub, &mut edge, clock.now()).unwrap();
        assert_eq!(relayed, 1, "only MEMORY is subscribed by the edge");

        // the edge re-classified and delivered to its own subscriber
        assert_eq!(edge.receipts().live_count(), 1);
        assert_eq!(edge.stats().deliveries, 1);
        clock.advance(TimeSpan::from_secs(1));
        let msgs = net.recv_ready("warehouse", clock.now());
        assert_eq!(msgs.len(), 1);
    }

    /// Regression: the pump used to drain the endpoint with
    /// `recv_ready` and discard whatever it did not understand, so any
    /// cluster traffic sharing the relay's inbox was silently eaten.
    /// With `recv_where`, unrelated messages stay queued.
    #[test]
    fn unrelated_traffic_stays_queued() {
        let clock = SimClock::starting_at(START);
        let net = Arc::new(SimNetwork::new(LinkSpec::default()));
        let (mut hub, mut edge) = hub_edge(&clock, &net, None);

        hub.deposit("MEMORY_poller1_20100925.gz", b"memory-data")
            .unwrap();
        // interleave cluster traffic addressed to the same endpoint
        net.send(
            clock.now(),
            "hub",
            "edge",
            Message::Cluster(ClusterMsg::Heartbeat {
                server: "hub".to_string(),
                epoch: 3,
            }),
        );

        clock.advance(TimeSpan::from_secs(1));
        let relayed = pump(&net, &hub, &mut edge, clock.now()).unwrap();
        assert_eq!(relayed, 1);

        // the heartbeat survived the pump for whoever owns the endpoint
        let rest = net.recv_ready("edge", clock.now());
        assert_eq!(rest.len(), 1, "cluster message was eaten by the pump");
        assert!(matches!(
            rest[0].msg,
            Message::Cluster(ClusterMsg::Heartbeat { epoch: 3, .. })
        ));
    }

    /// Regression: under reliable delivery the pump never acknowledged
    /// attempts (the upstream retried until its budget exhausted and
    /// falsely alarmed) and redelivered attempts deposited twice. Every
    /// attempt is now acked and duplicates are suppressed against the
    /// downstream receipt store.
    #[test]
    fn reliable_attempts_acked_and_deduped() {
        let clock = SimClock::starting_at(START);
        let net = Arc::new(SimNetwork::new(LinkSpec::default()));
        let policy = RetryPolicy {
            base_timeout: TimeSpan::from_secs(5),
            backoff: 2,
            max_timeout: TimeSpan::from_secs(60),
            max_attempts: 12,
            jitter: 0.0,
        };
        let (mut hub, mut edge) = hub_edge(&clock, &net, Some(policy));
        let mut relay = Relay::new();

        hub.deposit("MEMORY_poller1_20100925.gz", b"memory-data")
            .unwrap();
        assert_eq!(hub.unacked_count(), 1);

        clock.advance(TimeSpan::from_secs(1));
        assert_eq!(relay.pump(&net, &hub, &mut edge, clock.now()).unwrap(), 1);

        // redeliver before the first ack is processed (lost-ack shape)
        hub.retry_fire().unwrap();
        clock.advance(TimeSpan::from_secs(1));
        assert_eq!(
            relay.pump(&net, &hub, &mut edge, clock.now()).unwrap(),
            0,
            "redelivered attempt must not deposit twice"
        );
        assert_eq!(edge.receipts().live_count(), 1);

        // both attempts were acknowledged; the hub clears its tracker
        clock.advance(TimeSpan::from_secs(1));
        assert_eq!(hub.poll_network().unwrap(), 2);
        assert_eq!(hub.unacked_count(), 0);

        let stats = relay.stats();
        assert_eq!(stats.relayed, 1);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.acked, 2);
    }

    /// A delivery tree: the hub fans a grouped file out *once* to the
    /// relay, which serves every member from its own pipeline and
    /// reports cumulative member coverage back.
    #[test]
    fn group_fanout_through_relay() {
        let clock = SimClock::starting_at(START);
        let net = Arc::new(SimNetwork::new(LinkSpec::default()));
        // one config deployed at both tiers: the hub routes EDGE through
        // the relay endpoint; the edge server (whose name *is* the relay
        // endpoint) skips the plan and delivers to members directly
        let cfg_text = r#"
            feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
            subscriber wh1 { endpoint "wh1"; subscribe SNMP/MEMORY; }
            subscriber wh2 { endpoint "wh2"; subscribe SNMP/MEMORY; }
            group EDGE { members wh1, wh2; relay "edge"; }
        "#;
        let mut hub = Server::new(
            "hub",
            parse_config(cfg_text).unwrap(),
            clock.clone(),
            MemFs::shared(clock.clone()),
        )
        .unwrap()
        .with_network(net.clone());
        let mut edge = Server::new(
            "edge",
            parse_config(cfg_text).unwrap(),
            clock.clone(),
            MemFs::shared(clock.clone()),
        )
        .unwrap()
        .with_network(net.clone());
        let mut relay = Relay::new();

        hub.deposit("MEMORY_poller1_20100925.gz", b"memory-data")
            .unwrap();
        // grouped members are excluded from direct fanout: one Deliver
        // to the relay, nothing straight to wh1/wh2 from the hub
        assert_eq!(hub.group_outstanding(), 1);
        assert_eq!(hub.stats().deliveries, 0);

        clock.advance(TimeSpan::from_secs(1));
        assert_eq!(relay.pump(&net, &hub, &mut edge, clock.now()).unwrap(), 1);
        // the edge fanned out to both members itself
        assert_eq!(edge.stats().deliveries, 2);

        // the coverage report completes the fanout at the hub
        clock.advance(TimeSpan::from_secs(1));
        assert_eq!(hub.poll_network().unwrap(), 1);
        assert_eq!(hub.group_outstanding(), 0);
        let file = hub
            .receipts()
            .file_by_name("MEMORY_poller1_20100925.gz")
            .unwrap();
        let (bits, watermark) = hub
            .receipts()
            .group_coverage(file.id, "EDGE")
            .expect("coverage persisted as a group mark");
        assert!(Coverage::from_wire(2, &bits, watermark).complete());
        assert_eq!(relay.stats().group_acks, 1);

        // both members actually received their copies from the edge
        clock.advance(TimeSpan::from_secs(1));
        assert_eq!(net.recv_ready("wh1", clock.now()).len(), 1);
        assert_eq!(net.recv_ready("wh2", clock.now()).len(), 1);
    }
}
