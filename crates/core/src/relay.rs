//! Bistro-as-subscriber: distributed feed delivery networks (paper §3).
//!
//! "A Bistro server can act as subscriber to another Bistro server
//! allowing the creation of distributed feed delivery network. By
//! organizing Bistro servers into a network of cooperating feed managers
//! we can further increase the scalability of the system and minimize
//! the impact on low-bandwidth network pipes."
//!
//! [`pump`] moves one delivery hop: it drains the upstream server's
//! outbound messages for the downstream server's endpoint (as delivered
//! by the shared [`SimNetwork`]), deposits the referenced payloads into
//! the downstream server's landing zone, and lets the downstream server
//! ingest them with its own classification/normalization/delivery — the
//! full pipeline repeats per hop.

use crate::server::{Server, ServerError};
use bistro_base::TimePoint;
use bistro_transport::messages::{Message, SubscriberMsg};
use bistro_transport::SimNetwork;

/// Pump deliveries from `upstream` to `downstream` through `net` as of
/// simulated time `now`. Returns the number of files relayed.
///
/// The downstream server must be registered at `upstream` as a
/// subscriber whose endpoint equals `downstream.name()`.
pub fn pump(
    net: &SimNetwork,
    upstream: &Server,
    downstream: &mut Server,
    now: TimePoint,
) -> Result<usize, ServerError> {
    let mut relayed = 0;
    for delivery in net.recv_ready(downstream.name(), now) {
        match delivery.msg {
            Message::Subscriber(SubscriberMsg::FileDelivered {
                dest_path, file, ..
            })
            | Message::Subscriber(SubscriberMsg::FileAvailable {
                staged_path: dest_path,
                file,
                ..
            }) => {
                // fetch the payload from the upstream staging area
                let rec = match upstream.receipts().file(file) {
                    Some(r) => r,
                    None => continue, // expired upstream before relay
                };
                let staged = format!("{}/{}", upstream.config().server.staging, rec.staged_path);
                let payload = upstream.store().read(&staged)?;
                // the original *filename* is what downstream classifies;
                // dest_path is upstream's layout choice for us
                let _ = dest_path;
                downstream.deposit(&rec.name, &payload)?;
                relayed += 1;
            }
            _ => {}
        }
    }
    Ok(relayed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::{Clock, SimClock, TimeSpan};
    use bistro_config::parse_config;
    use bistro_transport::{LinkSpec, SimNetwork};
    use bistro_vfs::MemFs;
    use std::sync::Arc;

    #[test]
    fn two_hop_relay_network() {
        let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
        let net = Arc::new(SimNetwork::new(LinkSpec::default()));

        // hub server: receives from sources, relays MEMORY to the edge
        let hub_cfg = parse_config(
            r#"
            feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
            feed SNMP/CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt"; }
            subscriber edge_server {
                endpoint "edge";
                subscribe SNMP/MEMORY;
                delivery push;
            }
            "#,
        )
        .unwrap();
        let hub_store = MemFs::shared(clock.clone());
        let mut hub = Server::new("hub", hub_cfg, clock.clone(), hub_store)
            .unwrap()
            .with_network(net.clone());

        // edge server: delivers to the local warehouse
        let edge_cfg = parse_config(
            r#"
            feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
            subscriber warehouse {
                endpoint "warehouse";
                subscribe SNMP/MEMORY;
                delivery push;
            }
            "#,
        )
        .unwrap();
        let edge_store = MemFs::shared(clock.clone());
        let mut edge = Server::new("edge", edge_cfg, clock.clone(), edge_store)
            .unwrap()
            .with_network(net.clone());

        // sources deposit at the hub
        hub.deposit("MEMORY_poller1_20100925.gz", b"memory-data")
            .unwrap();
        hub.deposit("CPU_POLL1_201009250000.txt", b"cpu-data")
            .unwrap();

        // advance past network latency and pump the relay hop
        clock.advance(TimeSpan::from_secs(1));
        let relayed = pump(&net, &hub, &mut edge, clock.now()).unwrap();
        assert_eq!(relayed, 1, "only MEMORY is subscribed by the edge");

        // the edge re-classified and delivered to its own subscriber
        assert_eq!(edge.receipts().live_count(), 1);
        assert_eq!(edge.stats().deliveries, 1);
        clock.advance(TimeSpan::from_secs(1));
        let msgs = net.recv_ready("warehouse", clock.now());
        assert_eq!(msgs.len(), 1);
    }
}
