//! Property tests for the server's classification → normalization path.

use bistro_base::prop::{self, Runner};
use bistro_base::{prop_assert, prop_assert_eq};
use bistro_config::parse_config;
use bistro_core::{normalizer::normalize, Classifier};
use bistro_vfs::normalize as vfs_normalize;

/// Staged paths rendered from arbitrary matched filenames are always
/// valid store paths (no traversal, no absolute paths) — the
/// invariant that keeps a hostile source from escaping the staging
/// sandbox through crafted capture text.
#[test]
fn normalized_paths_stay_inside_staging() {
    Runner::new("normalized_paths_stay_inside_staging")
        .cases(128)
        .run(
            |rng| {
                (
                    rng.gen_range(1u64..10_000),
                    rng.gen_range(1990u32..2090),
                    rng.gen_range(1u32..=12),
                    rng.gen_range(1u32..=28),
                    prop::string(rng, "A-Za-z0-9.-", 0..=12),
                )
            },
            |(poller, y, m, d, extra)| {
                let cfg = parse_config(
                    r#"
                feed F/SUB {
                    pattern "MEM%s_poller%i_%Y%m%d.gz";
                    normalize "%Y/%m/%d/%1/%f";
                }
                "#,
                )
                .unwrap();
                let feed = cfg.feed("F/SUB").unwrap();
                let name = format!("MEM_{extra}_poller{poller}_{y:04}{m:02}{d:02}.gz");
                if let Some(caps) = feed.patterns[0].match_str(&name) {
                    if let Ok(n) = normalize(feed, &name, &caps, b"data") {
                        prop_assert!(
                            vfs_normalize(&n.staged_path).is_ok(),
                            "invalid staged path {:?}",
                            n.staged_path
                        );
                        prop_assert!(n.staged_path.starts_with("F/SUB/"));
                    }
                }
                Ok(())
            },
        );
}

/// Classification is deterministic and consistent with the matcher:
/// if the classifier says a file belongs to a feed, one of the feed's
/// patterns matches it, and vice versa.
#[test]
fn classifier_agrees_with_matcher() {
    Runner::new("classifier_agrees_with_matcher")
        .cases(128)
        .run(
            |rng| prop::string(rng, "A-Za-z0-9_.", 1..=40),
            |name| {
                let cfg = parse_config(
                    r#"
                feed A { pattern "A_%i.csv"; }
                feed B { pattern "B%s.log"; }
                feed C { pattern "*_%Y%m%d.gz"; }
                "#,
                )
                .unwrap();
                let classifier = Classifier::compile(&cfg);
                let got = classifier.feeds_for(name);
                for feed in &cfg.feeds {
                    let matches = feed.patterns.iter().any(|p| p.is_match(name));
                    prop_assert_eq!(
                        got.contains(&feed.name),
                        matches,
                        "feed {} vs file {}",
                        feed.name,
                        name
                    );
                }
                Ok(())
            },
        );
}
