//! Property test for the classifier's dispatch rework: the single
//! descending `range(..=name)` scan over the prefix index must agree
//! with the original one-lookup-per-prefix-length walk on arbitrary
//! names — same candidates, so byte-identical classifications.

use bistro_base::prop::{self, Runner};
use bistro_base::prop_assert_eq;
use bistro_config::parse_config;
use bistro_core::Classifier;

/// Feeds whose literal prefixes nest and collide ("KIND" vs "KIND1" vs
/// "KIND12", "AB" vs "ABC" in one feed) — the shapes where a range scan
/// can plausibly skip or double-count a dispatch group.
fn classifier() -> Classifier {
    let cfg = parse_config(
        r#"
        feed K    { pattern "KIND%i_p%i_%Y%m%d.csv"; }
        feed K1   { pattern "KIND1_p%i_%Y%m%d.csv"; }
        feed K12  { pattern "KIND12_p%i_%Y%m%d.csv"; }
        feed AB   { pattern "AB_%i.dat"; pattern "ABC_%i.dat"; }
        feed A    { pattern "A%s.log"; }
        feed WILD { pattern "*_%Y%m%d.gz"; }
        "#,
    )
    .unwrap();
    Classifier::compile(&cfg)
}

#[test]
fn range_scan_matches_length_walk_on_random_names() {
    let c = classifier();
    Runner::new("range_scan_matches_length_walk_on_random_names")
        .cases(512)
        .run(
            |rng| {
                // half structured near-misses around the real prefixes,
                // half raw noise over the prefix alphabet
                if rng.gen_range(0u32..2) == 0 {
                    let kind = rng.gen_range(0u64..130);
                    let p = rng.gen_range(0u64..10);
                    format!("KIND{kind}_p{p}_2010092{}.csv", rng.gen_range(0u64..10))
                } else {
                    prop::string(rng, "ABCKIND012_p.csvgzloat", 0..=24)
                }
            },
            |name| {
                let fast = c.classify(name);
                let slow = c.classify_length_walk(name);
                prop_assert_eq!(
                    format!("{fast:?}"),
                    format!("{slow:?}"),
                    "dispatch divergence on {:?}",
                    name
                );
                Ok(())
            },
        );
}

#[test]
fn range_scan_matches_length_walk_on_wide_config() {
    // 300 feeds with distinct-but-clustered prefixes, as in E11.
    let mut src = String::new();
    for i in 0..300 {
        src.push_str(&format!(
            "feed F{i} {{ pattern \"KIND{i}_poller%i_%Y%m%d%H%M.csv\"; }}\n"
        ));
    }
    let c = Classifier::compile(&parse_config(&src).unwrap());
    Runner::new("range_scan_matches_length_walk_on_wide_config")
        .cases(256)
        .run(
            |rng| {
                let kind = rng.gen_range(0u64..400); // past the defined range: misses too
                let p = rng.gen_range(0u64..10);
                format!("KIND{kind}_poller{p}_201009250455.csv")
            },
            |name| {
                let fast = c.classify(name);
                let slow = c.classify_length_walk(name);
                prop_assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
                Ok(())
            },
        );
}
