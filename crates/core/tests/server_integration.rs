//! End-to-end Server tests: the full pipeline of Figure 2 on simulated
//! time.

use bistro_base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro_config::parse_config;
use bistro_core::{LogLevel, Server};
use bistro_simnet::{generate, payload::payload_for, FleetConfig, SubfeedSpec};
use bistro_transport::messages::{Message, SubscriberMsg};
use bistro_transport::{LinkSpec, SimNetwork};
use bistro_vfs::{FileStore, MemFs};
use std::sync::Arc;

const START: TimePoint = TimePoint::from_secs(1_285_372_800); // 2010-09-25

fn snmp_config() -> &'static str {
    r#"
    server {
        retention 7d;
        archive on;
    }
    feed SNMP/MEMORY {
        pattern "MEMORY_poller%i_%Y%m%d.gz";
        normalize "%Y/%m/%d/%f";
    }
    feed SNMP/CPU {
        pattern "CPU_poller%i_%Y%m%d%H%M.csv";
    }
    subscriber warehouse {
        endpoint "warehouse";
        subscribe SNMP;
        delivery push;
        deadline 60s;
        batch count 2 window 5m;
        trigger remote "load %N batch=%b n=%c";
    }
    subscriber viz {
        endpoint "viz";
        subscribe SNMP/CPU;
        delivery notify;
        deadline 5s;
    }
    "#
}

fn new_server(clock: Arc<SimClock>, store: Arc<MemFs>) -> Server {
    let cfg = parse_config(snmp_config()).unwrap();
    Server::new("bistro1", cfg, clock, store).unwrap()
}

#[test]
fn ingest_classify_stage_deliver() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store.clone());

    server
        .deposit("MEMORY_poller1_20100925.gz", b"mem-data")
        .unwrap();
    server
        .deposit("CPU_poller1_201009250000.csv", b"cpu-data")
        .unwrap();
    server.deposit("garbage.bin", b"???").unwrap();

    // staging layout honors the normalize template
    assert!(store.exists("staging/SNMP/MEMORY/2010/09/25/MEMORY_poller1_20100925.gz"));
    assert!(store.exists("staging/SNMP/CPU/CPU_poller1_201009250000.csv"));
    // landing is drained; unknown parked
    assert!(!store.exists("landing/MEMORY_poller1_20100925.gz"));
    assert!(store.exists("unknown/garbage.bin"));

    assert_eq!(server.stats().files_ingested, 2);
    assert_eq!(server.stats().files_unknown, 1);
    // warehouse got both files, viz only CPU
    assert_eq!(server.stats().deliveries, 3);
    assert_eq!(server.receipts().live_count(), 2);
}

#[test]
fn batch_trigger_fires_on_count() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store);

    server.deposit("MEMORY_poller1_20100925.gz", b"a").unwrap();
    assert!(server.trigger_log().is_empty(), "batch of 2 not reached");
    server.deposit("MEMORY_poller2_20100925.gz", b"b").unwrap();
    let entries = server.trigger_log().entries();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].subscriber, "warehouse");
    assert!(entries[0].command.starts_with("load SNMP/MEMORY batch="));
    assert!(entries[0].command.ends_with("n=2"));
    assert_eq!(entries[0].files.len(), 2);
}

#[test]
fn batch_window_fires_on_tick() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store);

    server.deposit("MEMORY_poller1_20100925.gz", b"a").unwrap();
    clock.advance(TimeSpan::from_mins(6)); // past the 5m window
    server.tick();
    let entries = server.trigger_log().entries();
    assert_eq!(entries.len(), 1);
    assert!(entries[0].command.ends_with("n=1"));
}

#[test]
fn offline_subscriber_backfilled_on_recovery() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store);

    server.set_subscriber_online("warehouse", false).unwrap();
    for d in 25..=27 {
        server
            .deposit(&format!("MEMORY_poller1_201009{d}.gz"), b"x")
            .unwrap();
    }
    // nothing delivered to warehouse while down
    let pending = server
        .receipts()
        .pending_for("warehouse", &["SNMP/MEMORY".to_string()]);
    assert_eq!(pending.len(), 3);
    assert_eq!(server.event_log().count(LogLevel::Alarm), 1);

    server.set_subscriber_online("warehouse", true).unwrap();
    let pending = server
        .receipts()
        .pending_for("warehouse", &["SNMP/MEMORY".to_string()]);
    assert!(pending.is_empty(), "backfill drained the queue");
}

#[test]
fn new_subscriber_receives_full_history() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store);

    for d in 25..=27 {
        server
            .deposit(&format!("MEMORY_poller1_201009{d}.gz"), b"x")
            .unwrap();
    }
    let newsub = bistro_config::SubscriberDef {
        name: "latecomer".to_string(),
        endpoint: "latecomer".to_string(),
        subscriptions: vec!["SNMP/MEMORY".to_string()],
        delivery: bistro_config::DeliveryMode::Push,
        deadline: TimeSpan::from_mins(5),
        batch: bistro_config::BatchSpec::per_file(),
        trigger: None,
        dest: None,
    };
    let backfilled = server.add_subscriber(newsub).unwrap();
    assert_eq!(backfilled, 3);
}

#[test]
fn server_recovers_after_crash() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    {
        let mut server = new_server(clock.clone(), store.clone());
        server.set_subscriber_online("warehouse", false).unwrap();
        server.deposit("MEMORY_poller1_20100925.gz", b"x").unwrap();
        server.deposit("MEMORY_poller2_20100925.gz", b"y").unwrap();
    } // crash: drop without snapshot

    let mut server = new_server(clock.clone(), store.clone());
    assert_eq!(server.receipts().live_count(), 2, "receipts recovered");
    // warehouse still owed both files (delivery state also recovered)
    let n = server.deliver_pending_for("warehouse").unwrap();
    assert_eq!(n, 2);
}

#[test]
fn expiration_archives_and_removes() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store.clone());

    server
        .deposit("MEMORY_poller1_20100925.gz", b"old-data")
        .unwrap();
    let staged = "staging/SNMP/MEMORY/2010/09/25/MEMORY_poller1_20100925.gz";
    assert!(store.exists(staged));

    clock.advance(TimeSpan::from_days(10)); // beyond 7d retention
    let n = server.expire().unwrap();
    assert_eq!(n, 1);
    assert!(!store.exists(staged), "staged payload expunged");
    assert_eq!(server.receipts().live_count(), 0);
    // archived copy exists
    let arch = server.archiver().unwrap();
    assert_eq!(
        arch.fetch("SNMP/MEMORY/2010/09/25/MEMORY_poller1_20100925.gz")
            .unwrap(),
        b"old-data"
    );
    assert_eq!(arch.archived_files().unwrap().len(), 1);
}

#[test]
fn feed_redefinition_recovers_drifted_files() {
    // §5.2 closing the loop: files drift (Poller vs poller), the analyzer
    // flags them, the subscriber approves a revised definition, and the
    // server reclassifies the parked unknowns and delivers them.
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store.clone());

    server.deposit("MEMORY_poller1_20100925.gz", b"ok").unwrap();
    server
        .deposit("MEMORY_Poller1_20100926.gz", b"drifted")
        .unwrap();
    assert_eq!(server.stats().files_unknown, 1);

    // analyzer flags the drift
    let warnings = server.fn_warnings();
    assert_eq!(warnings.len(), 1);
    assert_eq!(warnings[0].feed, "SNMP/MEMORY");

    // subscriber approves: add the suggested pattern to the feed
    let mut feed = server.config().feed("SNMP/MEMORY").unwrap().clone();
    feed.patterns.push(warnings[0].suggested_pattern.clone());
    server.redefine_feed(feed).unwrap();

    assert_eq!(server.receipts().live_count(), 2);
    assert!(!store.exists("unknown/MEMORY_Poller1_20100926.gz"));
    let pending = server
        .receipts()
        .pending_for("warehouse", &["SNMP/MEMORY".to_string()]);
    assert!(
        pending.is_empty(),
        "drifted file delivered after redefinition"
    );
}

#[test]
fn sub_minute_propagation_with_network() {
    // E3's core claim at unit scale: deposit → subscriber notification in
    // well under a minute through the simulated WAN.
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 10_000_000, // 10 MB/s WAN
        latency: TimeSpan::from_millis(40),
    }));
    let mut server = new_server(clock.clone(), store).with_network(net.clone());

    server
        .deposit("CPU_poller1_201009250000.csv", &vec![0u8; 1_000_000])
        .unwrap();
    clock.advance(TimeSpan::from_secs(30));
    let msgs = net.recv_ready("viz", clock.now());
    assert_eq!(msgs.len(), 1);
    let latency = msgs[0].at.since(START);
    assert!(
        latency < TimeSpan::from_secs(60),
        "propagation took {latency}"
    );
    match &msgs[0].msg {
        Message::Subscriber(SubscriberMsg::FileAvailable { feed, .. }) => {
            assert_eq!(feed, "SNMP/CPU");
        }
        other => panic!("viz uses notify mode, got {other:?}"),
    }
}

#[test]
fn progress_monitoring_raises_alarms() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store);
    server.monitor_feed("SNMP/CPU", TimeSpan::from_mins(5), 2);

    // interval 1: both pollers; interval 2: poller 2 missing
    server
        .deposit("CPU_poller1_201009250000.csv", b"a")
        .unwrap();
    server
        .deposit("CPU_poller2_201009250000.csv", b"b")
        .unwrap();
    server
        .deposit("CPU_poller1_201009250005.csv", b"c")
        .unwrap();
    clock.advance(TimeSpan::from_mins(12));
    server.tick();

    let alarms = server.event_log().alarms();
    assert!(
        alarms.iter().any(|a| a.message.contains("1/2 files")),
        "{alarms:#?}"
    );
}

#[test]
fn fleet_scale_ingest() {
    // a realistic hour of a small poller fleet end-to-end
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let cfg = parse_config(
        r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; }
        feed SNMP/CPU { pattern "CPU_poller%i_%Y%m%d%H%M.csv"; }
        subscriber wh { endpoint "wh"; subscribe SNMP; delivery push; }
        "#,
    )
    .unwrap();
    let mut server = Server::new("b", cfg, clock.clone(), store).unwrap();

    let mut fleet = FleetConfig::standard(
        4,
        vec![
            SubfeedSpec::standard("MEMORY"),
            SubfeedSpec::standard("CPU"),
        ],
        TimeSpan::from_hours(1),
    );
    fleet.skip_prob = 0.1;
    let files = generate(&fleet);
    let total = files.len();
    for f in &files {
        clock.set(f.deposit_time);
        server.deposit(&f.name, &payload_for(f)).unwrap();
    }
    assert_eq!(server.stats().files_ingested as usize, total);
    assert_eq!(server.stats().files_unknown, 0);
    assert_eq!(server.stats().deliveries as usize, total);
    // deposit→delivery latency is zero in store-local mode
    let (_, _, max) = server.stats().latency_summary("wh").unwrap();
    assert_eq!(max, TimeSpan::ZERO);
}

#[test]
fn latency_stats_use_bounded_histograms() {
    // Regression: DeliveryStats used to push one TimeSpan per delivery
    // into an unbounded per-subscriber Vec, so a long-lived server's
    // memory grew with delivery count. Latencies now feed fixed-size
    // histograms: the summary API still works, but no raw samples are
    // retained no matter how many deliveries happen.
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store);

    for d in 10..=30 {
        server
            .deposit(&format!("MEMORY_poller1_201009{d}.gz"), b"x")
            .unwrap();
    }
    assert_eq!(server.stats().deliveries, 21);
    let (mean, p95, max) = server.stats().latency_summary("warehouse").unwrap();
    assert_eq!(mean, TimeSpan::ZERO); // store-local delivery is instant
    assert_eq!(p95, TimeSpan::ZERO);
    assert_eq!(max, TimeSpan::ZERO);
    assert!(server.stats().latency_summary("nobody").is_none());
    assert_eq!(
        server.stats().retained_latency_samples(),
        0,
        "per-delivery samples must not accumulate"
    );
}

#[test]
fn group_fanout_survives_crash_restart() {
    // A delivery tree whose relay never answers: the fanout stays
    // outstanding, and after a crash-restart backfill re-fans the file
    // to the relay instead of forgetting the group ever existed.
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));
    let cfg_text = r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
        subscriber wh1 { endpoint "wh1"; subscribe SNMP/MEMORY; }
        subscriber wh2 { endpoint "wh2"; subscribe SNMP/MEMORY; }
        group EDGE { members wh1, wh2; relay "edge"; }
    "#;
    {
        let mut server = Server::new(
            "hub",
            parse_config(cfg_text).unwrap(),
            clock.clone(),
            store.clone(),
        )
        .unwrap()
        .with_network(net.clone());
        server.deposit("MEMORY_poller1_20100925.gz", b"x").unwrap();
        assert_eq!(server.group_outstanding(), 1);
        // grouped members never get direct sends
        clock.advance(TimeSpan::from_secs(1));
        assert!(net.recv_ready("wh1", clock.now()).is_empty());
        assert_eq!(net.recv_ready("edge", clock.now()).len(), 1);
    } // crash: drop without snapshot

    let mut server = Server::new(
        "hub",
        parse_config(cfg_text).unwrap(),
        clock.clone(),
        store.clone(),
    )
    .unwrap()
    .with_network(net.clone());
    assert_eq!(server.group_outstanding(), 0, "tracker state is volatile");
    let n = server.backfill_unacked().unwrap();
    assert_eq!(n, 1, "group fanout re-sent from durable receipts");
    assert_eq!(server.group_outstanding(), 1);
    clock.advance(TimeSpan::from_secs(1));
    assert_eq!(net.recv_ready("edge", clock.now()).len(), 1);
}

#[test]
fn composition_report_flags_leakage() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let cfg = parse_config(
        r#"
        feed CATCHALL { pattern "*_%Y%m%d.csv"; }
        subscriber s { endpoint "s"; subscribe CATCHALL; }
        "#,
    )
    .unwrap();
    let mut server = Server::new("b", cfg, clock.clone(), store).unwrap();
    for d in 1..=28 {
        server
            .deposit(&format!("BPS_{:04}{:02}{d:02}.csv", 2010, 9), b"x")
            .unwrap();
    }
    server.deposit("PPS_20100901.csv", b"x").unwrap();
    let report = server.feed_composition("CATCHALL");
    assert_eq!(report.total_files, 29);
    assert_eq!(report.outliers.len(), 1);
    assert!(report.outliers[0].pattern.text().starts_with("PPS"));
}

#[test]
fn discovery_report_from_unknowns() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store);
    for d in 1..=9 {
        server
            .deposit(&format!("NEWFEED_host{}_2010090{d}.log", d % 3), b"x")
            .unwrap();
    }
    let report = server.discovery_report(5);
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].pattern.text(), "NEWFEED_host%i_%Y%m%d.log");
    assert_eq!(report[0].support, 9);
}

#[test]
fn persisted_config_survives_restart_with_runtime_changes() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    {
        let mut server = new_server(clock.clone(), store.clone());
        // runtime change 1: a new subscriber
        server
            .add_subscriber(bistro_config::SubscriberDef {
                name: "late".to_string(),
                endpoint: "late".to_string(),
                subscriptions: vec!["SNMP/MEMORY".to_string()],
                delivery: bistro_config::DeliveryMode::Push,
                deadline: TimeSpan::from_mins(2),
                batch: bistro_config::BatchSpec::per_file(),
                trigger: None,
                dest: None,
            })
            .unwrap();
        // runtime change 2: an approved feed redefinition
        let mut feed = server.config().feed("SNMP/MEMORY").unwrap().clone();
        feed.patterns
            .push(bistro_pattern::Pattern::parse("MEMORY_Poller%i_%Y%m%d.gz").unwrap());
        server.redefine_feed(feed).unwrap();
        server.persist_config().unwrap();
        server.deposit("MEMORY_poller1_20100925.gz", b"x").unwrap();
    }
    // restart purely from the store: config + receipts both recovered
    let mut server = Server::open_existing("bistro", clock.clone(), store.clone()).unwrap();
    assert!(server.config().subscriber("late").is_some());
    assert_eq!(
        server.config().feed("SNMP/MEMORY").unwrap().patterns.len(),
        2
    );
    // the redefined pattern is live: a drifted file classifies directly
    server.deposit("MEMORY_Poller2_20100926.gz", b"y").unwrap();
    assert_eq!(server.stats().files_unknown, 0);
    assert_eq!(server.receipts().live_count(), 2);
}

#[test]
fn group_suggestions_and_schemas_from_unknowns() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store);
    // two structurally similar unknown subfeeds with CSV bodies
    for kind in ["BPS", "PPS"] {
        for d in 10..16 {
            server
                .deposit(
                    &format!("{kind}_px1_201009{d}.csv"),
                    b"1285372800,router_001,123\n1285372805,router_002,456\n",
                )
                .unwrap();
        }
    }
    let groups = server.group_suggestions(3);
    assert_eq!(groups.len(), 1, "{groups:#?}");
    assert_eq!(groups[0].members.len(), 2);
    let schema = server
        .unknown_file_schema("BPS_px1_20100910.csv")
        .unwrap()
        .expect("csv schema");
    assert_eq!(schema.to_string(), "csv(ts,text,int)");
}

#[test]
fn dest_template_fallback_is_loud() {
    // A feed whose pattern captures no timestamp, subscribed with a
    // dest template that demands one: every delivery renders the
    // template against captures that cannot satisfy it, so the file
    // falls back to the staged incoming/ layout. That fallback used to
    // be silent — the config drift was invisible until the subscriber's
    // downstream tooling missed its files. It must warn and count.
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let cfg = parse_config(
        r#"
        feed EVENTS { pattern "EVENT_%i.log"; }
        subscriber sink {
            endpoint "sink";
            subscribe EVENTS;
            delivery push;
            deadline 60s;
            dest "%Y/%m/%f";
        }
        "#,
    )
    .unwrap();
    let mut server = Server::new("b", cfg, clock.clone(), store).unwrap();
    server.deposit("EVENT_7.log", b"x").unwrap();

    assert_eq!(server.stats().deliveries, 1, "delivery itself still lands");
    assert_eq!(
        server.telemetry().counter_value("delivery.dest_fallback"),
        Some(1),
        "fallback must be counted"
    );
    assert_eq!(server.event_log().count(LogLevel::Warn), 1);
    let warned = server
        .event_log()
        .recent()
        .iter()
        .any(|e| e.message.contains("dest template") && e.message.contains("sink"));
    assert!(warned, "fallback must name the subscriber and the template");
}

#[test]
fn dest_template_success_does_not_count_fallback() {
    // control: a renderable dest template never touches the fallback
    // counter or the warn log
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let cfg = parse_config(
        r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
        subscriber wh {
            endpoint "wh";
            subscribe SNMP/MEMORY;
            delivery push;
            deadline 60s;
            dest "incoming/%Y/%m/%d/%f";
        }
        "#,
    )
    .unwrap();
    let mut server = Server::new("b", cfg, clock.clone(), store).unwrap();
    server.deposit("MEMORY_poller1_20100925.gz", b"x").unwrap();
    assert_eq!(server.stats().deliveries, 1);
    assert_eq!(
        server.telemetry().counter_value("delivery.dest_fallback"),
        Some(0)
    );
    assert_eq!(server.event_log().count(LogLevel::Warn), 0);
}

#[test]
fn endpoint_ack_lookup_tracks_churn() {
    // the endpoint→subscriber map behind ack resolution must follow
    // registration, shared-endpoint ties (lexicographically-first, as
    // the scan it replaced resolved them), removal, and rename
    // (remove + re-add under a new name, keeping the endpoint)
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store);

    assert_eq!(
        server.resolve_endpoint("warehouse").as_deref(),
        Some("warehouse")
    );
    assert_eq!(server.resolve_endpoint("nobody"), None);

    // a second subscriber sharing the endpoint wins the tie by name
    let aard = bistro_config::SubscriberDef {
        name: "aardvark".to_string(),
        endpoint: "warehouse".to_string(),
        subscriptions: vec!["SNMP/CPU".to_string()],
        delivery: bistro_config::DeliveryMode::Push,
        deadline: TimeSpan::from_mins(5),
        batch: bistro_config::BatchSpec::per_file(),
        trigger: None,
        dest: None,
    };
    server.add_subscriber(aard).unwrap();
    assert_eq!(
        server.resolve_endpoint("warehouse").as_deref(),
        Some("aardvark")
    );

    // removal restores the survivor; removing it empties the slot
    server.remove_subscriber("aardvark").unwrap();
    assert_eq!(
        server.resolve_endpoint("warehouse").as_deref(),
        Some("warehouse")
    );
    server.remove_subscriber("warehouse").unwrap();
    assert_eq!(server.resolve_endpoint("warehouse"), None);

    // rename: the old name re-registered under a new one, same endpoint
    let renamed = bistro_config::SubscriberDef {
        name: "warehouse-v2".to_string(),
        endpoint: "warehouse".to_string(),
        subscriptions: vec!["SNMP".to_string()],
        delivery: bistro_config::DeliveryMode::Push,
        deadline: TimeSpan::from_mins(5),
        batch: bistro_config::BatchSpec::per_file(),
        trigger: None,
        dest: None,
    };
    server.add_subscriber(renamed).unwrap();
    assert_eq!(
        server.resolve_endpoint("warehouse").as_deref(),
        Some("warehouse-v2")
    );

    // after all that churn the delivery match must still agree with the
    // brute-force scan, and deliveries must flow to the new name
    let feeds = vec!["SNMP/MEMORY".to_string()];
    assert_eq!(
        server.match_via_index(&feeds),
        server.match_via_scan(&feeds)
    );
    server.deposit("MEMORY_poller1_20100928.gz", b"x").unwrap();
    assert!(server
        .receipts()
        .pending_for("warehouse-v2", &feeds)
        .is_empty());
}

#[test]
fn add_subscriber_rejection_rolls_back_config() {
    // a rejected runtime registration (duplicate name) must not leave
    // the dangling def in the config — it used to, poisoning every
    // later validate() call on this server
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = new_server(clock.clone(), store);

    let dup = bistro_config::SubscriberDef {
        name: "warehouse".to_string(), // already configured
        endpoint: "elsewhere".to_string(),
        subscriptions: vec!["SNMP".to_string()],
        delivery: bistro_config::DeliveryMode::Push,
        deadline: TimeSpan::from_mins(5),
        batch: bistro_config::BatchSpec::per_file(),
        trigger: None,
        dest: None,
    };
    assert!(server.add_subscriber(dup).is_err());
    assert_eq!(server.config().subscribers.len(), 2, "rolled back");

    // the server still accepts a valid registration afterwards
    let ok = bistro_config::SubscriberDef {
        name: "fresh".to_string(),
        endpoint: "fresh".to_string(),
        subscriptions: vec!["SNMP".to_string()],
        delivery: bistro_config::DeliveryMode::Push,
        deadline: TimeSpan::from_mins(5),
        batch: bistro_config::BatchSpec::per_file(),
        trigger: None,
        dest: None,
    };
    server.add_subscriber(ok).unwrap();
    assert_eq!(server.resolve_endpoint("fresh").as_deref(), Some("fresh"));
}

#[test]
fn grouped_member_cannot_be_removed() {
    // a relay-group member's delivery rides the shared plan; removing
    // it individually would silently shrink the tree's coverage bitmap
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let cfg = parse_config(
        r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d.gz"; }
        subscriber wh1 { endpoint "wh1"; subscribe SNMP/MEMORY; }
        subscriber wh2 { endpoint "wh2"; subscribe SNMP/MEMORY; }
        group EDGE { members wh1, wh2; relay "edge"; }
        "#,
    )
    .unwrap();
    let mut server = Server::new("hub", cfg, clock.clone(), store).unwrap();
    let err = server.remove_subscriber("wh1").unwrap_err();
    assert!(matches!(
        err,
        bistro_core::ServerError::GroupedSubscriber(_)
    ));
    // still resolvable and still matched through the group plan
    assert_eq!(server.resolve_endpoint("wh1").as_deref(), Some("wh1"));
    let feeds = vec!["SNMP/MEMORY".to_string()];
    assert_eq!(
        server.match_via_index(&feeds),
        server.match_via_scan(&feeds)
    );
}
