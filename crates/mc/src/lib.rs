//! `bistro-mc`: a bounded exhaustive model checker for Bistro's
//! distributed protocols (DESIGN.md §11).
//!
//! The production simulation ([`bistro_transport::SimNetwork`]) delivers
//! messages in arrival-time order, so one seed explores one schedule.
//! The checker instead takes control of scheduling: a [`Model`] exposes
//! the set of *enabled actions* in its current state — deliver, drop or
//! duplicate one in-flight message, fire the retry timer, crash or
//! restart a server, declare a failure — and [`explore`] walks every
//! interleaving of those actions up to a depth bound, checking the
//! model's invariants in every state it reaches.
//!
//! States are deduplicated by a schedule-independent digest (directory
//! epochs, receipt-store contents, the in-flight message multiset —
//! never timestamps or fabric sequence numbers), so interleavings that
//! converge to the same protocol state are explored once.
//!
//! Bistro's `Server` and `Cluster` are not cloneable — they own WAL
//! handles and durable stores — so the checker is *replay-based*: a
//! state is represented by the action trace that reaches it, and
//! visiting a state means [`Model::reset`] followed by re-applying the
//! trace. Determinism is what makes this sound: the same trace always
//! reproduces the same state (bit-for-bit — see the same-seed digest
//! regression in `tests/model_check.rs`).
//!
//! A violated invariant yields a [`Counterexample`]: the action trace,
//! greedily minimized (every action that can be removed while still
//! reproducing the violation is removed) and re-verified by replay.

pub mod scenarios;

use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

/// One scheduling decision the checker can make. `Deliver`, `Drop` and
/// `Duplicate` address an in-flight message by its
/// `(endpoint, fabric seq)` pair (see
/// [`bistro_transport::SimNetwork::pending_messages`]); the rest are
/// whole-node events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Hand the addressed in-flight message to its destination now.
    Deliver {
        /// Destination endpoint.
        endpoint: String,
        /// Fabric sequence number of the copy.
        seq: u64,
    },
    /// Silently discard the addressed in-flight message.
    Drop {
        /// Destination endpoint.
        endpoint: String,
        /// Fabric sequence number of the copy.
        seq: u64,
    },
    /// Enqueue a second copy of the addressed in-flight message.
    Duplicate {
        /// Destination endpoint.
        endpoint: String,
        /// Fabric sequence number of the copy.
        seq: u64,
    },
    /// Lapse every outstanding retry deadline at `server` and
    /// retransmit ([`bistro_core::Server::retry_fire`]).
    RetryFire {
        /// The server whose retry timer fires.
        server: String,
    },
    /// Crash `server`: its in-memory state is lost, its durable store
    /// survives.
    Crash {
        /// The server that crashes.
        server: String,
    },
    /// Restart `server` over its durable store and re-deliver whatever
    /// the recovered receipts do not show as delivered.
    Restart {
        /// The server that restarts.
        server: String,
    },
    /// The failure detector declares `server` dead *now*
    /// ([`bistro_core::Cluster::declare_failed`]), promoting standbys.
    DeclareFailed {
        /// The server declared failed.
        server: String,
    },
    /// Inject the model's `index`-th ingress event (a source deposit).
    Ingress {
        /// Which ingress event fires.
        index: usize,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Deliver { endpoint, seq } => write!(f, "deliver({endpoint}, #{seq})"),
            Action::Drop { endpoint, seq } => write!(f, "drop({endpoint}, #{seq})"),
            Action::Duplicate { endpoint, seq } => write!(f, "duplicate({endpoint}, #{seq})"),
            Action::RetryFire { server } => write!(f, "retry-fire({server})"),
            Action::Crash { server } => write!(f, "crash({server})"),
            Action::Restart { server } => write!(f, "restart({server})"),
            Action::DeclareFailed { server } => write!(f, "declare-failed({server})"),
            Action::Ingress { index } => write!(f, "ingress(#{index})"),
        }
    }
}

/// A system under test. Implementations own the real Bistro objects
/// (servers, cluster, network) plus an environment model (subscribers,
/// pending ingress) and must be *deterministic*: after [`Model::reset`],
/// re-applying the same actions reproduces the same state and the same
/// [`Model::digest`].
pub trait Model {
    /// Return to the initial state. Called once per replay — keep it as
    /// cheap as the system allows.
    fn reset(&mut self);

    /// Every action enabled in the current state. Order is the DFS
    /// visit order; it must be deterministic.
    fn enabled(&self) -> Vec<Action>;

    /// Apply one action. `Err` means the action is not applicable in
    /// this state — legal during counterexample minimization (a removed
    /// prefix action can invalidate a later one), a bug if it happens
    /// for an action [`Model::enabled`] just returned.
    fn apply(&mut self, action: &Action) -> Result<(), String>;

    /// Schedule-independent digest of the current state, for visited-set
    /// deduplication.
    fn digest(&self) -> u64;

    /// Check every invariant; `Err` describes the violated one.
    fn check(&self) -> Result<(), String>;
}

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// Longest action trace explored.
    pub max_depth: usize,
    /// Stop after this many distinct states.
    pub max_states: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_depth: 12,
            max_states: 100_000,
        }
    }
}

/// Exploration counters, reported by the CI `mc` stage.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Distinct states visited (including the initial state).
    pub states: usize,
    /// Actions applied at exploration frontiers (excludes replays).
    pub transitions: usize,
    /// Transitions that led to an already-visited state.
    pub deduped: usize,
    /// Deepest trace that reached a new state.
    pub max_depth: usize,
    /// Wall-clock time of the exploration.
    pub elapsed_ms: u128,
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "states={} transitions={} deduped={} max_depth={} elapsed_ms={}",
            self.states, self.transitions, self.deduped, self.max_depth, self.elapsed_ms
        )
    }
}

/// A replayable witness of an invariant violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Minimized action trace; replaying it from [`Model::reset`]
    /// reproduces the violation.
    pub trace: Vec<Action>,
    /// The violated invariant's description.
    pub invariant: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.invariant)?;
        writeln!(f, "replayable trace ({} actions):", self.trace.len())?;
        for (i, a) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:3}. {a}")?;
        }
        Ok(())
    }
}

/// The result of an exploration.
#[derive(Debug)]
pub enum Outcome {
    /// Every reachable state within the depth bound was visited and all
    /// invariants held.
    Pass(Stats),
    /// The state cap was hit first; no violation in what was explored.
    Truncated(Stats),
    /// An invariant was violated.
    Violation {
        /// The minimized, replay-verified witness.
        counterexample: Counterexample,
        /// Counters up to the point of violation.
        stats: Stats,
    },
}

impl Outcome {
    /// The exploration counters, whatever the outcome.
    pub fn stats(&self) -> &Stats {
        match self {
            Outcome::Pass(s) | Outcome::Truncated(s) => s,
            Outcome::Violation { stats, .. } => stats,
        }
    }

    /// The counterexample, if the exploration found a violation.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Outcome::Violation { counterexample, .. } => Some(counterexample),
            _ => None,
        }
    }
}

/// Reset the model and re-apply `trace`. `Err` carries the failing
/// action's index and the model's error.
pub fn replay(model: &mut dyn Model, trace: &[Action]) -> Result<(), String> {
    model.reset();
    for (i, a) in trace.iter().enumerate() {
        model
            .apply(a)
            .map_err(|e| format!("action {i} ({a}) failed: {e}"))?;
    }
    Ok(())
}

/// Replay `trace`, checking invariants after every action. `Some` is
/// the first violation's description; `None` means the trace either
/// does not apply or applies cleanly.
fn violation_of(model: &mut dyn Model, trace: &[Action]) -> Option<String> {
    model.reset();
    if let Err(v) = model.check() {
        return Some(v);
    }
    for a in trace {
        if model.apply(a).is_err() {
            return None;
        }
        if let Err(v) = model.check() {
            return Some(v);
        }
    }
    None
}

/// Greedily minimize a violating trace: repeatedly drop any single
/// action whose removal still reproduces a violation, to a fixpoint.
/// The result is 1-minimal (no single action can be removed), not
/// globally minimal — enough to make counterexamples readable.
pub fn minimize(model: &mut dyn Model, trace: &[Action]) -> Vec<Action> {
    let mut best = trace.to_vec();
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if violation_of(model, &candidate).is_some() {
                best = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Depth-first bounded exploration of every interleaving of `model`'s
/// enabled actions, deduplicating states by digest and checking
/// invariants in every state reached. On violation the witness trace is
/// minimized and re-verified by replay before being returned.
pub fn explore(model: &mut dyn Model, bounds: Bounds) -> Outcome {
    let started = Instant::now();
    let mut stats = Stats::default();
    let mut visited: HashSet<u64> = HashSet::new();

    model.reset();
    if let Err(invariant) = model.check() {
        stats.elapsed_ms = started.elapsed().as_millis();
        return Outcome::Violation {
            counterexample: Counterexample {
                trace: Vec::new(),
                invariant,
            },
            stats,
        };
    }
    visited.insert(model.digest());
    stats.states = 1;

    // Each frontier entry carries the enabled set computed when its
    // state was first reached, so expansion needs one replay per child
    // rather than one extra per node.
    let mut frontier: Vec<(Vec<Action>, Vec<Action>)> = vec![(Vec::new(), model.enabled())];

    while let Some((trace, actions)) = frontier.pop() {
        if trace.len() >= bounds.max_depth {
            continue;
        }
        for action in actions {
            if replay(model, &trace).is_err() {
                unreachable!("an explored prefix must replay cleanly");
            }
            if model.apply(&action).is_err() {
                unreachable!("an enabled action must apply");
            }
            stats.transitions += 1;
            let mut child = trace.clone();
            child.push(action);
            if model.check().is_err() {
                let minimized = minimize(model, &child);
                let invariant = violation_of(model, &minimized)
                    .expect("a minimized counterexample must still violate on replay");
                stats.elapsed_ms = started.elapsed().as_millis();
                return Outcome::Violation {
                    counterexample: Counterexample {
                        trace: minimized,
                        invariant,
                    },
                    stats,
                };
            }
            if visited.insert(model.digest()) {
                stats.states += 1;
                stats.max_depth = stats.max_depth.max(child.len());
                if stats.states >= bounds.max_states {
                    stats.elapsed_ms = started.elapsed().as_millis();
                    return Outcome::Truncated(stats);
                }
                let enabled = model.enabled();
                frontier.push((child, enabled));
            } else {
                stats.deduped += 1;
            }
        }
    }

    stats.elapsed_ms = started.elapsed().as_millis();
    Outcome::Pass(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: a counter stepped by +1 (`ingress #0`) or +2
    /// (`ingress #1`), with an optional no-op (`ingress #2`), bounded
    /// above, and an optional forbidden value.
    struct Counter {
        x: i64,
        max: i64,
        forbidden: Option<i64>,
        with_noop: bool,
    }

    impl Model for Counter {
        fn reset(&mut self) {
            self.x = 0;
        }
        fn enabled(&self) -> Vec<Action> {
            let mut out = Vec::new();
            if self.x + 1 <= self.max {
                out.push(Action::Ingress { index: 0 });
            }
            if self.x + 2 <= self.max {
                out.push(Action::Ingress { index: 1 });
            }
            if self.with_noop {
                out.push(Action::Ingress { index: 2 });
            }
            out
        }
        fn apply(&mut self, action: &Action) -> Result<(), String> {
            match action {
                Action::Ingress { index: 0 } if self.x + 1 <= self.max => {
                    self.x += 1;
                    Ok(())
                }
                Action::Ingress { index: 1 } if self.x + 2 <= self.max => {
                    self.x += 2;
                    Ok(())
                }
                Action::Ingress { index: 2 } => Ok(()),
                other => Err(format!("{other} not applicable at x={}", self.x)),
            }
        }
        fn digest(&self) -> u64 {
            self.x as u64
        }
        fn check(&self) -> Result<(), String> {
            match self.forbidden {
                Some(v) if self.x == v => Err(format!("counter reached forbidden value {v}")),
                _ => Ok(()),
            }
        }
    }

    #[test]
    fn exhaustive_exploration_counts_distinct_states() {
        let mut m = Counter {
            x: 0,
            max: 10,
            forbidden: None,
            with_noop: false,
        };
        let out = explore(&mut m, Bounds::default());
        let Outcome::Pass(stats) = out else {
            panic!("expected pass, got {out:?}");
        };
        // states are exactly {0, 1, ..., 10}
        assert_eq!(stats.states, 11);
        assert!(stats.deduped > 0, "step order must converge and dedup");
        // every new state is found within 10 steps; dedup means the
        // deepest chain of *fresh* states may be shorter
        assert!(
            (5..=10).contains(&stats.max_depth),
            "unexpected max_depth {}",
            stats.max_depth
        );
    }

    #[test]
    fn depth_bound_truncates_reachability() {
        let mut m = Counter {
            x: 0,
            max: 100,
            forbidden: None,
            with_noop: false,
        };
        let out = explore(
            &mut m,
            Bounds {
                max_depth: 3,
                max_states: 100_000,
            },
        );
        let Outcome::Pass(stats) = out else {
            panic!("expected pass, got {out:?}");
        };
        // depth 3 reaches at most x = 6 → states {0..=6}
        assert_eq!(stats.states, 7);
    }

    #[test]
    fn violation_is_found_minimized_and_replayable() {
        let mut m = Counter {
            x: 0,
            max: 10,
            forbidden: Some(7),
            with_noop: true,
        };
        let out = explore(&mut m, Bounds::default());
        let Outcome::Violation { counterexample, .. } = out else {
            panic!("expected violation, got {out:?}");
        };
        assert!(counterexample.invariant.contains("forbidden value 7"));
        // minimal: no no-ops survive, and the sum is exactly 7
        let sum: i64 = counterexample
            .trace
            .iter()
            .map(|a| match a {
                Action::Ingress { index: 0 } => 1,
                Action::Ingress { index: 1 } => 2,
                Action::Ingress { index: 2 } => 0,
                _ => panic!("unexpected action"),
            })
            .sum();
        assert_eq!(sum, 7);
        assert!(
            !counterexample
                .trace
                .iter()
                .any(|a| matches!(a, Action::Ingress { index: 2 })),
            "minimization must strip no-ops"
        );
        // replay-verified
        assert!(violation_of(&mut m, &counterexample.trace).is_some());
    }

    #[test]
    fn minimize_strips_redundant_actions() {
        let mut m = Counter {
            x: 0,
            max: 10,
            forbidden: Some(5),
            with_noop: true,
        };
        let bloated = vec![
            Action::Ingress { index: 2 },
            Action::Ingress { index: 1 },
            Action::Ingress { index: 2 },
            Action::Ingress { index: 1 },
            Action::Ingress { index: 2 },
            Action::Ingress { index: 0 },
        ];
        assert!(violation_of(&mut m, &bloated).is_some());
        let minimal = minimize(&mut m, &bloated);
        assert_eq!(minimal.len(), 3, "2 + 2 + 1 with no-ops stripped");
    }

    #[test]
    fn state_cap_reports_truncation() {
        let mut m = Counter {
            x: 0,
            max: 1000,
            forbidden: None,
            with_noop: false,
        };
        let out = explore(
            &mut m,
            Bounds {
                max_depth: 1000,
                max_states: 50,
            },
        );
        assert!(matches!(out, Outcome::Truncated(_)));
        assert_eq!(out.stats().states, 50);
    }
}
