//! Checker harnesses over the real Bistro stack.
//!
//! Each scenario owns production objects — [`Server`], [`Cluster`],
//! [`SimNetwork`] — plus a small environment model (the subscriber's
//! dedupe state, the pending ingress events) and implements [`Model`]
//! by mapping checker actions onto the step hooks those layers expose:
//! [`SimNetwork::take_message`] and friends for controlled message
//! scheduling, [`Server::retry_fire`] for the retry timer,
//! [`Cluster::declare_failed`] for the failure detector. The simulated
//! clock never advances: the checker explores *orderings*, and every
//! time-driven behavior has an explicit action standing in for it.

use crate::{Action, Model};
use bistro_base::{fnv1a64, Clock, SimClock, TimePoint, TimeSpan};
use bistro_config::{parse_config, BatchSpec, Config, DeliveryMode, SubscriberDef};
use bistro_core::cluster::DIRECTORY_ENDPOINT;
use bistro_core::{Cluster, Server};
use bistro_transport::messages::{Message, ReliableMsg, SubscriberMsg};
use bistro_transport::{LinkSpec, RetryPolicy, SimNetwork};
use bistro_vfs::MemFs;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

const START: TimePoint = TimePoint::from_secs(1_285_372_800);

/// One feed group, failover policy — the catalog every scenario runs.
const CONFIG: &str = r#"
    server { retention 7d; }

    feed SNMP/CPU {
        pattern "CPU_%Y%m%d%H%M.csv";
        policy failover;
    }
"#;

fn mc_config() -> Config {
    parse_config(CONFIG).expect("scenario config parses")
}

fn mc_net() -> Arc<SimNetwork> {
    Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 10_000_000,
        latency: TimeSpan::from_millis(5),
    }))
}

/// No jitter (the tracker's RNG must not desynchronize replays) and a
/// small attempt budget so the exhaustion path is within reach.
fn mc_retry_policy() -> RetryPolicy {
    RetryPolicy {
        base_timeout: TimeSpan::from_secs(1),
        backoff: 2,
        max_timeout: TimeSpan::from_secs(60),
        max_attempts: 3,
        jitter: 0.0,
    }
}

fn sub_def(name: &str, targets: &[&str]) -> SubscriberDef {
    SubscriberDef {
        name: name.to_string(),
        endpoint: format!("{name}:7070"),
        subscriptions: targets.iter().map(|s| s.to_string()).collect(),
        delivery: DeliveryMode::Push,
        deadline: TimeSpan::from_secs(60),
        batch: BatchSpec::default(),
        trigger: None,
        dest: None,
    }
}

/// The deposited file names the scenarios ingest (they match the
/// `SNMP/CPU` pattern).
fn ingress_files(n: usize) -> Vec<(String, Vec<u8>)> {
    (0..n)
        .map(|i| {
            (
                format!("CPU_2010090100{i:02}.csv"),
                format!("cpu-sample-{i}").into_bytes(),
            )
        })
        .collect()
}

/// The last path segment — subscribers key their dedupe state by the
/// deposited file name, which every delivery path preserves as the
/// basename of the destination it announces.
fn base_name(path: &str) -> String {
    path.rsplit('/').next().unwrap_or(path).to_string()
}

/// The environment's model of one subscriber endpoint: counts every
/// wire delivery per file and keeps the deduped applied set, acking
/// reliable attempts like the production client library does.
#[derive(Default)]
struct SubModel {
    name: String,
    endpoint: String,
    /// Applied (deduped) file names.
    seen: BTreeSet<String>,
    /// Raw wire deliveries per file name, before dedupe.
    wire: BTreeMap<String, u32>,
}

impl SubModel {
    fn new(name: &str) -> SubModel {
        SubModel {
            name: name.to_string(),
            endpoint: format!("{name}:7070"),
            ..SubModel::default()
        }
    }

    fn clear(&mut self) {
        self.seen.clear();
        self.wire.clear();
    }

    fn record(&mut self, file_name: String) {
        *self.wire.entry(file_name.clone()).or_insert(0) += 1;
        self.seen.insert(file_name);
    }

    /// Receive one message. Reliable attempts are acked back to
    /// `server_endpoint` (every attempt, duplicates included — the
    /// protocol's contract); plain pushes are just recorded.
    fn receive(
        &mut self,
        net: &SimNetwork,
        server_endpoint: &str,
        msg: Message,
        now: TimePoint,
    ) -> Result<(), String> {
        match msg {
            Message::Reliable(ReliableMsg::Attempt { attempt, inner }) => {
                let (file, name) = match &inner {
                    SubscriberMsg::FileDelivered {
                        file, dest_path, ..
                    } => (*file, base_name(dest_path)),
                    SubscriberMsg::FileAvailable {
                        file, staged_path, ..
                    } => (*file, base_name(staged_path)),
                    SubscriberMsg::BatchComplete { .. } => return Ok(()),
                };
                self.record(name);
                net.send(
                    now,
                    &self.endpoint,
                    server_endpoint,
                    Message::Reliable(ReliableMsg::Ack { file, attempt }),
                );
                Ok(())
            }
            Message::Subscriber(SubscriberMsg::FileDelivered { dest_path, .. }) => {
                self.record(base_name(&dest_path));
                Ok(())
            }
            Message::Subscriber(SubscriberMsg::FileAvailable { staged_path, .. }) => {
                self.record(base_name(&staged_path));
                Ok(())
            }
            Message::Subscriber(SubscriberMsg::BatchComplete { .. }) => Ok(()),
            other => Err(format!(
                "subscriber {} received unexpected message {other:?}",
                self.name
            )),
        }
    }

    fn digest(&self) -> u64 {
        let mut acc = String::new();
        for (name, n) in &self.wire {
            acc.push_str(&format!("wire\0{name}\0{n}\n"));
        }
        for name in &self.seen {
            acc.push_str(&format!("seen\0{name}\n"));
        }
        fnv1a64(acc.as_bytes())
    }
}

/// Scenarios 1 and 2: one server, one subscriber, reliable delivery
/// over a lossy link. [`SingleServer::reliable_delivery`] explores
/// drop/duplicate/retry interleavings on a healthy server;
/// [`SingleServer::crash_restart`] trades the message faults for
/// crash/restart, checking WAL recovery and unacked backfill.
pub struct SingleServer {
    clock: Arc<SimClock>,
    net: Arc<SimNetwork>,
    server: Option<Server>,
    store: Arc<MemFs>,
    subscriber: SubModel,
    files: Vec<(String, Vec<u8>)>,
    ingressed: usize,
    /// Enable drop/duplicate actions, bounded by `dup_cap` total
    /// in-flight messages.
    faults: bool,
    dup_cap: usize,
    /// Enable crash/restart actions.
    crashes: bool,
    /// The server's receipt digest frozen at crash time (the durable
    /// store cannot change while the server is down).
    crash_digest: u64,
    /// Watermark of delivery receipts, for the receipts-are-monotone
    /// invariant across restarts. Derived state: not part of the digest.
    acked: BTreeSet<String>,
    violation: Option<String>,
}

impl SingleServer {
    /// Scenario 1: reliable delivery over a link that can drop and
    /// duplicate, with the retry timer as an explicit action.
    pub fn reliable_delivery(n_files: usize, dup_cap: usize) -> SingleServer {
        let mut m = SingleServer::bare(n_files);
        m.faults = true;
        m.dup_cap = dup_cap;
        m.reset();
        m
    }

    /// Scenario 2: crash at any point, restart over the durable store,
    /// WAL replay plus unacked backfill.
    pub fn crash_restart(n_files: usize) -> SingleServer {
        let mut m = SingleServer::bare(n_files);
        m.crashes = true;
        m.reset();
        m
    }

    fn bare(n_files: usize) -> SingleServer {
        SingleServer {
            clock: SimClock::starting_at(START),
            net: mc_net(),
            server: None,
            store: MemFs::shared(SimClock::starting_at(START)),
            subscriber: SubModel::new("alpha"),
            files: ingress_files(n_files),
            ingressed: 0,
            faults: false,
            dup_cap: 0,
            crashes: false,
            crash_digest: 0,
            acked: BTreeSet::new(),
            violation: None,
        }
    }

    /// Delivery marks for the subscriber currently in the receipt store.
    fn marks(&self, server: &Server) -> BTreeSet<String> {
        server
            .receipts()
            .deliveries_since(0)
            .into_iter()
            .filter(|m| m.subscriber == self.subscriber.name)
            .map(|m| m.file_name)
            .collect()
    }

    /// Post-action bookkeeping: receipts must only ever grow (acked
    /// deliveries survive crashes — the WAL replay invariant).
    fn audit(&mut self) {
        let Some(server) = self.server.as_ref() else {
            return;
        };
        let marks = self.marks(server);
        if let Some(lost) = self.acked.difference(&marks).next() {
            self.violation = Some(format!(
                "delivery receipt for {lost} was lost (receipts must be monotone across restarts)"
            ));
        }
        self.acked = marks;
    }
}

impl Model for SingleServer {
    fn reset(&mut self) {
        self.clock = SimClock::starting_at(START);
        self.net = mc_net();
        self.store = MemFs::shared(self.clock.clone());
        let mut server = Server::new("s1", mc_config(), self.clock.clone(), self.store.clone())
            .expect("scenario server builds")
            .with_network(self.net.clone())
            .with_reliable_delivery(mc_retry_policy(), 7);
        server
            .add_subscriber(sub_def(&self.subscriber.name, &["SNMP/CPU"]))
            .expect("subscriber attaches");
        server.persist_config().expect("config persists");
        self.server = Some(server);
        self.subscriber.clear();
        self.ingressed = 0;
        self.crash_digest = 0;
        self.acked.clear();
        self.violation = None;
    }

    fn enabled(&self) -> Vec<Action> {
        let mut out = Vec::new();
        if self.ingressed < self.files.len() && self.server.is_some() {
            out.push(Action::Ingress {
                index: self.ingressed,
            });
        }
        let pending = self.net.pending_messages();
        for pm in &pending {
            out.push(Action::Deliver {
                endpoint: pm.endpoint.clone(),
                seq: pm.seq,
            });
            if self.faults {
                out.push(Action::Drop {
                    endpoint: pm.endpoint.clone(),
                    seq: pm.seq,
                });
                if pending.len() < self.dup_cap {
                    out.push(Action::Duplicate {
                        endpoint: pm.endpoint.clone(),
                        seq: pm.seq,
                    });
                }
            }
        }
        if let Some(server) = &self.server {
            if server.unacked_count() > 0 {
                out.push(Action::RetryFire {
                    server: "s1".to_string(),
                });
            }
        }
        if self.crashes {
            match &self.server {
                Some(_) => out.push(Action::Crash {
                    server: "s1".to_string(),
                }),
                None => out.push(Action::Restart {
                    server: "s1".to_string(),
                }),
            }
        }
        out
    }

    fn apply(&mut self, action: &Action) -> Result<(), String> {
        let now = self.clock.now();
        match action {
            Action::Ingress { index } => {
                if *index != self.ingressed {
                    return Err(format!("ingress #{index} out of order"));
                }
                let (name, payload) = self.files[*index].clone();
                let server = self.server.as_mut().ok_or("server is down")?;
                server.deposit(&name, &payload).map_err(|e| e.to_string())?;
                self.ingressed += 1;
            }
            Action::Deliver { endpoint, seq } => {
                let d = self
                    .net
                    .take_message(endpoint, *seq)
                    .ok_or_else(|| format!("no pending message ({endpoint}, #{seq})"))?;
                if *endpoint == self.subscriber.endpoint {
                    self.subscriber.receive(&self.net, "s1", d.msg, now)?;
                } else if endpoint == "s1" {
                    // a message reaching a crashed server is lost
                    if let Some(server) = self.server.as_mut() {
                        server
                            .handle_network_message(&d.from, d.at, d.msg)
                            .map_err(|e| e.to_string())?;
                    }
                } else {
                    return Err(format!("no handler for endpoint {endpoint}"));
                }
            }
            Action::Drop { endpoint, seq } => {
                self.net
                    .drop_message(endpoint, *seq)
                    .ok_or_else(|| format!("no pending message ({endpoint}, #{seq})"))?;
            }
            Action::Duplicate { endpoint, seq } => {
                self.net
                    .duplicate_message(endpoint, *seq)
                    .ok_or_else(|| format!("no pending message ({endpoint}, #{seq})"))?;
            }
            Action::RetryFire { .. } => {
                let server = self.server.as_mut().ok_or("server is down")?;
                server.retry_fire().map_err(|e| e.to_string())?;
            }
            Action::Crash { .. } => {
                let server = self.server.take().ok_or("already crashed")?;
                self.crash_digest = server.state_digest();
                // the Server is dropped here: in-memory retry state and
                // inboxes die with it, the MemFs store survives
            }
            Action::Restart { .. } => {
                if self.server.is_some() {
                    return Err("server is not down".to_string());
                }
                let mut server =
                    Server::open_existing("s1", self.clock.clone(), self.store.clone())
                        .map_err(|e| e.to_string())?
                        .with_network(self.net.clone())
                        .with_reliable_delivery(mc_retry_policy(), 7);
                server.backfill_unacked().map_err(|e| e.to_string())?;
                self.server = Some(server);
            }
            other => return Err(format!("{other} not part of this scenario")),
        }
        self.audit();
        Ok(())
    }

    fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        let server_digest = match &self.server {
            Some(s) => s.state_digest(),
            None => self.crash_digest,
        };
        bytes.extend_from_slice(&server_digest.to_le_bytes());
        bytes.push(self.server.is_some() as u8);
        bytes.extend_from_slice(&self.net.in_flight_digest().to_le_bytes());
        bytes.extend_from_slice(&self.subscriber.digest().to_le_bytes());
        bytes.push(self.ingressed as u8);
        fnv1a64(&bytes)
    }

    fn check(&self) -> Result<(), String> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        let Some(server) = self.server.as_ref() else {
            return Ok(()); // durable invariants re-checked at restart
        };
        // no dangling receipt: a delivery receipt exists only for a file
        // the subscriber actually applied (receipts are written on ack)
        for name in self.marks(server) {
            if !self.subscriber.seen.contains(&name) {
                return Err(format!(
                    "dangling receipt: {name} recorded as delivered to {} but never received",
                    self.subscriber.name
                ));
            }
        }
        // quiescence completeness: nothing in flight, nothing unacked,
        // no abandoned deliveries → every deposited file was applied
        // and receipted
        let (_, _, exhausted) = server.reliability_counters();
        if self.ingressed == self.files.len()
            && self.net.pending_messages().is_empty()
            && server.unacked_count() == 0
            && exhausted == 0
        {
            let marks = self.marks(server);
            for (name, _) in &self.files {
                if !self.subscriber.seen.contains(name) {
                    return Err(format!(
                        "incomplete at quiescence: {name} was deposited but never delivered"
                    ));
                }
                if !marks.contains(name) {
                    return Err(format!(
                        "incomplete at quiescence: {name} delivered but never receipted"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Scenario 3: two servers, one failover-policy feed group homed on
/// `s1` with `s2` standing by, a registered subscriber, and a directory
/// that promotes on [`Cluster::declare_failed`]. Actions interleave
/// ingress, the crash, the failure declaration, and every control- and
/// data-plane message delivery — enough reordering freedom to race an
/// in-flight [`ClusterMsg::Replicate`] against backfill marking. With
/// the replica epoch fence disabled the checker finds that race as a
/// duplicate wire delivery; with the fence (the default) it proves the
/// race closed within the same bounds.
pub struct ClusterFailover {
    clock: Arc<SimClock>,
    net: Arc<SimNetwork>,
    cluster: Option<Cluster>,
    subscriber: SubModel,
    files: Vec<(String, Vec<u8>)>,
    ingressed: usize,
    fence: bool,
    crashed: bool,
    declared: bool,
    /// `s1`'s receipt digest frozen at crash time: the dead store still
    /// seeds backfill, so it stays part of the state identity.
    crash_digest: u64,
    /// Directory-epoch watermark (monotonicity invariant).
    epoch_floor: u64,
    /// Per-member view-epoch watermarks for the `SNMP` group.
    view_floor: BTreeMap<String, u64>,
    violation: Option<String>,
}

impl ClusterFailover {
    /// Build the scenario; `fence` wires through to
    /// [`Cluster::set_replica_fence`].
    pub fn new(n_files: usize, fence: bool) -> ClusterFailover {
        let mut m = ClusterFailover {
            clock: SimClock::starting_at(START),
            net: mc_net(),
            cluster: None,
            subscriber: SubModel::new("alpha"),
            files: ingress_files(n_files),
            ingressed: 0,
            fence,
            crashed: false,
            declared: false,
            crash_digest: 0,
            epoch_floor: 0,
            view_floor: BTreeMap::new(),
            violation: None,
        };
        m.reset();
        m
    }

    fn cluster(&self) -> &Cluster {
        self.cluster.as_ref().expect("cluster is built")
    }

    /// Post-action bookkeeping: directory and view epochs must never
    /// move backwards.
    fn audit(&mut self) {
        let cluster = self.cluster.as_ref().expect("cluster is built");
        let epoch = cluster.directory().epoch();
        if epoch < self.epoch_floor {
            self.violation = Some(format!(
                "directory epoch moved backwards: {epoch} < {}",
                self.epoch_floor
            ));
            return;
        }
        self.epoch_floor = epoch;
        for name in cluster.member_names() {
            if let Some((_, view_epoch)) = cluster.view_of(&name, "SNMP") {
                let floor = self.view_floor.entry(name.clone()).or_insert(0);
                if view_epoch < *floor {
                    self.violation = Some(format!(
                        "{name}'s view epoch moved backwards: {view_epoch} < {floor}"
                    ));
                    return;
                }
                *floor = view_epoch;
            }
        }
    }
}

impl Model for ClusterFailover {
    fn reset(&mut self) {
        self.clock = SimClock::starting_at(START);
        self.net = mc_net();
        let cfg = mc_config();
        let mut cluster = Cluster::new(
            cfg.clone(),
            self.net.clone(),
            TimeSpan::from_secs(1),
            TimeSpan::from_secs(5),
        );
        for name in ["s1", "s2"] {
            let server = Server::new(
                name,
                cfg.clone(),
                self.clock.clone(),
                MemFs::shared(self.clock.clone()),
            )
            .expect("member builds")
            .with_network(self.net.clone());
            cluster.add_server(server).expect("member joins");
        }
        cluster.assign("SNMP", "s1", &["s2"]).expect("group placed");
        cluster
            .register_subscriber(&sub_def(&self.subscriber.name, &["SNMP/CPU"]))
            .expect("subscriber registers");
        cluster.set_replica_fence(self.fence);
        self.cluster = Some(cluster);
        self.subscriber.clear();
        self.ingressed = 0;
        self.crashed = false;
        self.declared = false;
        self.crash_digest = 0;
        self.epoch_floor = 0;
        self.view_floor.clear();
        self.violation = None;
    }

    fn enabled(&self) -> Vec<Action> {
        let mut out = Vec::new();
        if self.ingressed < self.files.len() {
            out.push(Action::Ingress {
                index: self.ingressed,
            });
        }
        if !self.crashed {
            out.push(Action::Crash {
                server: "s1".to_string(),
            });
        } else if !self.declared {
            out.push(Action::DeclareFailed {
                server: "s1".to_string(),
            });
        }
        for pm in self.net.pending_messages() {
            out.push(Action::Deliver {
                endpoint: pm.endpoint,
                seq: pm.seq,
            });
        }
        out
    }

    fn apply(&mut self, action: &Action) -> Result<(), String> {
        let now = self.clock.now();
        match action {
            Action::Ingress { index } => {
                if *index != self.ingressed {
                    return Err(format!("ingress #{index} out of order"));
                }
                let (name, payload) = self.files[*index].clone();
                self.cluster
                    .as_mut()
                    .expect("cluster is built")
                    .route_deposit(&name, &payload, now)
                    .map_err(|e| e.to_string())?;
                self.ingressed += 1;
            }
            Action::Crash { server } => {
                if self.crashed {
                    return Err("already crashed".to_string());
                }
                let cluster = self.cluster.as_mut().expect("cluster is built");
                self.crash_digest = cluster
                    .server(server)
                    .map(|s| s.receipts().state_digest())
                    .unwrap_or(0);
                cluster.kill(server).map_err(|e| e.to_string())?;
                self.crashed = true;
            }
            Action::DeclareFailed { server } => {
                if !self.crashed || self.declared {
                    return Err("failure declaration not applicable".to_string());
                }
                self.cluster
                    .as_mut()
                    .expect("cluster is built")
                    .declare_failed(server, now)
                    .map_err(|e| e.to_string())?;
                self.declared = true;
            }
            Action::Deliver { endpoint, seq } => {
                let d = self
                    .net
                    .take_message(endpoint, *seq)
                    .ok_or_else(|| format!("no pending message ({endpoint}, #{seq})"))?;
                let cluster = self.cluster.as_mut().expect("cluster is built");
                if endpoint == DIRECTORY_ENDPOINT {
                    if let Message::Cluster(msg) = d.msg {
                        cluster
                            .handle_directory_msg(&d.from, d.at, msg, now)
                            .map_err(|e| e.to_string())?;
                    }
                } else if let Some(member) = endpoint.strip_suffix(".cluster") {
                    if let Message::Cluster(msg) = d.msg {
                        cluster
                            .handle_member_msg(member, msg, now)
                            .map_err(|e| e.to_string())?;
                    }
                } else if *endpoint == self.subscriber.endpoint {
                    self.subscriber.receive(&self.net, "s1", d.msg, now)?;
                } else if endpoint == "s1" || endpoint == "s2" {
                    // a server's own (ack) endpoint: nothing reliable in
                    // this scenario, the message is discarded
                } else {
                    return Err(format!("no handler for endpoint {endpoint}"));
                }
            }
            other => return Err(format!("{other} not part of this scenario")),
        }
        self.audit();
        Ok(())
    }

    fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&self.cluster().state_digest().to_le_bytes());
        bytes.extend_from_slice(&self.crash_digest.to_le_bytes());
        bytes.extend_from_slice(&self.net.in_flight_digest().to_le_bytes());
        bytes.extend_from_slice(&self.subscriber.digest().to_le_bytes());
        bytes.push(self.ingressed as u8);
        bytes.push(u8::from(self.crashed) | (u8::from(self.declared) << 1));
        fnv1a64(&bytes)
    }

    fn check(&self) -> Result<(), String> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        let cluster = self.cluster();
        // exactly-once: no file reaches the subscriber's wire twice
        for (name, n) in &self.subscriber.wire {
            if *n > 1 {
                return Err(format!(
                    "{name} delivered {n} times to {} — exactly-once violated",
                    self.subscriber.name
                ));
            }
        }
        // at most one live member may believe it homes the group
        let claimants: Vec<String> = cluster
            .member_names()
            .into_iter()
            .filter(|m| {
                cluster.server(m).is_some()
                    && cluster
                        .view_of(m, "SNMP")
                        .is_some_and(|(home, _)| home == *m)
            })
            .collect();
        if claimants.len() > 1 {
            return Err(format!("two live homes for group SNMP: {claimants:?}"));
        }
        // no dangling receipt: every delivery mark at a live member is a
        // file the subscriber applied or one still on the wire to it
        // (push receipts record the send, not an ack)
        let in_flight: BTreeSet<String> = self
            .net
            .pending_messages()
            .into_iter()
            .filter(|pm| pm.endpoint == self.subscriber.endpoint)
            .filter_map(|pm| match pm.msg {
                Message::Subscriber(SubscriberMsg::FileDelivered { dest_path, .. }) => {
                    Some(base_name(&dest_path))
                }
                Message::Subscriber(SubscriberMsg::FileAvailable { staged_path, .. }) => {
                    Some(base_name(&staged_path))
                }
                _ => None,
            })
            .collect();
        for member in cluster.member_names() {
            let Some(server) = cluster.server(&member) else {
                continue;
            };
            for mark in server.receipts().deliveries_since(0) {
                if mark.subscriber == self.subscriber.name
                    && !self.subscriber.seen.contains(&mark.file_name)
                    && !in_flight.contains(&mark.file_name)
                {
                    return Err(format!(
                        "dangling receipt at {member}: {} marked delivered to {} but neither \
                         applied nor in flight",
                        mark.file_name, self.subscriber.name
                    ));
                }
            }
        }
        // quiescence completeness: all ingress done, nothing in flight,
        // and any crash already declared → every deposit reached the
        // subscriber exactly once
        if self.ingressed == self.files.len()
            && (!self.crashed || self.declared)
            && self.net.pending_messages().is_empty()
        {
            for (name, _) in &self.files {
                if !self.subscriber.seen.contains(name) {
                    return Err(format!(
                        "incomplete at quiescence: {name} was deposited but never delivered"
                    ));
                }
            }
        }
        Ok(())
    }
}
