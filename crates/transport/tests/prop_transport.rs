//! Property tests: batchers never lose or duplicate files, message
//! encoding roundtrips, and the network preserves causality.

use bistro_base::{FileId, TimePoint, TimeSpan};
use bistro_config::BatchSpec;
use bistro_transport::messages::{Message, SourceMsg, SubscriberMsg};
use bistro_transport::{AdaptiveBatcher, Batcher, LinkSpec, SimNetwork};
use proptest::prelude::*;

/// Arbitrary arrival schedule: (gap_ms to previous event, is_punctuation).
fn schedule() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..600_000, prop::bool::weighted(0.1)), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every file pushed into a Batcher comes out in
    /// exactly one batch, in order, regardless of spec and punctuation.
    #[test]
    fn batcher_conserves_files(
        sched in schedule(),
        count in proptest::option::of(1u32..10),
        window_s in proptest::option::of(30u64..3600),
    ) {
        let spec = BatchSpec { count, window: window_s.map(TimeSpan::from_secs) };
        let mut b = Batcher::new(spec);
        let mut t = TimePoint::from_secs(1_000);
        let mut emitted: Vec<FileId> = Vec::new();
        let mut pushed: Vec<FileId> = Vec::new();
        for (i, &(gap_ms, punct)) in sched.iter().enumerate() {
            t += TimeSpan::from_millis(gap_ms);
            // fire lapsed windows first, as the server's tick would
            while let Some(dl) = b.window_deadline() {
                if dl <= t {
                    if let Some(batch) = b.on_tick(dl) {
                        emitted.extend(batch.files);
                    }
                } else { break; }
            }
            let id = FileId(i as u64);
            pushed.push(id);
            if let Some(batch) = b.on_file(id, t) {
                emitted.extend(batch.files);
            }
            if punct {
                if let Some(batch) = b.on_punctuation(t) {
                    emitted.extend(batch.files);
                }
            }
        }
        // final flush: punctuation closes whatever is open
        if let Some(batch) = b.on_punctuation(t + TimeSpan::from_hours(24)) {
            emitted.extend(batch.files);
        }
        prop_assert_eq!(emitted, pushed);
    }

    /// Same conservation law for the adaptive batcher.
    #[test]
    fn adaptive_batcher_conserves_files(sched in schedule()) {
        let mut b = AdaptiveBatcher::new(4.0, TimeSpan::from_mins(10));
        let mut t = TimePoint::from_secs(1_000);
        let mut emitted: Vec<FileId> = Vec::new();
        let mut pushed: Vec<FileId> = Vec::new();
        for (i, &(gap_ms, _)) in sched.iter().enumerate() {
            t += TimeSpan::from_millis(gap_ms);
            while let Some(dl) = b.tick_deadline() {
                if dl <= t {
                    if let Some(batch) = b.on_tick(dl) {
                        emitted.extend(batch.files);
                    }
                } else { break; }
            }
            let id = FileId(i as u64);
            pushed.push(id);
            if let Some(batch) = b.on_file(id, t) {
                emitted.extend(batch.files);
            }
        }
        if let Some(batch) = b.on_tick(t + TimeSpan::from_hours(24)) {
            emitted.extend(batch.files);
        }
        prop_assert_eq!(emitted, pushed);
    }

    /// Message encode/decode roundtrips for arbitrary field values.
    #[test]
    fn message_roundtrip(
        path in "[A-Za-z0-9_./-]{1,60}",
        size in any::<u64>(),
        file in any::<u64>(),
        feed in "[A-Z/]{1,20}",
    ) {
        let msgs = vec![
            Message::Source(SourceMsg::Deposited { path: path.clone(), size }),
            Message::Subscriber(SubscriberMsg::FileDelivered {
                file: FileId(file),
                feed: feed.clone(),
                dest_path: path.clone(),
                size,
            }),
            Message::Subscriber(SubscriberMsg::FileAvailable {
                file: FileId(file),
                feed,
                staged_path: path,
                size,
            }),
        ];
        for m in msgs {
            prop_assert_eq!(Message::decode(&m.encode()).unwrap(), m);
        }
    }

    /// The network never delivers a message before it was sent, and FIFO
    /// links preserve per-link send order.
    #[test]
    fn network_causality(
        sends in proptest::collection::vec((0u64..1000, 1u64..1_000_000), 1..30),
    ) {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000,
            latency: TimeSpan::from_millis(7),
        });
        let mut sorted = sends.clone();
        sorted.sort();
        let mut arrivals = Vec::new();
        for (t_s, size) in sorted {
            let sent = TimePoint::from_secs(t_s);
            let at = net.send(sent, "a", "b",
                Message::Source(SourceMsg::Deposited { path: "x".into(), size }));
            prop_assert!(at > sent);
            arrivals.push(at);
        }
        // FIFO: arrivals are non-decreasing in send order
        for w in arrivals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // and recv_ready at the max arrival drains everything
        let last = *arrivals.iter().max().unwrap();
        prop_assert_eq!(net.recv_ready("b", last).len(), arrivals.len());
    }
}
