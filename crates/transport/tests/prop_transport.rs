//! Property tests: batchers never lose or duplicate files, message
//! encoding roundtrips, and the network preserves causality.

use bistro_base::prop::{self, Runner};
use bistro_base::rng::Rng;
use bistro_base::{prop_assert, prop_assert_eq, FileId, TimePoint, TimeSpan};
use bistro_config::BatchSpec;
use bistro_transport::messages::{Message, SourceMsg, SubscriberMsg};
use bistro_transport::{AdaptiveBatcher, Batcher, LinkSpec, SimNetwork};

/// Arbitrary arrival schedule: (gap_ms to previous event, is_punctuation).
fn schedule(rng: &mut Rng) -> Vec<(u64, bool)> {
    prop::vec_of(rng, 1..=79, |r| {
        (r.gen_range(0u64..600_000), r.gen_bool(0.1))
    })
}

/// Conservation: every file pushed into a Batcher comes out in
/// exactly one batch, in order, regardless of spec and punctuation.
#[test]
fn batcher_conserves_files() {
    Runner::new("batcher_conserves_files").cases(64).run(
        |rng| {
            (
                schedule(rng),
                prop::option_of(rng, |r| r.gen_range(1u32..10)),
                prop::option_of(rng, |r| r.gen_range(30u64..3600)),
            )
        },
        |(sched, count, window_s)| {
            if sched.is_empty() || *count == Some(0) || window_s.is_some_and(|w| w == 0) {
                return Ok(()); // shrunk out of domain
            }
            let spec = BatchSpec {
                count: *count,
                window: window_s.map(TimeSpan::from_secs),
            };
            let mut b = Batcher::new(spec);
            let mut t = TimePoint::from_secs(1_000);
            let mut emitted: Vec<FileId> = Vec::new();
            let mut pushed: Vec<FileId> = Vec::new();
            for (i, &(gap_ms, punct)) in sched.iter().enumerate() {
                t += TimeSpan::from_millis(gap_ms);
                // fire lapsed windows first, as the server's tick would
                while let Some(dl) = b.window_deadline() {
                    if dl <= t {
                        if let Some(batch) = b.on_tick(dl) {
                            emitted.extend(batch.files);
                        }
                    } else {
                        break;
                    }
                }
                let id = FileId(i as u64);
                pushed.push(id);
                if let Some(batch) = b.on_file(id, t) {
                    emitted.extend(batch.files);
                }
                if punct {
                    if let Some(batch) = b.on_punctuation(t) {
                        emitted.extend(batch.files);
                    }
                }
            }
            // final flush: punctuation closes whatever is open
            if let Some(batch) = b.on_punctuation(t + TimeSpan::from_hours(24)) {
                emitted.extend(batch.files);
            }
            prop_assert_eq!(emitted, pushed.clone());
            Ok(())
        },
    );
}

/// Same conservation law for the adaptive batcher.
#[test]
fn adaptive_batcher_conserves_files() {
    Runner::new("adaptive_batcher_conserves_files")
        .cases(64)
        .run(schedule, |sched| {
            if sched.is_empty() {
                return Ok(());
            }
            let mut b = AdaptiveBatcher::new(4.0, TimeSpan::from_mins(10));
            let mut t = TimePoint::from_secs(1_000);
            let mut emitted: Vec<FileId> = Vec::new();
            let mut pushed: Vec<FileId> = Vec::new();
            for (i, &(gap_ms, _)) in sched.iter().enumerate() {
                t += TimeSpan::from_millis(gap_ms);
                while let Some(dl) = b.tick_deadline() {
                    if dl <= t {
                        if let Some(batch) = b.on_tick(dl) {
                            emitted.extend(batch.files);
                        }
                    } else {
                        break;
                    }
                }
                let id = FileId(i as u64);
                pushed.push(id);
                if let Some(batch) = b.on_file(id, t) {
                    emitted.extend(batch.files);
                }
            }
            if let Some(batch) = b.on_tick(t + TimeSpan::from_hours(24)) {
                emitted.extend(batch.files);
            }
            prop_assert_eq!(emitted, pushed.clone());
            Ok(())
        });
}

/// Message encode/decode roundtrips for arbitrary field values.
#[test]
fn message_roundtrip() {
    Runner::new("message_roundtrip").cases(64).run(
        |rng| {
            (
                prop::string(rng, "A-Za-z0-9_./-", 1..=60),
                rng.next_u64(),
                rng.next_u64(),
                prop::string(rng, "A-Z/", 1..=20),
            )
        },
        |(path, size, file, feed)| {
            let (size, file) = (*size, *file);
            let msgs = vec![
                Message::Source(SourceMsg::Deposited {
                    path: path.clone(),
                    size,
                }),
                Message::Subscriber(SubscriberMsg::FileDelivered {
                    file: FileId(file),
                    feed: feed.clone(),
                    dest_path: path.clone(),
                    size,
                }),
                Message::Subscriber(SubscriberMsg::FileAvailable {
                    file: FileId(file),
                    feed: feed.clone(),
                    staged_path: path.clone(),
                    size,
                }),
            ];
            for m in msgs {
                prop_assert_eq!(Message::decode(&m.encode()).unwrap(), m);
            }
            Ok(())
        },
    );
}

/// The network never delivers a message before it was sent, and FIFO
/// links preserve per-link send order.
#[test]
fn network_causality() {
    Runner::new("network_causality").cases(64).run(
        |rng| {
            prop::vec_of(rng, 1..=29, |r| {
                (r.gen_range(0u64..1000), r.gen_range(1u64..1_000_000))
            })
        },
        |sends| {
            if sends.is_empty() || sends.iter().any(|&(_, size)| size == 0) {
                return Ok(());
            }
            let net = SimNetwork::new(LinkSpec {
                bandwidth: 1_000_000,
                latency: TimeSpan::from_millis(7),
            });
            let mut sorted = sends.clone();
            sorted.sort();
            let mut arrivals = Vec::new();
            for (t_s, size) in sorted {
                let sent = TimePoint::from_secs(t_s);
                let at = net.send(
                    sent,
                    "a",
                    "b",
                    Message::Source(SourceMsg::Deposited {
                        path: "x".into(),
                        size,
                    }),
                );
                prop_assert!(at > sent);
                arrivals.push(at);
            }
            // FIFO: arrivals are non-decreasing in send order
            for w in arrivals.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            // and recv_ready at the max arrival drains everything
            let last = *arrivals.iter().max().unwrap();
            prop_assert_eq!(net.recv_ready("b", last).len(), arrivals.len());
            Ok(())
        },
    );
}
