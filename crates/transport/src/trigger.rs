//! Trigger invocation (paper §4.1).
//!
//! Subscribers register a lightweight program to be invoked when new
//! data is available — either *remotely* on the subscriber's host at
//! delivery, or *locally* on the Bistro server. In this reproduction the
//! invocation is recorded in a [`TriggerLog`] (the simulation's analogue
//! of fork/exec); the command string supports the same expansion
//! specifiers as the rest of the system.

use bistro_base::sync::Mutex;
use bistro_base::{BatchId, FileId, TimePoint};
use bistro_config::{TriggerDef, TriggerKind};

/// Context available for command expansion.
#[derive(Clone, Debug, Default)]
pub struct TriggerContext<'a> {
    /// `%N` — the feed name.
    pub feed: &'a str,
    /// `%f` — the delivered file's destination path (per-file triggers).
    pub file_path: &'a str,
    /// `%b` — the batch id (batch triggers).
    pub batch: Option<BatchId>,
    /// `%c` — the number of files in the batch.
    pub count: usize,
}

/// Expand `%N`, `%f`, `%b`, `%c` and `%%` in a trigger command.
pub fn expand_command(command: &str, ctx: &TriggerContext<'_>) -> String {
    let mut out = String::with_capacity(command.len() + 16);
    let mut chars = command.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('N') => out.push_str(ctx.feed),
            Some('f') => out.push_str(ctx.file_path),
            Some('b') => {
                if let Some(b) = ctx.batch {
                    out.push_str(&b.raw().to_string());
                }
            }
            Some('c') => out.push_str(&ctx.count.to_string()),
            Some('%') => out.push('%'),
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

/// One recorded trigger invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Invocation {
    /// When it fired.
    pub at: TimePoint,
    /// Which subscriber it fired for.
    pub subscriber: String,
    /// Local (on the server) or remote (on the subscriber host).
    pub kind: TriggerKind,
    /// The fully expanded command line.
    pub command: String,
    /// Files the invocation covers.
    pub files: Vec<FileId>,
}

/// Thread-safe record of trigger invocations.
#[derive(Debug, Default)]
pub struct TriggerLog {
    entries: Mutex<Vec<Invocation>>,
}

impl TriggerLog {
    /// Fresh empty log.
    pub fn new() -> TriggerLog {
        TriggerLog::default()
    }

    /// Fire a subscriber's trigger, expanding its command.
    pub fn fire(
        &self,
        subscriber: &str,
        def: &TriggerDef,
        ctx: &TriggerContext<'_>,
        files: Vec<FileId>,
        at: TimePoint,
    ) {
        let command = expand_command(&def.command, ctx);
        self.entries.lock().push(Invocation {
            at,
            subscriber: subscriber.to_string(),
            kind: def.kind,
            command,
            files,
        });
    }

    /// All invocations so far.
    pub fn entries(&self) -> Vec<Invocation> {
        self.entries.lock().clone()
    }

    /// Number of invocations.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if no triggers have fired.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion() {
        let ctx = TriggerContext {
            feed: "SNMP/MEMORY",
            file_path: "incoming/x.gz",
            batch: Some(BatchId(17)),
            count: 3,
        };
        assert_eq!(
            expand_command("load %N %f batch=%b n=%c 100%%", &ctx),
            "load SNMP/MEMORY incoming/x.gz batch=17 n=3 100%"
        );
    }

    #[test]
    fn expansion_edge_cases() {
        let ctx = TriggerContext::default();
        assert_eq!(expand_command("", &ctx), "");
        assert_eq!(expand_command("%", &ctx), "%");
        assert_eq!(expand_command("%q", &ctx), "%q"); // unknown passes through
        assert_eq!(expand_command("%b", &ctx), ""); // no batch id
    }

    #[test]
    fn log_records() {
        let log = TriggerLog::new();
        let def = TriggerDef {
            kind: TriggerKind::Remote,
            command: "ingest %N".to_string(),
        };
        log.fire(
            "warehouse",
            &def,
            &TriggerContext {
                feed: "SNMP/CPU",
                ..Default::default()
            },
            vec![FileId(1), FileId(2)],
            TimePoint::from_secs(100),
        );
        assert_eq!(log.len(), 1);
        let e = &log.entries()[0];
        assert_eq!(e.command, "ingest SNMP/CPU");
        assert_eq!(e.files.len(), 2);
        assert_eq!(e.kind, TriggerKind::Remote);
    }
}
