//! Protocol messages.
//!
//! Encoded with the `bistro-base` codec so the simulated network carries
//! realistic byte sizes; a Bistro relay (a server subscribing to another
//! server) exchanges exactly these messages.

use bistro_base::{BatchId, ByteReader, ByteWriter, CodecError, FileId, TimePoint};

/// Messages a data source (or its lightweight client library) sends to a
/// Bistro server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceMsg {
    /// "I have deposited a file in your landing directory."
    Deposited {
        /// Path within the landing directory.
        path: String,
        /// Payload size in bytes.
        size: u64,
    },
    /// End-of-batch punctuation: every file of this source for the given
    /// interval has been deposited (§4.1: "data source specific
    /// end-of-batch markers perform a function very similar to stream
    /// punctuations").
    EndOfBatch {
        /// The source's name.
        source: String,
        /// Start of the covered interval.
        interval_start: TimePoint,
        /// End of the covered interval.
        interval_end: TimePoint,
    },
}

/// Messages a Bistro server sends to a subscriber.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubscriberMsg {
    /// Push delivery: the file body follows (body travels out of band in
    /// the simulation; `size` accounts for its cost).
    FileDelivered {
        /// The file's receipt id.
        file: FileId,
        /// The feed it belongs to.
        feed: String,
        /// Destination path at the subscriber.
        dest_path: String,
        /// Payload size.
        size: u64,
    },
    /// Hybrid push-pull: the file is available for retrieval.
    FileAvailable {
        /// The file's receipt id.
        file: FileId,
        /// The feed it belongs to.
        feed: String,
        /// Path on the server the subscriber may fetch.
        staged_path: String,
        /// Payload size.
        size: u64,
    },
    /// A batch closed: fire the subscriber's trigger.
    BatchComplete {
        /// Batch identity.
        batch: BatchId,
        /// The feed the batch belongs to.
        feed: String,
        /// Files in the batch.
        files: Vec<FileId>,
        /// Why the batch closed.
        reason: BatchCloseReason,
    },
}

/// Why a batch boundary was emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchCloseReason {
    /// The configured file count was reached.
    Count,
    /// The configured time window elapsed.
    Window,
    /// The source sent end-of-batch punctuation.
    Punctuation,
}

/// The acknowledgement/retry envelope for reliable delivery (§4.2).
///
/// A server that delivers reliably wraps each subscriber message in an
/// [`ReliableMsg::Attempt`] carrying an attempt number; the subscriber
/// answers every attempt with an [`ReliableMsg::Ack`] echoing the
/// `(file, attempt)` pair, and dedupes redeliveries on its side. The
/// server writes the `delivery_receipt` only when the ack arrives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReliableMsg {
    /// Server → subscriber: delivery attempt `attempt` of `inner`.
    Attempt {
        /// 1-based attempt number (bumped on every retransmission).
        attempt: u32,
        /// The wrapped delivery or notification.
        inner: SubscriberMsg,
    },
    /// Subscriber → server: `file` received; echoes the attempt id so
    /// the server can match it against its unacked-send table.
    Ack {
        /// The acknowledged file.
        file: FileId,
        /// The attempt number being acknowledged.
        attempt: u32,
    },
}

/// Cluster control-plane and server↔server data-channel messages.
///
/// The directory protocol (`DirLookup`/`DirHome`/`DirAssign`) maps feed
/// groups to home servers and fences every assignment with an epoch so a
/// stale home can be told apart from the current one after a failover.
/// `Replicate` is the server-to-server channel a failover-policy feed's
/// deposits travel on; `BackfillPage` streams the failed home's delivery
/// receipts (positioned by a receipt-WAL sequence cursor) to the new
/// home so re-homed subscribers are backfilled exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterMsg {
    /// Server → directory: liveness beacon.
    Heartbeat {
        /// The sending server's name.
        server: String,
        /// The directory epoch the sender last observed.
        epoch: u64,
    },
    /// Any node → directory: who homes this feed group?
    DirLookup {
        /// Feed-group name (top-level feed-name prefix).
        group: String,
    },
    /// Directory → asker: current home for the group.
    DirHome {
        /// Feed-group name.
        group: String,
        /// Home server name (empty = unassigned).
        home: String,
        /// Assignment epoch.
        epoch: u64,
    },
    /// Directory → members: the group was (re-)assigned — a failover
    /// bumps the epoch, and members discard assignments with a stale one.
    DirAssign {
        /// Feed-group name.
        group: String,
        /// New home server name.
        home: String,
        /// Assignment epoch.
        epoch: u64,
    },
    /// Home → standby: replicate one deposited file (the server-to-server
    /// data channel backing the `failover` policy).
    Replicate {
        /// Feed-group the file classified into.
        group: String,
        /// Deposited filename (landing-relative).
        name: String,
        /// File body.
        payload: Vec<u8>,
        /// The group's directory epoch at the sending home. A receiver
        /// whose view of the group has a *higher* epoch rejects the
        /// replica: it was sent by a deposed home, and applying it after
        /// backfill marking would re-deliver the file (the in-flight
        /// replicate vs. backfill race found by `bistro-mc`).
        epoch: u64,
    },
    /// New home → directory: request the failed home's delivery receipts
    /// for one subscriber, starting at a receipt-WAL sequence cursor.
    BackfillRequest {
        /// Feed-group being re-homed.
        group: String,
        /// Subscriber whose delivered-set is wanted.
        subscriber: String,
        /// Resume cursor: receipt-WAL sequence to start from.
        from_seq: u64,
    },
    /// Directory → new home: one page of the failed home's delivery
    /// receipts (file *names* — receipt ids are store-local).
    BackfillPage {
        /// Feed-group being re-homed.
        group: String,
        /// Subscriber the page belongs to.
        subscriber: String,
        /// Delivered file names in this page.
        delivered: Vec<String>,
        /// Cursor for the next page.
        next_seq: u64,
        /// True on the final page: re-homing may complete.
        done: bool,
    },
}

/// Shared-delivery-tree messages: one delivery per subscriber *group* to
/// its relay node, acknowledged with a compact member-coverage bitmap.
///
/// With a million subscribers partitioned into groups, the feed's home
/// server sends one [`GroupMsg::Deliver`] per group instead of one
/// attempt per member; the relay fans out locally and answers with a
/// [`GroupMsg::Ack`] describing *which members* it has covered so far
/// (bitmap over the group's sorted member list, plus a high-watermark
/// counting the fully-delivered prefix). Partial coverage keeps the
/// delivery outstanding upstream; retries double as coverage refreshes
/// and the relay backfills stragglers from its own store (cascaded
/// backfill).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupMsg {
    /// Home server → relay: deliver `file` once on behalf of the whole
    /// group. The body travels out of band (the relay pulls it from the
    /// upstream staging store); `size` accounts for its wire cost.
    Deliver {
        /// Subscriber-group name.
        group: String,
        /// The file's receipt id *at the sender* (store-local).
        file: FileId,
        /// The file's landing name — stable across stores.
        file_name: String,
        /// Payload size in bytes.
        size: u64,
        /// 1-based attempt number (bumped on every retransmission).
        attempt: u32,
    },
    /// Relay → home server: member-coverage report for `(group, file)`.
    /// Bit `i` of `bits` (LSB-first within each byte) is set when member
    /// `i` of the group's sorted member list has the file; `watermark`
    /// counts the fully-covered member prefix. A complete bitmap
    /// finishes the delivery upstream; a partial one leaves it
    /// outstanding for retry-driven cascaded backfill.
    Ack {
        /// Subscriber-group name.
        group: String,
        /// The acknowledged file (sender-local id, echoed back).
        file: FileId,
        /// Member-coverage bitmap over the sorted member list.
        bits: Vec<u8>,
        /// Count of leading members known fully delivered.
        watermark: u64,
    },
}

/// Any protocol message (what travels on a [`crate::net::SimNetwork`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Source → server.
    Source(SourceMsg),
    /// Server → subscriber.
    Subscriber(SubscriberMsg),
    /// The reliable-delivery envelope (either direction).
    Reliable(ReliableMsg),
    /// Cluster control plane / server↔server channel.
    Cluster(ClusterMsg),
    /// Shared delivery trees: group fan-out via relay nodes.
    Group(GroupMsg),
}

impl BatchCloseReason {
    fn tag(self) -> u8 {
        match self {
            BatchCloseReason::Count => 0,
            BatchCloseReason::Window => 1,
            BatchCloseReason::Punctuation => 2,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(BatchCloseReason::Count),
            1 => Some(BatchCloseReason::Window),
            2 => Some(BatchCloseReason::Punctuation),
            _ => None,
        }
    }
}

const TAG_DEPOSITED: u8 = 1;
const TAG_EOB: u8 = 2;
const TAG_DELIVERED: u8 = 3;
const TAG_AVAILABLE: u8 = 4;
const TAG_BATCH: u8 = 5;
const TAG_ATTEMPT: u8 = 6;
const TAG_ACK: u8 = 7;
const TAG_HEARTBEAT: u8 = 8;
const TAG_DIR_LOOKUP: u8 = 9;
const TAG_DIR_HOME: u8 = 10;
const TAG_DIR_ASSIGN: u8 = 11;
const TAG_REPLICATE: u8 = 12;
const TAG_BACKFILL_REQ: u8 = 13;
const TAG_BACKFILL_PAGE: u8 = 14;
const TAG_GROUP_DELIVER: u8 = 15;
const TAG_GROUP_ACK: u8 = 16;

impl Message {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Message::Source(SourceMsg::Deposited { path, size }) => {
                w.put_u8(TAG_DEPOSITED);
                w.put_str(path);
                w.put_varint(*size);
            }
            Message::Source(SourceMsg::EndOfBatch {
                source,
                interval_start,
                interval_end,
            }) => {
                w.put_u8(TAG_EOB);
                w.put_str(source);
                w.put_u64(interval_start.as_micros());
                w.put_u64(interval_end.as_micros());
            }
            Message::Subscriber(SubscriberMsg::FileDelivered {
                file,
                feed,
                dest_path,
                size,
            }) => {
                w.put_u8(TAG_DELIVERED);
                w.put_varint(file.raw());
                w.put_str(feed);
                w.put_str(dest_path);
                w.put_varint(*size);
            }
            Message::Subscriber(SubscriberMsg::FileAvailable {
                file,
                feed,
                staged_path,
                size,
            }) => {
                w.put_u8(TAG_AVAILABLE);
                w.put_varint(file.raw());
                w.put_str(feed);
                w.put_str(staged_path);
                w.put_varint(*size);
            }
            Message::Subscriber(SubscriberMsg::BatchComplete {
                batch,
                feed,
                files,
                reason,
            }) => {
                w.put_u8(TAG_BATCH);
                w.put_varint(batch.raw());
                w.put_str(feed);
                w.put_u8(reason.tag());
                w.put_varint(files.len() as u64);
                for f in files {
                    w.put_varint(f.raw());
                }
            }
            Message::Reliable(ReliableMsg::Attempt { attempt, inner }) => {
                w.put_u8(TAG_ATTEMPT);
                w.put_varint(*attempt as u64);
                w.put_bytes(&Message::Subscriber(inner.clone()).encode());
            }
            Message::Reliable(ReliableMsg::Ack { file, attempt }) => {
                w.put_u8(TAG_ACK);
                w.put_varint(file.raw());
                w.put_varint(*attempt as u64);
            }
            Message::Cluster(ClusterMsg::Heartbeat { server, epoch }) => {
                w.put_u8(TAG_HEARTBEAT);
                w.put_str(server);
                w.put_varint(*epoch);
            }
            Message::Cluster(ClusterMsg::DirLookup { group }) => {
                w.put_u8(TAG_DIR_LOOKUP);
                w.put_str(group);
            }
            Message::Cluster(ClusterMsg::DirHome { group, home, epoch }) => {
                w.put_u8(TAG_DIR_HOME);
                w.put_str(group);
                w.put_str(home);
                w.put_varint(*epoch);
            }
            Message::Cluster(ClusterMsg::DirAssign { group, home, epoch }) => {
                w.put_u8(TAG_DIR_ASSIGN);
                w.put_str(group);
                w.put_str(home);
                w.put_varint(*epoch);
            }
            Message::Cluster(ClusterMsg::Replicate {
                group,
                name,
                payload,
                epoch,
            }) => {
                w.put_u8(TAG_REPLICATE);
                w.put_str(group);
                w.put_str(name);
                w.put_bytes(payload);
                w.put_varint(*epoch);
            }
            Message::Cluster(ClusterMsg::BackfillRequest {
                group,
                subscriber,
                from_seq,
            }) => {
                w.put_u8(TAG_BACKFILL_REQ);
                w.put_str(group);
                w.put_str(subscriber);
                w.put_varint(*from_seq);
            }
            Message::Cluster(ClusterMsg::BackfillPage {
                group,
                subscriber,
                delivered,
                next_seq,
                done,
            }) => {
                w.put_u8(TAG_BACKFILL_PAGE);
                w.put_str(group);
                w.put_str(subscriber);
                w.put_varint(delivered.len() as u64);
                for name in delivered {
                    w.put_str(name);
                }
                w.put_varint(*next_seq);
                w.put_u8(u8::from(*done));
            }
            Message::Group(GroupMsg::Deliver {
                group,
                file,
                file_name,
                size,
                attempt,
            }) => {
                w.put_u8(TAG_GROUP_DELIVER);
                w.put_str(group);
                w.put_varint(file.raw());
                w.put_str(file_name);
                w.put_varint(*size);
                w.put_varint(*attempt as u64);
            }
            Message::Group(GroupMsg::Ack {
                group,
                file,
                bits,
                watermark,
            }) => {
                w.put_u8(TAG_GROUP_ACK);
                w.put_str(group);
                w.put_varint(file.raw());
                w.put_bytes(bits);
                w.put_varint(*watermark);
            }
        }
        w.into_bytes()
    }

    /// Decode from wire bytes.
    pub fn decode(data: &[u8]) -> Result<Message, CodecError> {
        let mut r = ByteReader::new(data);
        let tag = r.get_u8()?;
        let msg = match tag {
            TAG_DEPOSITED => Message::Source(SourceMsg::Deposited {
                path: r.get_str()?.to_string(),
                size: r.get_varint()?,
            }),
            TAG_EOB => Message::Source(SourceMsg::EndOfBatch {
                source: r.get_str()?.to_string(),
                interval_start: TimePoint::from_micros(r.get_u64()?),
                interval_end: TimePoint::from_micros(r.get_u64()?),
            }),
            TAG_DELIVERED => Message::Subscriber(SubscriberMsg::FileDelivered {
                file: FileId(r.get_varint()?),
                feed: r.get_str()?.to_string(),
                dest_path: r.get_str()?.to_string(),
                size: r.get_varint()?,
            }),
            TAG_AVAILABLE => Message::Subscriber(SubscriberMsg::FileAvailable {
                file: FileId(r.get_varint()?),
                feed: r.get_str()?.to_string(),
                staged_path: r.get_str()?.to_string(),
                size: r.get_varint()?,
            }),
            TAG_BATCH => {
                let batch = BatchId(r.get_varint()?);
                let feed = r.get_str()?.to_string();
                let reason = BatchCloseReason::from_tag(r.get_u8()?).ok_or(CodecError::BadTag {
                    what: "batch close reason",
                    tag,
                })?;
                let n = r.get_varint()?;
                // each element costs ≥ 1 byte, so a count beyond the
                // remaining input is a lie — reject before allocating
                if n > r.remaining() as u64 {
                    return Err(CodecError::BadLength { len: n });
                }
                let mut files = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    files.push(FileId(r.get_varint()?));
                }
                Message::Subscriber(SubscriberMsg::BatchComplete {
                    batch,
                    feed,
                    files,
                    reason,
                })
            }
            TAG_ATTEMPT => {
                let attempt = r.get_varint()? as u32;
                let inner_bytes = r.get_bytes()?;
                match Message::decode(inner_bytes)? {
                    Message::Subscriber(inner) => {
                        Message::Reliable(ReliableMsg::Attempt { attempt, inner })
                    }
                    _ => {
                        return Err(CodecError::BadTag {
                            what: "reliable attempt inner message",
                            tag,
                        })
                    }
                }
            }
            TAG_ACK => Message::Reliable(ReliableMsg::Ack {
                file: FileId(r.get_varint()?),
                attempt: r.get_varint()? as u32,
            }),
            TAG_HEARTBEAT => Message::Cluster(ClusterMsg::Heartbeat {
                server: r.get_str()?.to_string(),
                epoch: r.get_varint()?,
            }),
            TAG_DIR_LOOKUP => Message::Cluster(ClusterMsg::DirLookup {
                group: r.get_str()?.to_string(),
            }),
            TAG_DIR_HOME => Message::Cluster(ClusterMsg::DirHome {
                group: r.get_str()?.to_string(),
                home: r.get_str()?.to_string(),
                epoch: r.get_varint()?,
            }),
            TAG_DIR_ASSIGN => Message::Cluster(ClusterMsg::DirAssign {
                group: r.get_str()?.to_string(),
                home: r.get_str()?.to_string(),
                epoch: r.get_varint()?,
            }),
            TAG_REPLICATE => Message::Cluster(ClusterMsg::Replicate {
                group: r.get_str()?.to_string(),
                name: r.get_str()?.to_string(),
                payload: r.get_bytes()?.to_vec(),
                epoch: r.get_varint()?,
            }),
            TAG_BACKFILL_REQ => Message::Cluster(ClusterMsg::BackfillRequest {
                group: r.get_str()?.to_string(),
                subscriber: r.get_str()?.to_string(),
                from_seq: r.get_varint()?,
            }),
            TAG_BACKFILL_PAGE => {
                let group = r.get_str()?.to_string();
                let subscriber = r.get_str()?.to_string();
                let n = r.get_varint()?;
                if n > r.remaining() as u64 {
                    return Err(CodecError::BadLength { len: n });
                }
                let mut delivered = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    delivered.push(r.get_str()?.to_string());
                }
                Message::Cluster(ClusterMsg::BackfillPage {
                    group,
                    subscriber,
                    delivered,
                    next_seq: r.get_varint()?,
                    done: r.get_u8()? != 0,
                })
            }
            TAG_GROUP_DELIVER => Message::Group(GroupMsg::Deliver {
                group: r.get_str()?.to_string(),
                file: FileId(r.get_varint()?),
                file_name: r.get_str()?.to_string(),
                size: r.get_varint()?,
                attempt: r.get_varint()? as u32,
            }),
            TAG_GROUP_ACK => Message::Group(GroupMsg::Ack {
                group: r.get_str()?.to_string(),
                file: FileId(r.get_varint()?),
                bits: r.get_bytes()?.to_vec(),
                watermark: r.get_varint()?,
            }),
            other => {
                return Err(CodecError::BadTag {
                    what: "transport message",
                    tag: other,
                })
            }
        };
        // a frame must be exactly one message: leftover bytes mean a
        // corrupt length field upstream, not harmless padding
        if !r.is_exhausted() {
            return Err(CodecError::TrailingBytes { n: r.remaining() });
        }
        Ok(msg)
    }

    /// The size used for network-cost accounting: header bytes plus any
    /// out-of-band payload (for [`SubscriberMsg::FileDelivered`], the
    /// file body itself).
    pub fn wire_size(&self) -> u64 {
        let header = self.encode().len() as u64;
        match self {
            Message::Subscriber(SubscriberMsg::FileDelivered { size, .. })
            | Message::Reliable(ReliableMsg::Attempt {
                inner: SubscriberMsg::FileDelivered { size, .. },
                ..
            })
            | Message::Group(GroupMsg::Deliver { size, .. }) => header + size,
            _ => header,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            Message::Source(SourceMsg::Deposited {
                path: "poller1/MEMORY_poller1_20100925.gz".to_string(),
                size: 123_456,
            }),
            Message::Source(SourceMsg::EndOfBatch {
                source: "poller1".to_string(),
                interval_start: TimePoint::from_secs(1000),
                interval_end: TimePoint::from_secs(1300),
            }),
            Message::Subscriber(SubscriberMsg::FileDelivered {
                file: FileId(7),
                feed: "SNMP/MEMORY".to_string(),
                dest_path: "incoming/SNMP/MEMORY/x.gz".to_string(),
                size: 10,
            }),
            Message::Subscriber(SubscriberMsg::FileAvailable {
                file: FileId(8),
                feed: "SNMP/CPU".to_string(),
                staged_path: "staging/SNMP/CPU/y.txt".to_string(),
                size: 20,
            }),
            Message::Subscriber(SubscriberMsg::BatchComplete {
                batch: BatchId(3),
                feed: "SNMP/MEMORY".to_string(),
                files: vec![FileId(1), FileId(2), FileId(3)],
                reason: BatchCloseReason::Count,
            }),
            Message::Reliable(ReliableMsg::Attempt {
                attempt: 3,
                inner: SubscriberMsg::FileDelivered {
                    file: FileId(9),
                    feed: "SNMP/MEMORY".to_string(),
                    dest_path: "incoming/x.gz".to_string(),
                    size: 42,
                },
            }),
            Message::Reliable(ReliableMsg::Ack {
                file: FileId(9),
                attempt: 3,
            }),
            Message::Cluster(ClusterMsg::Heartbeat {
                server: "bistro-east".to_string(),
                epoch: 4,
            }),
            Message::Cluster(ClusterMsg::DirLookup {
                group: "SNMP".to_string(),
            }),
            Message::Cluster(ClusterMsg::DirHome {
                group: "SNMP".to_string(),
                home: "bistro-east".to_string(),
                epoch: 4,
            }),
            Message::Cluster(ClusterMsg::DirAssign {
                group: "SNMP".to_string(),
                home: "bistro-west".to_string(),
                epoch: 5,
            }),
            Message::Cluster(ClusterMsg::Replicate {
                group: "SNMP".to_string(),
                name: "MEMORY_poller1_201009250000.csv".to_string(),
                payload: b"body bytes".to_vec(),
                epoch: 6,
            }),
            Message::Cluster(ClusterMsg::BackfillRequest {
                group: "SNMP".to_string(),
                subscriber: "warehouse".to_string(),
                from_seq: 17,
            }),
            Message::Cluster(ClusterMsg::BackfillPage {
                group: "SNMP".to_string(),
                subscriber: "warehouse".to_string(),
                delivered: vec!["a.csv".to_string(), "b.csv".to_string()],
                next_seq: 19,
                done: true,
            }),
            Message::Group(GroupMsg::Deliver {
                group: "EAST_COAST".to_string(),
                file: FileId(21),
                file_name: "MEMORY_poller1_20100925.gz".to_string(),
                size: 123_456,
                attempt: 2,
            }),
            Message::Group(GroupMsg::Ack {
                group: "EAST_COAST".to_string(),
                file: FileId(21),
                bits: vec![0b1011_0101, 0b0000_0011],
                watermark: 4,
            }),
        ];
        for m in msgs {
            let bytes = m.encode();
            assert_eq!(Message::decode(&bytes).unwrap(), m, "roundtrip {m:?}");
        }
    }

    #[test]
    fn wire_size_includes_payload_for_push() {
        let push = Message::Subscriber(SubscriberMsg::FileDelivered {
            file: FileId(1),
            feed: "F".to_string(),
            dest_path: "d".to_string(),
            size: 1_000_000,
        });
        assert!(push.wire_size() > 1_000_000);
        let notify = Message::Subscriber(SubscriberMsg::FileAvailable {
            file: FileId(1),
            feed: "F".to_string(),
            staged_path: "s".to_string(),
            size: 1_000_000,
        });
        assert!(notify.wire_size() < 100, "notification is lightweight");
        // the reliable envelope does not hide the payload cost
        let wrapped = Message::Reliable(ReliableMsg::Attempt {
            attempt: 1,
            inner: SubscriberMsg::FileDelivered {
                file: FileId(1),
                feed: "F".to_string(),
                dest_path: "d".to_string(),
                size: 1_000_000,
            },
        });
        assert!(wrapped.wire_size() > 1_000_000);
        let ack = Message::Reliable(ReliableMsg::Ack {
            file: FileId(1),
            attempt: 1,
        });
        assert!(ack.wire_size() < 16, "acks are tiny");
    }

    #[test]
    fn garbage_rejected() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[77]).is_err());
    }

    /// One well-formed frame of every wire variant — the adversarial
    /// decode sweeps below mutate each of these.
    fn every_variant() -> Vec<Message> {
        vec![
            Message::Source(SourceMsg::Deposited {
                path: "p/x.gz".to_string(),
                size: 9,
            }),
            Message::Source(SourceMsg::EndOfBatch {
                source: "poller1".to_string(),
                interval_start: TimePoint::from_secs(1),
                interval_end: TimePoint::from_secs(2),
            }),
            Message::Subscriber(SubscriberMsg::FileDelivered {
                file: FileId(7),
                feed: "SNMP/MEMORY".to_string(),
                dest_path: "incoming/x.gz".to_string(),
                size: 10,
            }),
            Message::Subscriber(SubscriberMsg::FileAvailable {
                file: FileId(8),
                feed: "SNMP/CPU".to_string(),
                staged_path: "staging/y.txt".to_string(),
                size: 20,
            }),
            Message::Subscriber(SubscriberMsg::BatchComplete {
                batch: BatchId(3),
                feed: "SNMP".to_string(),
                files: vec![FileId(1), FileId(2)],
                reason: BatchCloseReason::Window,
            }),
            Message::Reliable(ReliableMsg::Attempt {
                attempt: 2,
                inner: SubscriberMsg::FileDelivered {
                    file: FileId(9),
                    feed: "F".to_string(),
                    dest_path: "d".to_string(),
                    size: 42,
                },
            }),
            Message::Reliable(ReliableMsg::Ack {
                file: FileId(9),
                attempt: 3,
            }),
            Message::Cluster(ClusterMsg::Heartbeat {
                server: "s1".to_string(),
                epoch: 4,
            }),
            Message::Cluster(ClusterMsg::DirLookup {
                group: "SNMP".to_string(),
            }),
            Message::Cluster(ClusterMsg::DirHome {
                group: "SNMP".to_string(),
                home: "s1".to_string(),
                epoch: 4,
            }),
            Message::Cluster(ClusterMsg::DirAssign {
                group: "SNMP".to_string(),
                home: "s2".to_string(),
                epoch: 5,
            }),
            Message::Cluster(ClusterMsg::Replicate {
                group: "SNMP".to_string(),
                name: "a.csv".to_string(),
                payload: b"body".to_vec(),
                epoch: 6,
            }),
            Message::Cluster(ClusterMsg::BackfillRequest {
                group: "SNMP".to_string(),
                subscriber: "wh".to_string(),
                from_seq: 17,
            }),
            Message::Cluster(ClusterMsg::BackfillPage {
                group: "SNMP".to_string(),
                subscriber: "wh".to_string(),
                delivered: vec!["a.csv".to_string()],
                next_seq: 19,
                done: false,
            }),
            Message::Group(GroupMsg::Deliver {
                group: "G".to_string(),
                file: FileId(21),
                file_name: "a.csv".to_string(),
                size: 9,
                attempt: 1,
            }),
            Message::Group(GroupMsg::Ack {
                group: "G".to_string(),
                file: FileId(21),
                bits: vec![0xFF, 0x01],
                watermark: 9,
            }),
        ]
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        // The model checker feeds adversarial orderings; decoding must be
        // total. Every proper prefix of every variant's encoding must
        // come back as Err — never panic, never a silently-shorter value.
        for m in every_variant() {
            let bytes = m.encode();
            for cut in 0..bytes.len() {
                let r = Message::decode(&bytes[..cut]);
                assert!(
                    r.is_err(),
                    "truncated frame decoded: {m:?} cut at {cut}/{} gave {r:?}",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        for m in every_variant() {
            let mut bytes = m.encode();
            bytes.push(0);
            assert!(
                matches!(
                    Message::decode(&bytes),
                    Err(CodecError::TrailingBytes { n: 1 })
                ),
                "frame with a trailing byte accepted: {m:?}"
            );
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        for tag in [0u8, 17, 77, 255] {
            assert!(
                matches!(
                    Message::decode(&[tag, 0, 0, 0]),
                    Err(CodecError::BadTag { .. } | CodecError::TrailingBytes { .. })
                ),
                "unknown tag {tag} accepted"
            );
        }
    }

    #[test]
    fn implausible_counts_rejected_before_allocation() {
        // BatchComplete claiming 2^40 files in a 10-byte frame
        let mut w = bistro_base::ByteWriter::new();
        w.put_u8(TAG_BATCH);
        w.put_varint(3); // batch id
        w.put_str("F");
        w.put_u8(0); // reason = Count
        w.put_varint(1 << 40); // file count
        assert!(matches!(
            Message::decode(w.as_bytes()),
            Err(CodecError::BadLength { .. })
        ));

        // BackfillPage claiming more names than there are bytes
        let mut w = bistro_base::ByteWriter::new();
        w.put_u8(TAG_BACKFILL_PAGE);
        w.put_str("SNMP");
        w.put_str("wh");
        w.put_varint(1_000_000);
        assert!(matches!(
            Message::decode(w.as_bytes()),
            Err(CodecError::BadLength { .. })
        ));

        // GroupAck whose bitmap length prefix exceeds the frame
        let mut w = bistro_base::ByteWriter::new();
        w.put_u8(TAG_GROUP_ACK);
        w.put_str("G");
        w.put_varint(21); // file id
        w.put_varint(1 << 40); // bitmap length — a lie
        assert!(matches!(
            Message::decode(w.as_bytes()),
            Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn corrupt_group_frames_rejected_not_panicked() {
        // byte-level fuzz of both group frames: flip each byte through a
        // handful of values; decode must be total — it returns Ok or a
        // typed Err, never panics, and anything it does accept must
        // survive a re-encode/re-decode cycle unchanged
        for m in [
            Message::Group(GroupMsg::Deliver {
                group: "G".to_string(),
                file: FileId(5),
                file_name: "f_1.csv".to_string(),
                size: 7,
                attempt: 3,
            }),
            Message::Group(GroupMsg::Ack {
                group: "G".to_string(),
                file: FileId(5),
                bits: vec![0x0F],
                watermark: 2,
            }),
        ] {
            let bytes = m.encode();
            for i in 0..bytes.len() {
                for delta in [1u8, 0x7F, 0xFF] {
                    let mut mutated = bytes.clone();
                    mutated[i] = mutated[i].wrapping_add(delta);
                    if let Ok(decoded) = Message::decode(&mutated) {
                        let reencoded = decoded.encode();
                        assert_eq!(
                            Message::decode(&reencoded).unwrap(),
                            decoded,
                            "re-encode of accepted mutation of {m:?} at byte {i} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn attempt_with_non_subscriber_inner_rejected() {
        // hand-craft an Attempt whose inner frame is an Ack
        let inner = Message::Reliable(ReliableMsg::Ack {
            file: FileId(1),
            attempt: 1,
        })
        .encode();
        let mut w = bistro_base::ByteWriter::new();
        w.put_u8(TAG_ATTEMPT);
        w.put_varint(1);
        w.put_bytes(&inner);
        assert!(matches!(
            Message::decode(w.as_bytes()),
            Err(CodecError::BadTag { .. })
        ));
    }
}
