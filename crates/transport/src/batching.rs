//! The batch-boundary engine (paper §2.3, §4.1).
//!
//! Streaming-warehouse subscribers want triggers per *batch* — "invoke
//! the triggered updates only when the raw files contributing to that
//! partition has been received" — not per file. The configuration
//! language expresses batch boundaries three ways, all handled here:
//!
//! * **count-based**: close after N files ("three SNMP pollers ⇒ a batch
//!   of three files") — fragile when a poller skips an interval;
//! * **time-based**: close when the batch has been open for a window —
//!   robust but adds delay;
//! * **hybrid** (both): close on whichever comes first — "works well in
//!   practice";
//! * **punctuation**: a cooperative source marks end-of-batch explicitly,
//!   closing immediately with zero added delay.
//!
//! One [`Batcher`] instance exists per (feed, subscriber); the E4
//! experiment sweeps these policies against unreliable pollers.

use bistro_base::{FileId, TimePoint, TimeSpan};
use bistro_config::BatchSpec;

pub use crate::messages::BatchCloseReason;

/// A closed batch ready for trigger invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The files in the batch, in arrival order.
    pub files: Vec<FileId>,
    /// When the first file of the batch arrived.
    pub opened: TimePoint,
    /// When the batch closed.
    pub closed: TimePoint,
    /// Why it closed.
    pub reason: BatchCloseReason,
}

impl BatchOutcome {
    /// Notification delay contributed by batching: how long the *first*
    /// file of the batch waited for the boundary.
    pub fn first_file_delay(&self) -> TimeSpan {
        self.closed.since(self.opened)
    }
}

/// Accumulates files into batches per the spec.
#[derive(Debug)]
pub struct Batcher {
    spec: BatchSpec,
    open: Vec<FileId>,
    opened_at: Option<TimePoint>,
    earliest_origin: Option<TimePoint>,
}

impl Batcher {
    /// A batcher for the given spec. A per-file spec
    /// ([`BatchSpec::is_per_file`]) closes a batch on every file.
    pub fn new(spec: BatchSpec) -> Batcher {
        Batcher {
            spec,
            open: Vec::new(),
            opened_at: None,
            earliest_origin: None,
        }
    }

    /// The deadline by which the open batch must close due to its window
    /// (`None` if no batch is open or no window is configured). The
    /// caller arranges to call [`Batcher::on_tick`] at this time.
    ///
    /// The window is anchored at the batch's *origin* (the earliest
    /// feed-time of its files, when known) rather than its arrival time.
    /// A streaming warehouse wants the partition for interval `k` closed
    /// a bounded grace period after `k` ends — "invoke the triggered
    /// updates only when the raw files contributing to that partition
    /// has been received". Anchoring at arrival would let a late first
    /// file push the deadline past the *next* interval's burst, so the
    /// count clause always wins and the window never isolates intervals.
    pub fn window_deadline(&self) -> Option<TimePoint> {
        let w = self.spec.window?;
        let arrival = self.opened_at? + w;
        Some(match self.earliest_origin {
            Some(origin) => arrival.min(origin + w),
            None => arrival,
        })
    }

    /// Number of files in the open batch.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// A file arrived. Returns a closed batch if this file completed one.
    /// Equivalent to [`Batcher::on_file_at`] with no origin timestamp.
    pub fn on_file(&mut self, file: FileId, now: TimePoint) -> Option<BatchOutcome> {
        self.on_file_at(file, now, None)
    }

    /// A file arrived, carrying its origin timestamp (the feed-time
    /// captured from its name) when the pattern provides one. Returns a
    /// closed batch if this file completed one.
    ///
    /// Callers that can observe time passing between files should first
    /// drain [`Batcher::take_lapsed`] so a file arriving after the open
    /// batch's window deadline starts a fresh batch instead of being
    /// folded into the stale one.
    pub fn on_file_at(
        &mut self,
        file: FileId,
        now: TimePoint,
        origin: Option<TimePoint>,
    ) -> Option<BatchOutcome> {
        // per-file mode: every file is its own batch
        if self.spec.is_per_file() {
            return Some(BatchOutcome {
                files: vec![file],
                opened: now,
                closed: now,
                reason: BatchCloseReason::Count,
            });
        }
        if self.opened_at.is_none() {
            self.opened_at = Some(now);
        }
        if let Some(o) = origin {
            self.earliest_origin = Some(match self.earliest_origin {
                Some(e) => e.min(o),
                None => o,
            });
        }
        self.open.push(file);
        if let Some(count) = self.spec.count {
            if self.open.len() >= count as usize {
                return Some(self.close(now, BatchCloseReason::Count));
            }
        }
        None
    }

    /// Close and return the open batch if its window deadline has already
    /// lapsed by `now`. The batch closes *at the deadline* (the moment it
    /// should have fired), not at `now`, so delay accounting does not
    /// depend on how late the caller noticed. Call before
    /// [`Batcher::on_file_at`] when arrivals are the only clock the
    /// caller observes.
    pub fn take_lapsed(&mut self, now: TimePoint) -> Option<BatchOutcome> {
        let deadline = self.window_deadline()?;
        if now >= deadline && !self.open.is_empty() {
            return Some(self.close(deadline, BatchCloseReason::Window));
        }
        None
    }

    /// The clock reached `now`; close the batch if its window lapsed.
    pub fn on_tick(&mut self, now: TimePoint) -> Option<BatchOutcome> {
        let deadline = self.window_deadline()?;
        if now >= deadline && !self.open.is_empty() {
            return Some(self.close(now, BatchCloseReason::Window));
        }
        None
    }

    /// The source emitted end-of-batch punctuation: close immediately.
    pub fn on_punctuation(&mut self, now: TimePoint) -> Option<BatchOutcome> {
        if self.open.is_empty() {
            return None;
        }
        Some(self.close(now, BatchCloseReason::Punctuation))
    }

    fn close(&mut self, now: TimePoint, reason: BatchCloseReason) -> BatchOutcome {
        let files = std::mem::take(&mut self.open);
        let opened = self.opened_at.take().unwrap_or(now);
        self.earliest_origin = None;
        BatchOutcome {
            files,
            opened,
            closed: now,
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> TimePoint {
        TimePoint::from_secs(s)
    }

    #[test]
    fn per_file_mode_fires_every_file() {
        let mut b = Batcher::new(BatchSpec::per_file());
        for i in 0..3 {
            let out = b.on_file(FileId(i), t(i)).unwrap();
            assert_eq!(out.files, vec![FileId(i)]);
            assert_eq!(out.first_file_delay(), TimeSpan::ZERO);
        }
    }

    #[test]
    fn count_based_closes_at_n() {
        let mut b = Batcher::new(BatchSpec {
            count: Some(3),
            window: None,
        });
        assert!(b.on_file(FileId(1), t(0)).is_none());
        assert!(b.on_file(FileId(2), t(1)).is_none());
        let out = b.on_file(FileId(3), t(2)).unwrap();
        assert_eq!(out.files.len(), 3);
        assert_eq!(out.reason, BatchCloseReason::Count);
        assert_eq!(out.first_file_delay(), TimeSpan::from_secs(2));
        // next batch starts fresh
        assert!(b.on_file(FileId(4), t(3)).is_none());
        assert_eq!(b.open_len(), 1);
    }

    #[test]
    fn count_based_stalls_when_poller_missing() {
        // §4.1: "If one poller does not produce reading during particular
        // time interval, it will not only delay the notification till a
        // first file for the next time interval arrives…"
        let mut b = Batcher::new(BatchSpec {
            count: Some(3),
            window: None,
        });
        // interval 1: only 2 of 3 pollers report
        assert!(b.on_file(FileId(1), t(0)).is_none());
        assert!(b.on_file(FileId(2), t(1)).is_none());
        // interval 2 begins; its first file closes the stale batch…
        let out = b.on_file(FileId(10), t(300)).unwrap();
        assert_eq!(out.files, vec![FileId(1), FileId(2), FileId(10)]);
        // …and the batch now straddles two intervals (the failure mode
        // the hybrid spec exists to avoid)
        assert_eq!(out.first_file_delay(), TimeSpan::from_secs(300));
    }

    #[test]
    fn window_based_closes_on_tick() {
        let mut b = Batcher::new(BatchSpec {
            count: None,
            window: Some(TimeSpan::from_mins(5)),
        });
        assert!(b.on_file(FileId(1), t(0)).is_none());
        assert!(b.on_file(FileId(2), t(10)).is_none());
        assert_eq!(b.window_deadline(), Some(t(300)));
        assert!(b.on_tick(t(299)).is_none());
        let out = b.on_tick(t(300)).unwrap();
        assert_eq!(out.files.len(), 2);
        assert_eq!(out.reason, BatchCloseReason::Window);
        assert!(b.window_deadline().is_none());
    }

    #[test]
    fn hybrid_closes_on_whichever_first() {
        let spec = BatchSpec {
            count: Some(3),
            window: Some(TimeSpan::from_mins(5)),
        };
        // count first
        let mut b = Batcher::new(spec);
        b.on_file(FileId(1), t(0));
        b.on_file(FileId(2), t(1));
        let out = b.on_file(FileId(3), t(2)).unwrap();
        assert_eq!(out.reason, BatchCloseReason::Count);
        // window first
        let mut b = Batcher::new(spec);
        b.on_file(FileId(1), t(0));
        let out = b.on_tick(t(300)).unwrap();
        assert_eq!(out.reason, BatchCloseReason::Window);
        assert_eq!(out.files.len(), 1);
    }

    #[test]
    fn punctuation_closes_immediately() {
        let mut b = Batcher::new(BatchSpec {
            count: Some(100),
            window: Some(TimeSpan::from_hours(1)),
        });
        b.on_file(FileId(1), t(0));
        b.on_file(FileId(2), t(1));
        let out = b.on_punctuation(t(2)).unwrap();
        assert_eq!(out.reason, BatchCloseReason::Punctuation);
        assert_eq!(out.files.len(), 2);
        assert_eq!(out.first_file_delay(), TimeSpan::from_secs(2));
        // punctuation with nothing open is a no-op
        assert!(b.on_punctuation(t(3)).is_none());
    }

    #[test]
    fn origin_anchored_window_caps_deadline() {
        // 5m feed, 6m window: the interval-0 file arrives 25s late, so an
        // arrival-anchored deadline (25s + 6m) would land after the next
        // burst at ~5m. Origin anchoring keeps the deadline at 0 + 6m.
        let mut b = Batcher::new(BatchSpec {
            count: Some(3),
            window: Some(TimeSpan::from_mins(6)),
        });
        assert!(b.on_file_at(FileId(1), t(325), Some(t(0))).is_none());
        assert_eq!(b.window_deadline(), Some(t(360)));
        // a second straggler from the same interval does not move it
        assert!(b.on_file_at(FileId(2), t(340), Some(t(0))).is_none());
        assert_eq!(b.window_deadline(), Some(t(360)));
        let out = b.take_lapsed(t(400)).unwrap();
        assert_eq!(out.reason, BatchCloseReason::Window);
        assert_eq!(out.files, vec![FileId(1), FileId(2)]);
        // closes at the deadline, not at the observation time
        assert_eq!(out.closed, t(360));
    }

    #[test]
    fn take_lapsed_keeps_next_interval_out_of_stale_batch() {
        // Without take_lapsed, a file arriving after the deadline would be
        // folded into the stale batch (the pre-fix behaviour).
        let mut b = Batcher::new(BatchSpec {
            count: Some(3),
            window: Some(TimeSpan::from_mins(6)),
        });
        b.on_file_at(FileId(1), t(10), Some(t(0)));
        b.on_file_at(FileId(2), t(20), Some(t(0)));
        // next interval's first file arrives at 310; deadline was 360?
        // no — deadline is min(10+360, 0+360) = 360, still open. Use a
        // later arrival to lapse it.
        let arrival = t(400);
        let lapsed = b.take_lapsed(arrival).unwrap();
        assert_eq!(lapsed.files, vec![FileId(1), FileId(2)]);
        assert!(b.on_file_at(FileId(10), arrival, Some(t(300))).is_none());
        assert_eq!(b.open_len(), 1);
        assert_eq!(b.window_deadline(), Some(t(660)));
    }

    #[test]
    fn take_lapsed_without_open_batch_is_noop() {
        let mut b = Batcher::new(BatchSpec {
            count: Some(3),
            window: Some(TimeSpan::from_mins(6)),
        });
        assert!(b.take_lapsed(t(10_000)).is_none());
        // origin resets between batches
        b.on_file_at(FileId(1), t(5), Some(t(0)));
        b.on_file_at(FileId(2), t(6), Some(t(0)));
        b.on_file_at(FileId(3), t(7), Some(t(0))); // count closes
        b.on_file_at(FileId(4), t(700), Some(t(600)));
        assert_eq!(b.window_deadline(), Some(t(960)));
    }

    #[test]
    fn empty_window_never_fires() {
        let mut b = Batcher::new(BatchSpec {
            count: None,
            window: Some(TimeSpan::from_mins(5)),
        });
        assert!(b.on_tick(t(10_000)).is_none());
        assert!(b.window_deadline().is_none());
    }
}
