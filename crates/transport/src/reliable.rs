//! Server-side acknowledgement/retry bookkeeping for reliable delivery.
//!
//! The paper's §4.2 requires that "every file received from a data
//! source that matches definition of a particular feed will be delivered
//! to all the feed's subscribers" — over a network that may drop,
//! duplicate, or delay messages ([`crate::net::FaultPlan`]). The
//! [`RetryTracker`] holds every unacked send and schedules
//! retransmissions under a [`RetryPolicy`]: per-subscriber timeout with
//! exponential backoff and seeded jitter (so two servers retrying into
//! the same congested link desynchronize, yet a run still replays
//! bit-for-bit from its seed).
//!
//! The tracker is pure bookkeeping: it never touches the network or the
//! receipt store. The server sends [`ReliableMsg::Attempt`] envelopes,
//! feeds acks into [`RetryTracker::on_ack`], polls
//! [`RetryTracker::due`] on its clock ticks, and writes the delivery
//! receipt only once the ack arrives.
//!
//! [`ReliableMsg::Attempt`]: crate::messages::ReliableMsg::Attempt

use crate::messages::SubscriberMsg;
use bistro_base::{FileId, Rng, TimePoint, TimeSpan};
use bistro_telemetry::{Counter, Gauge, Registry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Retransmission policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Timeout before the first retransmission.
    pub base_timeout: TimeSpan,
    /// Multiplier applied to the timeout after every failed attempt.
    pub backoff: u32,
    /// Ceiling on the per-attempt timeout.
    pub max_timeout: TimeSpan,
    /// Give up (and alarm) after this many attempts.
    pub max_attempts: u32,
    /// Fraction of the timeout randomized (`0.2` = ±20 %), drawn from
    /// the tracker's seeded RNG.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout: TimeSpan::from_secs(30),
            backoff: 2,
            max_timeout: TimeSpan::from_mins(10),
            max_attempts: 6,
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// The nominal (pre-jitter) timeout for `attempt` (1-based):
    /// `base_timeout * backoff^(attempt-1)`, capped at `max_timeout`.
    pub fn timeout_for(&self, attempt: u32) -> TimeSpan {
        let factor = (self.backoff.max(1) as u64).saturating_pow(attempt.saturating_sub(1));
        self.base_timeout
            .saturating_mul(factor)
            .min(self.max_timeout)
    }
}

/// One unacked send.
#[derive(Clone, Debug)]
struct Outstanding {
    attempt: u32,
    deadline: TimePoint,
    first_sent: TimePoint,
    msg: SubscriberMsg,
}

/// A retransmission scheduled by [`RetryTracker::due`].
#[derive(Clone, Debug)]
pub struct Resend {
    /// The subscriber to retransmit to.
    pub subscriber: String,
    /// The file being redelivered.
    pub file: FileId,
    /// The new (bumped) attempt number to stamp on the envelope.
    pub attempt: u32,
    /// The message to wrap and resend.
    pub msg: SubscriberMsg,
}

/// The outcome of one [`RetryTracker::due`] sweep.
#[derive(Clone, Debug, Default)]
pub struct RetryRound {
    /// Sends whose timeout lapsed: retransmit these.
    pub resend: Vec<Resend>,
    /// Sends that exhausted [`RetryPolicy::max_attempts`]; they are no
    /// longer tracked — the caller should alarm and fall back to
    /// failure-detection + backfill.
    pub exhausted: Vec<(String, FileId)>,
}

/// The tracker's telemetry handles. Counters are the *only* tallies —
/// there is no private shadow copy; callers that need the totals read
/// them through [`RetryTracker::totals`].
struct TrackerMetrics {
    attempts: Arc<Counter>,
    acks: Arc<Counter>,
    resends: Arc<Counter>,
    exhausted: Arc<Counter>,
    outstanding: Arc<Gauge>,
}

impl TrackerMetrics {
    fn detached() -> TrackerMetrics {
        TrackerMetrics {
            attempts: Arc::new(Counter::detached()),
            acks: Arc::new(Counter::detached()),
            resends: Arc::new(Counter::detached()),
            exhausted: Arc::new(Counter::detached()),
            outstanding: Arc::new(Gauge::detached()),
        }
    }

    fn registered(reg: &Registry) -> TrackerMetrics {
        TrackerMetrics {
            attempts: reg.counter("reliable.attempts"),
            acks: reg.counter("reliable.acks"),
            resends: reg.counter("reliable.resends"),
            exhausted: reg.counter("reliable.exhausted"),
            outstanding: reg.gauge("reliable.outstanding"),
        }
    }
}

/// The unacked-send table (deterministic iteration: `BTreeMap`).
pub struct RetryTracker {
    policy: RetryPolicy,
    rng: Rng,
    outstanding: BTreeMap<(String, u64), Outstanding>,
    metrics: TrackerMetrics,
}

impl RetryTracker {
    /// A tracker under `policy`; `seed` drives the backoff jitter.
    /// Counters record into detached handles; use
    /// [`RetryTracker::with_telemetry`] to surface them in a registry.
    pub fn new(policy: RetryPolicy, seed: u64) -> RetryTracker {
        RetryTracker {
            policy,
            rng: Rng::seed_from_u64(seed),
            outstanding: BTreeMap::new(),
            metrics: TrackerMetrics::detached(),
        }
    }

    /// A tracker whose `reliable.*` counters and outstanding gauge live
    /// in `reg`. Telemetry draws nothing from the jitter RNG, so a
    /// registered tracker replays identically to a detached one.
    pub fn with_telemetry(policy: RetryPolicy, seed: u64, reg: &Registry) -> RetryTracker {
        RetryTracker {
            policy,
            rng: Rng::seed_from_u64(seed),
            outstanding: BTreeMap::new(),
            metrics: TrackerMetrics::registered(reg),
        }
    }

    /// `(acks, resends, exhausted)` totals since construction — the
    /// reliability tallies formerly duplicated by the server.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.metrics.acks.get(),
            self.metrics.resends.get(),
            self.metrics.exhausted.get(),
        )
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn jittered(&mut self, nominal: TimeSpan) -> TimeSpan {
        if self.policy.jitter <= 0.0 {
            return nominal;
        }
        // uniform in [1-jitter, 1+jitter], re-clamped at max_timeout:
        // `timeout_for` caps the *nominal* timeout, so without the final
        // min() an upward jitter draw could schedule a deadline as far as
        // (1+jitter)·max_timeout out, past the policy's stated ceiling.
        let f = 1.0 + self.policy.jitter * (2.0 * self.rng.next_f64() - 1.0);
        TimeSpan::from_micros((nominal.as_micros() as f64 * f) as u64).min(self.policy.max_timeout)
    }

    /// Register attempt 1 of a send made at `now`; returns the attempt
    /// number to stamp on the envelope. If the `(subscriber, file)` pair
    /// is already outstanding, the existing attempt is kept (the caller
    /// should not double-send; [`RetryTracker::is_outstanding`] guards).
    pub fn track(
        &mut self,
        subscriber: &str,
        file: FileId,
        msg: SubscriberMsg,
        now: TimePoint,
    ) -> u32 {
        let key = (subscriber.to_string(), file.raw());
        if let Some(o) = self.outstanding.get(&key) {
            return o.attempt;
        }
        let deadline = now + self.jittered(self.policy.timeout_for(1));
        self.outstanding.insert(
            key,
            Outstanding {
                attempt: 1,
                deadline,
                first_sent: now,
                msg,
            },
        );
        self.metrics.attempts.inc();
        self.metrics.outstanding.set(self.outstanding.len() as i64);
        1
    }

    /// An ack for `(subscriber, file)` arrived. Returns `true` if the
    /// pair was outstanding (any attempt number proves delivery — a late
    /// ack of an earlier attempt is just as good).
    pub fn on_ack(&mut self, subscriber: &str, file: FileId, _attempt: u32) -> bool {
        let acked = self
            .outstanding
            .remove(&(subscriber.to_string(), file.raw()))
            .is_some();
        if acked {
            self.metrics.acks.inc();
            self.metrics.outstanding.set(self.outstanding.len() as i64);
        }
        acked
    }

    /// True if `(subscriber, file)` has an unacked send in flight.
    pub fn is_outstanding(&self, subscriber: &str, file: FileId) -> bool {
        self.outstanding
            .contains_key(&(subscriber.to_string(), file.raw()))
    }

    /// Number of unacked sends.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Drop every outstanding entry for `subscriber` (it was flagged
    /// offline; recovery goes through backfill instead of retries).
    pub fn forget_subscriber(&mut self, subscriber: &str) {
        self.outstanding.retain(|(sub, _), _| sub != subscriber);
        self.metrics.outstanding.set(self.outstanding.len() as i64);
    }

    /// Sweep the table at `now`: every entry past its deadline is either
    /// scheduled for retransmission (attempt bumped, backoff applied) or,
    /// if `max_attempts` is spent, reported as exhausted and dropped.
    pub fn due(&mut self, now: TimePoint) -> RetryRound {
        let mut round = RetryRound::default();
        let lapsed: Vec<(String, u64)> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.deadline <= now)
            .map(|(k, _)| k.clone())
            .collect();
        for key in lapsed {
            let o = self.outstanding.get_mut(&key).expect("collected above");
            if o.attempt >= self.policy.max_attempts {
                self.outstanding.remove(&key);
                round.exhausted.push((key.0, FileId(key.1)));
                continue;
            }
            o.attempt += 1;
            let attempt = o.attempt;
            let msg = o.msg.clone();
            let nominal = self.policy.timeout_for(attempt);
            let deadline = now + self.jittered(nominal);
            let o = self.outstanding.get_mut(&key).expect("still present");
            o.deadline = deadline;
            round.resend.push(Resend {
                subscriber: key.0,
                file: FileId(key.1),
                attempt,
                msg,
            });
        }
        self.metrics.attempts.add(round.resend.len() as u64);
        self.metrics.resends.add(round.resend.len() as u64);
        self.metrics.exhausted.add(round.exhausted.len() as u64);
        self.metrics.outstanding.set(self.outstanding.len() as i64);
        round
    }

    /// Sweep the table as if *every* outstanding deadline had lapsed at
    /// `now` — the model checker's "fire the retry timer" action, which
    /// abstracts away wall-clock deadlines: an interleaving where the
    /// timer fires is explored regardless of how much virtual time the
    /// policy would have required.
    pub fn fire_all(&mut self, now: TimePoint) -> RetryRound {
        for o in self.outstanding.values_mut() {
            o.deadline = now;
        }
        self.due(now)
    }

    /// The outstanding table as `(subscriber, file, attempt)` tuples in
    /// key order — digestible state for model-checker state hashes.
    pub fn outstanding_entries(&self) -> Vec<(String, u64, u32)> {
        self.outstanding
            .iter()
            .map(|((sub, file), o)| (sub.clone(), *file, o.attempt))
            .collect()
    }

    /// The scheduled retransmission deadline for `(subscriber, file)`,
    /// if outstanding — test-only visibility for the jitter-cap bound.
    #[cfg(test)]
    fn deadline_of(&self, subscriber: &str, file: FileId) -> Option<TimePoint> {
        self.outstanding
            .get(&(subscriber.to_string(), file.raw()))
            .map(|o| o.deadline)
    }

    /// How long the oldest unacked send has been waiting, as of `now`.
    pub fn oldest_unacked_age(&self, now: TimePoint) -> Option<TimeSpan> {
        self.outstanding
            .values()
            .map(|o| now.since(o.first_sent))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> TimePoint {
        TimePoint::from_secs(s)
    }

    fn msg(id: u64) -> SubscriberMsg {
        SubscriberMsg::FileDelivered {
            file: FileId(id),
            feed: "F".to_string(),
            dest_path: "d".to_string(),
            size: 1,
        }
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base_timeout: TimeSpan::from_secs(10),
            backoff: 2,
            max_timeout: TimeSpan::from_secs(100),
            max_attempts: 3,
            jitter: 0.0, // deterministic deadlines for the unit tests
        }
    }

    #[test]
    fn backoff_schedule() {
        let p = policy();
        assert_eq!(p.timeout_for(1), TimeSpan::from_secs(10));
        assert_eq!(p.timeout_for(2), TimeSpan::from_secs(20));
        assert_eq!(p.timeout_for(3), TimeSpan::from_secs(40));
        // capped
        assert_eq!(p.timeout_for(7), TimeSpan::from_secs(100));
    }

    #[test]
    fn ack_clears_before_deadline() {
        let mut tr = RetryTracker::new(policy(), 1);
        assert_eq!(tr.track("s", FileId(1), msg(1), t(0)), 1);
        assert!(tr.is_outstanding("s", FileId(1)));
        assert!(tr.on_ack("s", FileId(1), 1));
        assert!(!tr.is_outstanding("s", FileId(1)));
        // nothing to retry
        assert!(tr.due(t(1000)).resend.is_empty());
        // a second ack for the same pair is a no-op
        assert!(!tr.on_ack("s", FileId(1), 1));
    }

    #[test]
    fn timeout_bumps_attempt_with_backoff() {
        let mut tr = RetryTracker::new(policy(), 1);
        tr.track("s", FileId(1), msg(1), t(0));
        assert!(tr.due(t(5)).resend.is_empty(), "not due yet");
        let r = tr.due(t(10));
        assert_eq!(r.resend.len(), 1);
        assert_eq!(r.resend[0].attempt, 2);
        // next deadline is 10 + 20 (backoff doubled)
        assert!(tr.due(t(29)).resend.is_empty());
        let r = tr.due(t(30));
        assert_eq!(r.resend.len(), 1);
        assert_eq!(r.resend[0].attempt, 3);
    }

    #[test]
    fn exhaustion_after_max_attempts() {
        let mut tr = RetryTracker::new(policy(), 1);
        tr.track("s", FileId(1), msg(1), t(0));
        tr.due(t(10)); // attempt 2
        tr.due(t(100)); // attempt 3 == max
        let r = tr.due(t(1000));
        assert!(r.resend.is_empty());
        assert_eq!(r.exhausted, vec![("s".to_string(), FileId(1))]);
        assert_eq!(tr.outstanding_count(), 0);
    }

    #[test]
    fn late_ack_of_earlier_attempt_counts() {
        let mut tr = RetryTracker::new(policy(), 1);
        tr.track("s", FileId(1), msg(1), t(0));
        tr.due(t(10)); // now at attempt 2
        assert!(
            tr.on_ack("s", FileId(1), 1),
            "attempt-1 ack still proves delivery"
        );
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let mut p = policy();
        p.jitter = 0.5;
        let deadlines = |seed: u64| {
            let mut tr = RetryTracker::new(p, seed);
            tr.track("s", FileId(1), msg(1), t(0));
            // find the deadline by probing
            let mut out = Vec::new();
            for s in 0..30u64 {
                if !tr.due(t(s)).resend.is_empty() {
                    out.push(s);
                }
            }
            out
        };
        let a = deadlines(1);
        assert_eq!(a, deadlines(1), "same seed, same schedule");
        // bounded by [5, 15] for a 10-second base timeout
        assert!(a[0] >= 5 && a[0] <= 15, "{a:?}");
    }

    #[test]
    fn prop_jittered_deadline_never_exceeds_max_timeout_cap() {
        // Regression: `jittered` scaled the nominal timeout *after*
        // `timeout_for` applied the max_timeout cap, so an upward jitter
        // draw could schedule a deadline up to (1+jitter)·max_timeout
        // out. Inductively, lapsing each attempt exactly at its deadline,
        // attempt k's deadline must stay within first_sent +
        // max_timeout·k.
        use bistro_base::prop::Runner;
        use bistro_base::prop_assert;
        Runner::new("retry_deadline_cap").cases(64).run(
            |rng| {
                (
                    rng.gen_range(0u64..1 << 48), // tracker seed
                    rng.gen_range(1u64..=60),     // base timeout (s)
                    rng.gen_range(1u64..=90),     // max timeout (s)
                    rng.gen_range(1u64..=100),    // jitter (% of nominal)
                )
            },
            |&(seed, base, maxt, jitter_pct)| {
                let p = RetryPolicy {
                    base_timeout: TimeSpan::from_secs(base),
                    backoff: 3,
                    max_timeout: TimeSpan::from_secs(maxt),
                    max_attempts: 8,
                    jitter: jitter_pct as f64 / 100.0,
                };
                let mut tr = RetryTracker::new(p, seed);
                let first_sent = t(0);
                tr.track("s", FileId(1), msg(1), first_sent);
                let mut attempts = 1u64;
                while let Some(deadline) = tr.deadline_of("s", FileId(1)) {
                    let cap = first_sent + p.max_timeout.saturating_mul(attempts);
                    prop_assert!(
                        deadline <= cap,
                        "attempt {} deadline {:?} exceeds first_sent + max_timeout*attempts = {:?}",
                        attempts,
                        deadline,
                        cap
                    );
                    tr.due(deadline); // lapse exactly at the deadline
                    attempts += 1;
                }
                Ok(())
            },
        );
    }

    #[test]
    fn forget_subscriber_drops_entries() {
        let mut tr = RetryTracker::new(policy(), 1);
        tr.track("a", FileId(1), msg(1), t(0));
        tr.track("b", FileId(2), msg(2), t(0));
        tr.forget_subscriber("a");
        assert!(!tr.is_outstanding("a", FileId(1)));
        assert!(tr.is_outstanding("b", FileId(2)));
    }

    #[test]
    fn telemetry_counters_track_lifecycle() {
        let reg = Registry::new();
        let mut tr = RetryTracker::with_telemetry(policy(), 1, &reg);
        tr.track("s", FileId(1), msg(1), t(0));
        tr.track("s", FileId(2), msg(2), t(0));
        assert_eq!(reg.counter_value("reliable.attempts"), Some(2));
        assert_eq!(reg.gauge_value("reliable.outstanding"), Some(2));
        tr.on_ack("s", FileId(2), 1);
        assert_eq!(reg.counter_value("reliable.acks"), Some(1));
        tr.due(t(10)); // attempt 2
        tr.due(t(100)); // attempt 3 == max
        tr.due(t(1000)); // exhausted, dropped from the table
        assert_eq!(reg.counter_value("reliable.resends"), Some(2));
        assert_eq!(reg.counter_value("reliable.attempts"), Some(4));
        assert_eq!(reg.counter_value("reliable.exhausted"), Some(1));
        assert_eq!(reg.gauge_value("reliable.outstanding"), Some(0));
        assert_eq!(tr.totals(), (1, 2, 1));
    }

    #[test]
    fn fire_all_lapses_every_deadline() {
        let mut tr = RetryTracker::new(policy(), 1);
        tr.track("a", FileId(1), msg(1), t(0));
        tr.track("b", FileId(2), msg(2), t(0));
        // nothing is due yet by the clock, but the forced sweep resends
        let r = tr.fire_all(t(1));
        assert_eq!(r.resend.len(), 2);
        assert!(r.exhausted.is_empty());
        assert_eq!(
            tr.outstanding_entries(),
            vec![("a".to_string(), 1, 2), ("b".to_string(), 2, 2),]
        );
        // repeated firing walks each entry to exhaustion
        tr.fire_all(t(2)); // attempt 3 == max
        let r = tr.fire_all(t(3));
        assert_eq!(r.exhausted.len(), 2);
        assert_eq!(tr.outstanding_count(), 0);
    }

    #[test]
    fn oldest_unacked_age_tracks_first_send() {
        let mut tr = RetryTracker::new(policy(), 1);
        assert_eq!(tr.oldest_unacked_age(t(10)), None);
        tr.track("s", FileId(1), msg(1), t(0));
        tr.due(t(10)); // retry does not reset the age
        assert_eq!(tr.oldest_unacked_age(t(15)), Some(TimeSpan::from_secs(15)));
    }
}
