//! Server-side acknowledgement/retry bookkeeping for reliable delivery.
//!
//! The paper's §4.2 requires that "every file received from a data
//! source that matches definition of a particular feed will be delivered
//! to all the feed's subscribers" — over a network that may drop,
//! duplicate, or delay messages ([`crate::net::FaultPlan`]). The
//! [`RetryTracker`] holds every unacked send and schedules
//! retransmissions under a [`RetryPolicy`]: per-subscriber timeout with
//! exponential backoff and seeded jitter (so two servers retrying into
//! the same congested link desynchronize, yet a run still replays
//! bit-for-bit from its seed).
//!
//! The tracker is pure bookkeeping: it never touches the network or the
//! receipt store. The server sends [`ReliableMsg::Attempt`] envelopes,
//! feeds acks into [`RetryTracker::on_ack`], polls
//! [`RetryTracker::due`] on its clock ticks, and writes the delivery
//! receipt only once the ack arrives.
//!
//! [`ReliableMsg::Attempt`]: crate::messages::ReliableMsg::Attempt

use crate::messages::SubscriberMsg;
use bistro_base::{FileId, Rng, TimePoint, TimeSpan};
use bistro_telemetry::{Counter, Gauge, Registry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Retransmission policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Timeout before the first retransmission.
    pub base_timeout: TimeSpan,
    /// Multiplier applied to the timeout after every failed attempt.
    pub backoff: u32,
    /// Ceiling on the per-attempt timeout.
    pub max_timeout: TimeSpan,
    /// Give up (and alarm) after this many attempts.
    pub max_attempts: u32,
    /// Fraction of the timeout randomized (`0.2` = ±20 %), drawn from
    /// the tracker's seeded RNG.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout: TimeSpan::from_secs(30),
            backoff: 2,
            max_timeout: TimeSpan::from_mins(10),
            max_attempts: 6,
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// The nominal (pre-jitter) timeout for `attempt` (1-based):
    /// `base_timeout * backoff^(attempt-1)`, capped at `max_timeout`.
    pub fn timeout_for(&self, attempt: u32) -> TimeSpan {
        let factor = (self.backoff.max(1) as u64).saturating_pow(attempt.saturating_sub(1));
        self.base_timeout
            .saturating_mul(factor)
            .min(self.max_timeout)
    }
}

/// One unacked send.
#[derive(Clone, Debug)]
struct Outstanding {
    attempt: u32,
    deadline: TimePoint,
    first_sent: TimePoint,
    msg: SubscriberMsg,
}

/// A retransmission scheduled by [`RetryTracker::due`].
#[derive(Clone, Debug)]
pub struct Resend {
    /// The subscriber to retransmit to.
    pub subscriber: String,
    /// The file being redelivered.
    pub file: FileId,
    /// The new (bumped) attempt number to stamp on the envelope.
    pub attempt: u32,
    /// The message to wrap and resend.
    pub msg: SubscriberMsg,
}

/// The outcome of one [`RetryTracker::due`] sweep.
#[derive(Clone, Debug, Default)]
pub struct RetryRound {
    /// Sends whose timeout lapsed: retransmit these.
    pub resend: Vec<Resend>,
    /// Sends that exhausted [`RetryPolicy::max_attempts`]; they are no
    /// longer tracked — the caller should alarm and fall back to
    /// failure-detection + backfill.
    pub exhausted: Vec<(String, FileId)>,
}

/// The tracker's telemetry handles. Counters are the *only* tallies —
/// there is no private shadow copy; callers that need the totals read
/// them through [`RetryTracker::totals`].
struct TrackerMetrics {
    attempts: Arc<Counter>,
    acks: Arc<Counter>,
    resends: Arc<Counter>,
    exhausted: Arc<Counter>,
    outstanding: Arc<Gauge>,
}

impl TrackerMetrics {
    fn detached() -> TrackerMetrics {
        TrackerMetrics {
            attempts: Arc::new(Counter::detached()),
            acks: Arc::new(Counter::detached()),
            resends: Arc::new(Counter::detached()),
            exhausted: Arc::new(Counter::detached()),
            outstanding: Arc::new(Gauge::detached()),
        }
    }

    fn registered(reg: &Registry) -> TrackerMetrics {
        TrackerMetrics {
            attempts: reg.counter("reliable.attempts"),
            acks: reg.counter("reliable.acks"),
            resends: reg.counter("reliable.resends"),
            exhausted: reg.counter("reliable.exhausted"),
            outstanding: reg.gauge("reliable.outstanding"),
        }
    }
}

/// The unacked-send table (deterministic iteration: `BTreeMap`).
pub struct RetryTracker {
    policy: RetryPolicy,
    rng: Rng,
    outstanding: BTreeMap<(String, u64), Outstanding>,
    metrics: TrackerMetrics,
}

impl RetryTracker {
    /// A tracker under `policy`; `seed` drives the backoff jitter.
    /// Counters record into detached handles; use
    /// [`RetryTracker::with_telemetry`] to surface them in a registry.
    pub fn new(policy: RetryPolicy, seed: u64) -> RetryTracker {
        RetryTracker {
            policy,
            rng: Rng::seed_from_u64(seed),
            outstanding: BTreeMap::new(),
            metrics: TrackerMetrics::detached(),
        }
    }

    /// A tracker whose `reliable.*` counters and outstanding gauge live
    /// in `reg`. Telemetry draws nothing from the jitter RNG, so a
    /// registered tracker replays identically to a detached one.
    pub fn with_telemetry(policy: RetryPolicy, seed: u64, reg: &Registry) -> RetryTracker {
        RetryTracker {
            policy,
            rng: Rng::seed_from_u64(seed),
            outstanding: BTreeMap::new(),
            metrics: TrackerMetrics::registered(reg),
        }
    }

    /// `(acks, resends, exhausted)` totals since construction — the
    /// reliability tallies formerly duplicated by the server.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.metrics.acks.get(),
            self.metrics.resends.get(),
            self.metrics.exhausted.get(),
        )
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn jittered(&mut self, nominal: TimeSpan) -> TimeSpan {
        if self.policy.jitter <= 0.0 {
            return nominal;
        }
        // uniform in [1-jitter, 1+jitter], re-clamped at max_timeout:
        // `timeout_for` caps the *nominal* timeout, so without the final
        // min() an upward jitter draw could schedule a deadline as far as
        // (1+jitter)·max_timeout out, past the policy's stated ceiling.
        let f = 1.0 + self.policy.jitter * (2.0 * self.rng.next_f64() - 1.0);
        TimeSpan::from_micros((nominal.as_micros() as f64 * f) as u64).min(self.policy.max_timeout)
    }

    /// Register attempt 1 of a send made at `now`; returns the attempt
    /// number to stamp on the envelope. If the `(subscriber, file)` pair
    /// is already outstanding, the existing attempt is kept (the caller
    /// should not double-send; [`RetryTracker::is_outstanding`] guards).
    pub fn track(
        &mut self,
        subscriber: &str,
        file: FileId,
        msg: SubscriberMsg,
        now: TimePoint,
    ) -> u32 {
        let key = (subscriber.to_string(), file.raw());
        if let Some(o) = self.outstanding.get(&key) {
            return o.attempt;
        }
        let deadline = now + self.jittered(self.policy.timeout_for(1));
        self.outstanding.insert(
            key,
            Outstanding {
                attempt: 1,
                deadline,
                first_sent: now,
                msg,
            },
        );
        self.metrics.attempts.inc();
        self.metrics.outstanding.set(self.outstanding.len() as i64);
        1
    }

    /// An ack for `(subscriber, file)` arrived. Returns `true` if the
    /// pair was outstanding (any attempt number proves delivery — a late
    /// ack of an earlier attempt is just as good).
    pub fn on_ack(&mut self, subscriber: &str, file: FileId, _attempt: u32) -> bool {
        let acked = self
            .outstanding
            .remove(&(subscriber.to_string(), file.raw()))
            .is_some();
        if acked {
            self.metrics.acks.inc();
            self.metrics.outstanding.set(self.outstanding.len() as i64);
        }
        acked
    }

    /// True if `(subscriber, file)` has an unacked send in flight.
    pub fn is_outstanding(&self, subscriber: &str, file: FileId) -> bool {
        self.outstanding
            .contains_key(&(subscriber.to_string(), file.raw()))
    }

    /// Number of unacked sends.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Drop every outstanding entry for `subscriber` (it was flagged
    /// offline; recovery goes through backfill instead of retries).
    pub fn forget_subscriber(&mut self, subscriber: &str) {
        self.outstanding.retain(|(sub, _), _| sub != subscriber);
        self.metrics.outstanding.set(self.outstanding.len() as i64);
    }

    /// Sweep the table at `now`: every entry past its deadline is either
    /// scheduled for retransmission (attempt bumped, backoff applied) or,
    /// if `max_attempts` is spent, reported as exhausted and dropped.
    pub fn due(&mut self, now: TimePoint) -> RetryRound {
        let mut round = RetryRound::default();
        let lapsed: Vec<(String, u64)> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.deadline <= now)
            .map(|(k, _)| k.clone())
            .collect();
        for key in lapsed {
            let o = self.outstanding.get_mut(&key).expect("collected above");
            if o.attempt >= self.policy.max_attempts {
                self.outstanding.remove(&key);
                round.exhausted.push((key.0, FileId(key.1)));
                continue;
            }
            o.attempt += 1;
            let attempt = o.attempt;
            let msg = o.msg.clone();
            let nominal = self.policy.timeout_for(attempt);
            let deadline = now + self.jittered(nominal);
            let o = self.outstanding.get_mut(&key).expect("still present");
            o.deadline = deadline;
            round.resend.push(Resend {
                subscriber: key.0,
                file: FileId(key.1),
                attempt,
                msg,
            });
        }
        self.metrics.attempts.add(round.resend.len() as u64);
        self.metrics.resends.add(round.resend.len() as u64);
        self.metrics.exhausted.add(round.exhausted.len() as u64);
        self.metrics.outstanding.set(self.outstanding.len() as i64);
        round
    }

    /// Sweep the table as if *every* outstanding deadline had lapsed at
    /// `now` — the model checker's "fire the retry timer" action, which
    /// abstracts away wall-clock deadlines: an interleaving where the
    /// timer fires is explored regardless of how much virtual time the
    /// policy would have required.
    pub fn fire_all(&mut self, now: TimePoint) -> RetryRound {
        for o in self.outstanding.values_mut() {
            o.deadline = now;
        }
        self.due(now)
    }

    /// The outstanding table as `(subscriber, file, attempt)` tuples in
    /// key order — digestible state for model-checker state hashes.
    pub fn outstanding_entries(&self) -> Vec<(String, u64, u32)> {
        self.outstanding
            .iter()
            .map(|((sub, file), o)| (sub.clone(), *file, o.attempt))
            .collect()
    }

    /// The scheduled retransmission deadline for `(subscriber, file)`,
    /// if outstanding — test-only visibility for the jitter-cap bound.
    #[cfg(test)]
    fn deadline_of(&self, subscriber: &str, file: FileId) -> Option<TimePoint> {
        self.outstanding
            .get(&(subscriber.to_string(), file.raw()))
            .map(|o| o.deadline)
    }

    /// How long the oldest unacked send has been waiting, as of `now`.
    pub fn oldest_unacked_age(&self, now: TimePoint) -> Option<TimeSpan> {
        self.outstanding
            .values()
            .map(|o| now.since(o.first_sent))
            .max()
    }
}

// ---------------------------------------------------------------------------
// Shared delivery trees: compact per-member coverage + group retry table.
//
// A subscriber *group* is delivered once — to its relay node — and the
// relay reports which members it has covered with a bitmap over the
// group's sorted member list. One `Coverage` per outstanding
// `(group, file)` replaces one `Outstanding` entry (string key, cloned
// message, deadline) per *member*: a 1000-member group costs 125 bytes
// of bitmap instead of ~1000 tracker entries, which is what lets fanout
// state scale with group count rather than member count.
// ---------------------------------------------------------------------------

/// Member-coverage bitmap for one `(group, file)` delivery: bit `i`
/// (LSB-first within each byte) is set when member `i` of the group's
/// sorted member list has received the file. The *watermark* is the
/// count of leading covered members — the high-watermark form used on
/// the wire and in receipt records, cheap to compare during recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage {
    members: u32,
    bits: Vec<u8>,
}

impl Coverage {
    /// An empty bitmap over `members` members.
    pub fn new(members: u32) -> Coverage {
        Coverage {
            members,
            bits: vec![0; (members as usize).div_ceil(8)],
        }
    }

    /// Rebuild from wire/receipt form, clamping adversarial input: the
    /// bitmap is truncated (or zero-extended) to the local member count,
    /// stray bits beyond `members` are masked off, and the watermark
    /// prefix is OR-ed in (capped at `members`).
    pub fn from_wire(members: u32, bits: &[u8], watermark: u64) -> Coverage {
        let mut c = Coverage::new(members);
        for (i, byte) in c.bits.iter_mut().enumerate() {
            *byte = bits.get(i).copied().unwrap_or(0);
        }
        c.mask_tail();
        let wm = watermark.min(members as u64) as u32;
        for i in 0..wm {
            c.bits[(i / 8) as usize] |= 1 << (i % 8);
        }
        c
    }

    /// Zero any bits past the member count so `complete`/`count` are
    /// exact even after merging a hostile bitmap.
    fn mask_tail(&mut self) {
        let spare = self.bits.len() * 8 - self.members as usize;
        if spare > 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= 0xFF >> spare;
            }
        }
    }

    /// Mark member `i` covered; true if it was newly set.
    pub fn set(&mut self, i: u32) -> bool {
        if i >= self.members {
            return false;
        }
        let (byte, bit) = ((i / 8) as usize, 1u8 << (i % 8));
        let newly = self.bits[byte] & bit == 0;
        self.bits[byte] |= bit;
        newly
    }

    /// Is member `i` covered?
    pub fn get(&self, i: u32) -> bool {
        i < self.members && self.bits[(i / 8) as usize] & (1 << (i % 8)) != 0
    }

    /// OR another report into this one; true if anything changed.
    pub fn merge_wire(&mut self, bits: &[u8], watermark: u64) -> bool {
        let merged = Coverage::from_wire(self.members, bits, watermark);
        let mut changed = false;
        for (mine, theirs) in self.bits.iter_mut().zip(merged.bits.iter()) {
            if *mine | *theirs != *mine {
                *mine |= *theirs;
                changed = true;
            }
        }
        changed
    }

    /// Covered members.
    pub fn count(&self) -> u32 {
        self.bits.iter().map(|b| b.count_ones()).sum()
    }

    /// Every member covered?
    pub fn complete(&self) -> bool {
        self.count() == self.members
    }

    /// Count of leading covered members (the high-watermark).
    pub fn watermark(&self) -> u32 {
        let mut wm = 0;
        for &byte in &self.bits {
            if byte == 0xFF {
                wm += 8;
                continue;
            }
            wm += byte.trailing_ones();
            break;
        }
        wm.min(self.members)
    }

    /// The group's member count.
    pub fn members(&self) -> u32 {
        self.members
    }

    /// The raw bitmap (wire/receipt form).
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }
}

/// One unacked group delivery.
#[derive(Clone, Debug)]
struct GroupOutstanding {
    attempt: u32,
    deadline: TimePoint,
    coverage: Coverage,
    file_name: String,
    size: u64,
}

/// A group retransmission scheduled by [`GroupTracker::due`] — also the
/// cascaded-backfill trigger: the relay answers every (re)delivery with
/// its current coverage and backfills stragglers from its own store.
#[derive(Clone, Debug)]
pub struct GroupResend {
    /// The group to redeliver to (via its relay endpoint).
    pub group: String,
    /// The file being redelivered (sender-local id).
    pub file: FileId,
    /// The new (bumped) attempt number.
    pub attempt: u32,
    /// The file's landing name (stable across stores).
    pub file_name: String,
    /// Payload size.
    pub size: u64,
}

/// The outcome of one [`GroupTracker::due`] sweep.
#[derive(Clone, Debug, Default)]
pub struct GroupRetryRound {
    /// Deliveries whose timeout lapsed: retransmit these.
    pub resend: Vec<GroupResend>,
    /// Deliveries that exhausted [`RetryPolicy::max_attempts`] with
    /// members still uncovered; the caller should alarm.
    pub exhausted: Vec<(String, FileId)>,
}

struct GroupMetrics {
    attempts: Arc<Counter>,
    acks: Arc<Counter>,
    completed: Arc<Counter>,
    resends: Arc<Counter>,
    exhausted: Arc<Counter>,
    outstanding: Arc<Gauge>,
}

impl GroupMetrics {
    fn detached() -> GroupMetrics {
        GroupMetrics {
            attempts: Arc::new(Counter::detached()),
            acks: Arc::new(Counter::detached()),
            completed: Arc::new(Counter::detached()),
            resends: Arc::new(Counter::detached()),
            exhausted: Arc::new(Counter::detached()),
            outstanding: Arc::new(Gauge::detached()),
        }
    }

    fn registered(reg: &Registry) -> GroupMetrics {
        GroupMetrics {
            attempts: reg.counter("group.attempts"),
            acks: reg.counter("group.acks"),
            completed: reg.counter("group.completed"),
            resends: reg.counter("group.resends"),
            exhausted: reg.counter("group.exhausted"),
            outstanding: reg.gauge("group.outstanding"),
        }
    }
}

/// The unacked *group* delivery table — [`RetryTracker`]'s shape, but
/// one entry (with a [`Coverage`] bitmap) per `(group, file)` instead
/// of one entry per `(member, file)`.
pub struct GroupTracker {
    policy: RetryPolicy,
    rng: Rng,
    outstanding: BTreeMap<(String, u64), GroupOutstanding>,
    metrics: GroupMetrics,
}

impl GroupTracker {
    /// A tracker under `policy`; `seed` drives the backoff jitter.
    pub fn new(policy: RetryPolicy, seed: u64) -> GroupTracker {
        GroupTracker {
            policy,
            rng: Rng::seed_from_u64(seed),
            outstanding: BTreeMap::new(),
            metrics: GroupMetrics::detached(),
        }
    }

    /// A tracker whose `group.*` counters and outstanding gauge live in
    /// `reg`. Telemetry draws nothing from the jitter RNG.
    pub fn with_telemetry(policy: RetryPolicy, seed: u64, reg: &Registry) -> GroupTracker {
        GroupTracker {
            policy,
            rng: Rng::seed_from_u64(seed),
            outstanding: BTreeMap::new(),
            metrics: GroupMetrics::registered(reg),
        }
    }

    fn jittered(&mut self, nominal: TimeSpan) -> TimeSpan {
        if self.policy.jitter <= 0.0 {
            return nominal;
        }
        let f = 1.0 + self.policy.jitter * (2.0 * self.rng.next_f64() - 1.0);
        TimeSpan::from_micros((nominal.as_micros() as f64 * f) as u64).min(self.policy.max_timeout)
    }

    /// Register attempt 1 of a group delivery sent at `now`; returns the
    /// attempt number to stamp on the envelope (the existing one if the
    /// pair is already outstanding).
    pub fn track(
        &mut self,
        group: &str,
        file: FileId,
        members: u32,
        file_name: &str,
        size: u64,
        now: TimePoint,
    ) -> u32 {
        let key = (group.to_string(), file.raw());
        if let Some(o) = self.outstanding.get(&key) {
            return o.attempt;
        }
        let deadline = now + self.jittered(self.policy.timeout_for(1));
        self.outstanding.insert(
            key,
            GroupOutstanding {
                attempt: 1,
                deadline,
                coverage: Coverage::new(members),
                file_name: file_name.to_string(),
                size,
            },
        );
        self.metrics.attempts.inc();
        self.metrics.outstanding.set(self.outstanding.len() as i64);
        1
    }

    /// A coverage report for `(group, file)` arrived. Merges it in and
    /// returns `(merged coverage, changed)` — `None` if the pair is not
    /// outstanding (stale or duplicate ack of a finished delivery). A
    /// complete merge removes the entry.
    pub fn on_ack(
        &mut self,
        group: &str,
        file: FileId,
        bits: &[u8],
        watermark: u64,
    ) -> Option<(Coverage, bool)> {
        let key = (group.to_string(), file.raw());
        let o = self.outstanding.get_mut(&key)?;
        let changed = o.coverage.merge_wire(bits, watermark);
        let merged = o.coverage.clone();
        self.metrics.acks.inc();
        if merged.complete() {
            self.outstanding.remove(&key);
            self.metrics.completed.inc();
            self.metrics.outstanding.set(self.outstanding.len() as i64);
        }
        Some((merged, changed))
    }

    /// True if `(group, file)` has an unfinished delivery in flight.
    pub fn is_outstanding(&self, group: &str, file: FileId) -> bool {
        self.outstanding
            .contains_key(&(group.to_string(), file.raw()))
    }

    /// The current merged coverage for `(group, file)`, if outstanding.
    pub fn coverage(&self, group: &str, file: FileId) -> Option<&Coverage> {
        self.outstanding
            .get(&(group.to_string(), file.raw()))
            .map(|o| &o.coverage)
    }

    /// Number of unfinished group deliveries.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// The retry policy this tracker enforces.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// `(acks, resends, exhausted)` totals since construction.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.metrics.acks.get(),
            self.metrics.resends.get(),
            self.metrics.exhausted.get(),
        )
    }

    /// Sweep the table at `now`: lapsed entries are scheduled for
    /// retransmission or, past `max_attempts`, reported exhausted.
    pub fn due(&mut self, now: TimePoint) -> GroupRetryRound {
        let mut round = GroupRetryRound::default();
        let lapsed: Vec<(String, u64)> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.deadline <= now)
            .map(|(k, _)| k.clone())
            .collect();
        for key in lapsed {
            let o = self.outstanding.get_mut(&key).expect("collected above");
            if o.attempt >= self.policy.max_attempts {
                self.outstanding.remove(&key);
                round.exhausted.push((key.0, FileId(key.1)));
                continue;
            }
            o.attempt += 1;
            let attempt = o.attempt;
            let file_name = o.file_name.clone();
            let size = o.size;
            let nominal = self.policy.timeout_for(attempt);
            let deadline = self.jittered(nominal);
            let o = self.outstanding.get_mut(&key).expect("still present");
            o.deadline = now + deadline;
            round.resend.push(GroupResend {
                group: key.0,
                file: FileId(key.1),
                attempt,
                file_name,
                size,
            });
        }
        self.metrics.attempts.add(round.resend.len() as u64);
        self.metrics.resends.add(round.resend.len() as u64);
        self.metrics.exhausted.add(round.exhausted.len() as u64);
        self.metrics.outstanding.set(self.outstanding.len() as i64);
        round
    }

    /// The outstanding table as `(group, file, attempt, covered)` tuples
    /// in key order — digestible state for determinism hashes.
    pub fn outstanding_entries(&self) -> Vec<(String, u64, u32, u32)> {
        self.outstanding
            .iter()
            .map(|((g, f), o)| (g.clone(), *f, o.attempt, o.coverage.count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> TimePoint {
        TimePoint::from_secs(s)
    }

    fn msg(id: u64) -> SubscriberMsg {
        SubscriberMsg::FileDelivered {
            file: FileId(id),
            feed: "F".to_string(),
            dest_path: "d".to_string(),
            size: 1,
        }
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base_timeout: TimeSpan::from_secs(10),
            backoff: 2,
            max_timeout: TimeSpan::from_secs(100),
            max_attempts: 3,
            jitter: 0.0, // deterministic deadlines for the unit tests
        }
    }

    #[test]
    fn backoff_schedule() {
        let p = policy();
        assert_eq!(p.timeout_for(1), TimeSpan::from_secs(10));
        assert_eq!(p.timeout_for(2), TimeSpan::from_secs(20));
        assert_eq!(p.timeout_for(3), TimeSpan::from_secs(40));
        // capped
        assert_eq!(p.timeout_for(7), TimeSpan::from_secs(100));
    }

    #[test]
    fn ack_clears_before_deadline() {
        let mut tr = RetryTracker::new(policy(), 1);
        assert_eq!(tr.track("s", FileId(1), msg(1), t(0)), 1);
        assert!(tr.is_outstanding("s", FileId(1)));
        assert!(tr.on_ack("s", FileId(1), 1));
        assert!(!tr.is_outstanding("s", FileId(1)));
        // nothing to retry
        assert!(tr.due(t(1000)).resend.is_empty());
        // a second ack for the same pair is a no-op
        assert!(!tr.on_ack("s", FileId(1), 1));
    }

    #[test]
    fn timeout_bumps_attempt_with_backoff() {
        let mut tr = RetryTracker::new(policy(), 1);
        tr.track("s", FileId(1), msg(1), t(0));
        assert!(tr.due(t(5)).resend.is_empty(), "not due yet");
        let r = tr.due(t(10));
        assert_eq!(r.resend.len(), 1);
        assert_eq!(r.resend[0].attempt, 2);
        // next deadline is 10 + 20 (backoff doubled)
        assert!(tr.due(t(29)).resend.is_empty());
        let r = tr.due(t(30));
        assert_eq!(r.resend.len(), 1);
        assert_eq!(r.resend[0].attempt, 3);
    }

    #[test]
    fn exhaustion_after_max_attempts() {
        let mut tr = RetryTracker::new(policy(), 1);
        tr.track("s", FileId(1), msg(1), t(0));
        tr.due(t(10)); // attempt 2
        tr.due(t(100)); // attempt 3 == max
        let r = tr.due(t(1000));
        assert!(r.resend.is_empty());
        assert_eq!(r.exhausted, vec![("s".to_string(), FileId(1))]);
        assert_eq!(tr.outstanding_count(), 0);
    }

    #[test]
    fn late_ack_of_earlier_attempt_counts() {
        let mut tr = RetryTracker::new(policy(), 1);
        tr.track("s", FileId(1), msg(1), t(0));
        tr.due(t(10)); // now at attempt 2
        assert!(
            tr.on_ack("s", FileId(1), 1),
            "attempt-1 ack still proves delivery"
        );
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let mut p = policy();
        p.jitter = 0.5;
        let deadlines = |seed: u64| {
            let mut tr = RetryTracker::new(p, seed);
            tr.track("s", FileId(1), msg(1), t(0));
            // find the deadline by probing
            let mut out = Vec::new();
            for s in 0..30u64 {
                if !tr.due(t(s)).resend.is_empty() {
                    out.push(s);
                }
            }
            out
        };
        let a = deadlines(1);
        assert_eq!(a, deadlines(1), "same seed, same schedule");
        // bounded by [5, 15] for a 10-second base timeout
        assert!(a[0] >= 5 && a[0] <= 15, "{a:?}");
    }

    #[test]
    fn prop_jittered_deadline_never_exceeds_max_timeout_cap() {
        // Regression: `jittered` scaled the nominal timeout *after*
        // `timeout_for` applied the max_timeout cap, so an upward jitter
        // draw could schedule a deadline up to (1+jitter)·max_timeout
        // out. Inductively, lapsing each attempt exactly at its deadline,
        // attempt k's deadline must stay within first_sent +
        // max_timeout·k.
        use bistro_base::prop::Runner;
        use bistro_base::prop_assert;
        Runner::new("retry_deadline_cap").cases(64).run(
            |rng| {
                (
                    rng.gen_range(0u64..1 << 48), // tracker seed
                    rng.gen_range(1u64..=60),     // base timeout (s)
                    rng.gen_range(1u64..=90),     // max timeout (s)
                    rng.gen_range(1u64..=100),    // jitter (% of nominal)
                )
            },
            |&(seed, base, maxt, jitter_pct)| {
                let p = RetryPolicy {
                    base_timeout: TimeSpan::from_secs(base),
                    backoff: 3,
                    max_timeout: TimeSpan::from_secs(maxt),
                    max_attempts: 8,
                    jitter: jitter_pct as f64 / 100.0,
                };
                let mut tr = RetryTracker::new(p, seed);
                let first_sent = t(0);
                tr.track("s", FileId(1), msg(1), first_sent);
                let mut attempts = 1u64;
                while let Some(deadline) = tr.deadline_of("s", FileId(1)) {
                    let cap = first_sent + p.max_timeout.saturating_mul(attempts);
                    prop_assert!(
                        deadline <= cap,
                        "attempt {} deadline {:?} exceeds first_sent + max_timeout*attempts = {:?}",
                        attempts,
                        deadline,
                        cap
                    );
                    tr.due(deadline); // lapse exactly at the deadline
                    attempts += 1;
                }
                Ok(())
            },
        );
    }

    #[test]
    fn forget_subscriber_drops_entries() {
        let mut tr = RetryTracker::new(policy(), 1);
        tr.track("a", FileId(1), msg(1), t(0));
        tr.track("b", FileId(2), msg(2), t(0));
        tr.forget_subscriber("a");
        assert!(!tr.is_outstanding("a", FileId(1)));
        assert!(tr.is_outstanding("b", FileId(2)));
    }

    #[test]
    fn telemetry_counters_track_lifecycle() {
        let reg = Registry::new();
        let mut tr = RetryTracker::with_telemetry(policy(), 1, &reg);
        tr.track("s", FileId(1), msg(1), t(0));
        tr.track("s", FileId(2), msg(2), t(0));
        assert_eq!(reg.counter_value("reliable.attempts"), Some(2));
        assert_eq!(reg.gauge_value("reliable.outstanding"), Some(2));
        tr.on_ack("s", FileId(2), 1);
        assert_eq!(reg.counter_value("reliable.acks"), Some(1));
        tr.due(t(10)); // attempt 2
        tr.due(t(100)); // attempt 3 == max
        tr.due(t(1000)); // exhausted, dropped from the table
        assert_eq!(reg.counter_value("reliable.resends"), Some(2));
        assert_eq!(reg.counter_value("reliable.attempts"), Some(4));
        assert_eq!(reg.counter_value("reliable.exhausted"), Some(1));
        assert_eq!(reg.gauge_value("reliable.outstanding"), Some(0));
        assert_eq!(tr.totals(), (1, 2, 1));
    }

    #[test]
    fn fire_all_lapses_every_deadline() {
        let mut tr = RetryTracker::new(policy(), 1);
        tr.track("a", FileId(1), msg(1), t(0));
        tr.track("b", FileId(2), msg(2), t(0));
        // nothing is due yet by the clock, but the forced sweep resends
        let r = tr.fire_all(t(1));
        assert_eq!(r.resend.len(), 2);
        assert!(r.exhausted.is_empty());
        assert_eq!(
            tr.outstanding_entries(),
            vec![("a".to_string(), 1, 2), ("b".to_string(), 2, 2),]
        );
        // repeated firing walks each entry to exhaustion
        tr.fire_all(t(2)); // attempt 3 == max
        let r = tr.fire_all(t(3));
        assert_eq!(r.exhausted.len(), 2);
        assert_eq!(tr.outstanding_count(), 0);
    }

    #[test]
    fn oldest_unacked_age_tracks_first_send() {
        let mut tr = RetryTracker::new(policy(), 1);
        assert_eq!(tr.oldest_unacked_age(t(10)), None);
        tr.track("s", FileId(1), msg(1), t(0));
        tr.due(t(10)); // retry does not reset the age
        assert_eq!(tr.oldest_unacked_age(t(15)), Some(TimeSpan::from_secs(15)));
    }

    // -- shared delivery trees ---------------------------------------------

    #[test]
    fn coverage_set_count_watermark() {
        let mut c = Coverage::new(11);
        assert_eq!(c.count(), 0);
        assert_eq!(c.watermark(), 0);
        assert!(!c.complete());
        assert!(c.set(0));
        assert!(!c.set(0), "second set is not new");
        assert!(c.set(2));
        assert_eq!(c.count(), 2);
        assert_eq!(c.watermark(), 1, "gap at member 1 stops the watermark");
        c.set(1);
        assert_eq!(c.watermark(), 3);
        for i in 3..11 {
            c.set(i);
        }
        assert!(c.complete());
        assert_eq!(c.watermark(), 11);
        // out-of-range member indices are ignored, not panics
        assert!(!c.set(11));
        assert!(!c.get(11));
    }

    #[test]
    fn coverage_wire_roundtrip_and_hostile_input() {
        let mut c = Coverage::new(10);
        c.set(0);
        c.set(1);
        c.set(7);
        c.set(9);
        let back = Coverage::from_wire(10, c.bits(), c.watermark() as u64);
        assert_eq!(back, c);

        // oversized bitmap, stray tail bits and a lying watermark are
        // all clamped to the member count
        let hostile = Coverage::from_wire(3, &[0xFF, 0xFF, 0xFF, 0xFF], u64::MAX);
        assert_eq!(hostile.members(), 3);
        assert_eq!(hostile.count(), 3);
        assert!(hostile.complete());

        // a short bitmap with a watermark still covers the prefix
        let prefix = Coverage::from_wire(20, &[], 12);
        assert_eq!(prefix.count(), 12);
        assert_eq!(prefix.watermark(), 12);
        assert!(!prefix.complete());
    }

    #[test]
    fn group_tracker_partial_acks_then_complete() {
        let mut tr = GroupTracker::new(policy(), 1);
        assert_eq!(tr.track("g", FileId(1), 10, "f_1.csv", 3, t(0)), 1);
        assert!(tr.is_outstanding("g", FileId(1)));
        // duplicate track keeps the existing attempt
        assert_eq!(tr.track("g", FileId(1), 10, "f_1.csv", 3, t(1)), 1);

        // partial coverage: first 4 members — stays outstanding
        let partial = Coverage::from_wire(10, &[], 4);
        let (merged, changed) = tr
            .on_ack("g", FileId(1), partial.bits(), 4)
            .expect("outstanding");
        assert!(changed);
        assert_eq!(merged.count(), 4);
        assert!(tr.is_outstanding("g", FileId(1)));
        assert_eq!(tr.coverage("g", FileId(1)).unwrap().watermark(), 4);

        // same report again: no change
        let (_, changed) = tr.on_ack("g", FileId(1), partial.bits(), 4).unwrap();
        assert!(!changed);

        // full coverage finishes and removes the entry
        let full = Coverage::from_wire(10, &[], 10);
        let (merged, _) = tr.on_ack("g", FileId(1), full.bits(), 10).unwrap();
        assert!(merged.complete());
        assert!(!tr.is_outstanding("g", FileId(1)));
        assert_eq!(tr.outstanding_count(), 0);
        // an ack for a finished delivery is a stale no-op
        assert!(tr.on_ack("g", FileId(1), full.bits(), 10).is_none());
    }

    #[test]
    fn group_tracker_retries_and_exhausts_like_retry_tracker() {
        let mut tr = GroupTracker::new(policy(), 1);
        tr.track("g", FileId(1), 8, "f_1.csv", 3, t(0));
        assert!(tr.due(t(5)).resend.is_empty(), "not due yet");
        let r = tr.due(t(10));
        assert_eq!(r.resend.len(), 1);
        assert_eq!(r.resend[0].attempt, 2);
        assert_eq!(r.resend[0].file_name, "f_1.csv");
        tr.due(t(100)); // attempt 3 == max
        let r = tr.due(t(1000));
        assert!(r.resend.is_empty());
        assert_eq!(r.exhausted, vec![("g".to_string(), FileId(1))]);
        assert_eq!(tr.outstanding_count(), 0);
        assert_eq!(tr.totals(), (0, 2, 1));
    }

    #[test]
    fn group_tracker_telemetry_and_digest_entries() {
        let reg = Registry::new();
        let mut tr = GroupTracker::with_telemetry(policy(), 1, &reg);
        tr.track("g", FileId(1), 4, "a", 1, t(0));
        tr.track("h", FileId(2), 2, "b", 1, t(0));
        assert_eq!(reg.counter_value("group.attempts"), Some(2));
        assert_eq!(reg.gauge_value("group.outstanding"), Some(2));
        let half = Coverage::from_wire(4, &[], 2);
        tr.on_ack("g", FileId(1), half.bits(), 2);
        assert_eq!(
            tr.outstanding_entries(),
            vec![("g".to_string(), 1, 1, 2), ("h".to_string(), 2, 1, 0)]
        );
        let full = Coverage::from_wire(2, &[], 2);
        tr.on_ack("h", FileId(2), full.bits(), 2);
        assert_eq!(reg.counter_value("group.completed"), Some(1));
        assert_eq!(reg.counter_value("group.acks"), Some(2));
        assert_eq!(reg.gauge_value("group.outstanding"), Some(1));
    }
}
