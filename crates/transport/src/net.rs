//! Simulated network fabric.
//!
//! Named endpoints exchange [`Message`]s over links with bandwidth,
//! latency and outage windows, all on simulated time. This substitutes
//! for the paper's production WAN (DESIGN.md substitution table):
//! propagation-delay experiments (E3) measure the time from a source's
//! deposit to the subscriber-side notification through this fabric.
//!
//! The model is intentionally simple and deterministic: each message
//! occupies its link for `wire_size / bandwidth` (serialization delay,
//! FIFO per link) plus a fixed propagation latency. A message entering a
//! link during an outage window is queued until the link recovers.
//!
//! ## Fault injection
//!
//! A seeded [`FaultPlan`] turns the fabric hostile: per-link message
//! *drop* probability, *duplication* probability, and programmatic link
//! *flaps* (scheduled outage windows, optionally jittered). Every fault
//! decision is drawn from a [`bistro_base::Rng`] seeded by the plan, so
//! a faulty run replays bit-for-bit from its seed — the foundation of
//! the delivery-reliability tests (DESIGN.md, "Failure model").

use crate::messages::Message;
use bistro_base::sync::Mutex;
use bistro_base::{Rng, TimePoint, TimeSpan};
use std::collections::{BTreeMap, HashMap};

/// Link characteristics.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Bytes per second.
    pub bandwidth: u64,
    /// Fixed propagation latency.
    pub latency: TimeSpan,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            bandwidth: 100_000_000, // 100 MB/s
            latency: TimeSpan::from_millis(1),
        }
    }
}

#[derive(Default)]
struct LinkState {
    /// The time at which the link becomes free (serialization is FIFO).
    busy_until: TimePoint,
}

/// Per-link fault probabilities.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultSpec {
    /// Probability a message is silently lost in transit.
    pub drop_prob: f64,
    /// Probability a message is delivered a second time.
    pub dup_prob: f64,
    /// Extra delay on the duplicated copy (after the original arrival).
    pub dup_delay: TimeSpan,
}

impl FaultSpec {
    /// A spec that drops `drop_prob` and duplicates `dup_prob` of
    /// messages, duplicates trailing by one second.
    pub fn lossy(drop_prob: f64, dup_prob: f64) -> FaultSpec {
        FaultSpec {
            drop_prob,
            dup_prob,
            dup_delay: TimeSpan::from_secs(1),
        }
    }
}

/// A programmatic link flap: `count` outages of `down_for` each,
/// starting at `first_down` and separated by `period`. Each window start
/// is jittered by up to `jitter` (drawn from the plan's seeded RNG), so
/// flap schedules vary across seeds but replay exactly for a given one.
#[derive(Clone, Debug)]
pub struct LinkFlap {
    /// Sender endpoint of the flapping directed link.
    pub from: String,
    /// Receiver endpoint of the flapping directed link.
    pub to: String,
    /// Start of the first outage window (before jitter).
    pub first_down: TimePoint,
    /// Spacing between consecutive window starts.
    pub period: TimeSpan,
    /// Length of each outage window.
    pub down_for: TimeSpan,
    /// Number of outage windows.
    pub count: usize,
    /// Maximum random forward shift applied per window.
    pub jitter: TimeSpan,
}

/// A seeded description of everything that can go wrong on the fabric.
///
/// Installed with [`SimNetwork::install_fault_plan`]; all fault
/// decisions (drops, duplicates, flap jitter) are drawn from a single
/// [`Rng`] seeded by `seed`, so identical send sequences produce
/// identical fault sequences.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Faults applied to links without a per-link override.
    pub default_faults: FaultSpec,
    /// Per-directed-link overrides `(from, to, spec)`.
    pub link_faults: Vec<(String, String, FaultSpec)>,
    /// Scheduled link flaps, installed as outage windows.
    pub flaps: Vec<LinkFlap>,
}

impl FaultPlan {
    /// A plan with uniform faults on every link and no flaps.
    pub fn uniform(seed: u64, spec: FaultSpec) -> FaultPlan {
        FaultPlan {
            seed,
            default_faults: spec,
            link_faults: Vec::new(),
            flaps: Vec::new(),
        }
    }
}

struct FaultState {
    rng: Rng,
    default_faults: FaultSpec,
    per_link: HashMap<(String, String), FaultSpec>,
}

/// A delivered message waiting in an endpoint's inbox.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// When the message fully arrived.
    pub at: TimePoint,
    /// Sender endpoint.
    pub from: String,
    /// The message.
    pub msg: Message,
}

/// An in-flight message addressed for controlled stepping: the
/// `(endpoint, seq)` pair uniquely names it to
/// [`SimNetwork::take_message`] / [`SimNetwork::drop_message`] /
/// [`SimNetwork::duplicate_message`].
#[derive(Clone, Debug)]
pub struct PendingMessage {
    /// Destination endpoint.
    pub endpoint: String,
    /// Fabric-wide sequence number (unique per copy).
    pub seq: u64,
    /// Sender endpoint.
    pub from: String,
    /// Scheduled arrival time under time-driven delivery.
    pub at: TimePoint,
    /// The message.
    pub msg: Message,
}

struct Inner {
    links: HashMap<(String, String), LinkSpec>,
    link_state: HashMap<(String, String), LinkState>,
    outages: HashMap<(String, String), Vec<(TimePoint, TimePoint)>>,
    default_link: LinkSpec,
    faults: Option<FaultState>,
    /// Per-endpoint inbox ordered by arrival time.
    inboxes: HashMap<String, BTreeMap<(TimePoint, u64), Delivery>>,
    seq: u64,
    /// Total bytes that crossed the fabric.
    bytes_sent: u64,
    /// Messages sent.
    messages_sent: u64,
    /// Messages lost to fault injection.
    messages_dropped: u64,
    /// Extra copies created by fault injection.
    messages_duplicated: u64,
}

/// The simulated network.
pub struct SimNetwork {
    inner: Mutex<Inner>,
}

impl SimNetwork {
    /// An empty fabric where every pair is connected by `default_link`.
    pub fn new(default_link: LinkSpec) -> SimNetwork {
        SimNetwork {
            inner: Mutex::new(Inner {
                links: HashMap::new(),
                link_state: HashMap::new(),
                outages: HashMap::new(),
                default_link,
                faults: None,
                inboxes: HashMap::new(),
                seq: 0,
                bytes_sent: 0,
                messages_sent: 0,
                messages_dropped: 0,
                messages_duplicated: 0,
            }),
        }
    }

    /// Install a seeded fault plan: drops and duplicates apply to every
    /// subsequent [`SimNetwork::send`], and the plan's flaps are
    /// registered as outage windows (with seeded jitter) immediately.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        let mut rng = Rng::seed_from_u64(plan.seed);
        let mut inner = self.inner.lock();
        for flap in &plan.flaps {
            for i in 0..flap.count {
                let shift = if flap.jitter > TimeSpan::ZERO {
                    TimeSpan::from_micros(rng.gen_range(0..=flap.jitter.as_micros()))
                } else {
                    TimeSpan::ZERO
                };
                let down = flap.first_down + flap.period.saturating_mul(i as u64) + shift;
                let key = (flap.from.clone(), flap.to.clone());
                let windows = inner.outages.entry(key).or_default();
                windows.push((down, down + flap.down_for));
                windows.sort_unstable();
            }
        }
        inner.faults = Some(FaultState {
            rng,
            default_faults: plan.default_faults,
            per_link: plan
                .link_faults
                .iter()
                .map(|(f, t, s)| ((f.clone(), t.clone()), *s))
                .collect(),
        });
    }

    /// Configure a specific directed link.
    pub fn set_link(&self, from: &str, to: &str, spec: LinkSpec) {
        self.inner
            .lock()
            .links
            .insert((from.to_string(), to.to_string()), spec);
    }

    /// Add an outage window `[down, up)` on a directed link. Windows are
    /// kept sorted by start so the send path can bump past adjacent or
    /// overlapping windows in one forward pass.
    pub fn add_outage(&self, from: &str, to: &str, down: TimePoint, up: TimePoint) {
        let mut inner = self.inner.lock();
        let windows = inner
            .outages
            .entry((from.to_string(), to.to_string()))
            .or_default();
        windows.push((down, up));
        windows.sort_unstable();
    }

    /// Send a message at simulated time `now`; returns the arrival time
    /// the sender would observe. Under an installed [`FaultPlan`] the
    /// message may additionally be dropped (never delivered — the
    /// returned arrival is when it *would* have arrived) or duplicated.
    pub fn send(&self, now: TimePoint, from: &str, to: &str, msg: Message) -> TimePoint {
        let mut inner = self.inner.lock();
        let key = (from.to_string(), to.to_string());
        let spec = inner.links.get(&key).copied().unwrap_or(inner.default_link);

        // FIFO merge first: serialization cannot begin before the link is
        // free. Then bump past every outage window covering that instant,
        // to a fixpoint — a bump past one window can land inside another
        // (adjacent, overlapping, or merely listed out of order).
        let busy_until = inner
            .link_state
            .get(&key)
            .map(|s| s.busy_until)
            .unwrap_or_default();
        let mut begin = now.max(busy_until);
        if let Some(outs) = inner.outages.get(&key) {
            while let Some(&(_, up)) = outs.iter().find(|&&(down, up)| begin >= down && begin < up)
            {
                begin = up;
            }
        }
        let size = msg.wire_size();
        // Round the serialization delay *up* to at least 1 µs: integer
        // division would truncate to zero for any message smaller than
        // bandwidth/1e6 bytes, letting small messages occupy the link for
        // no time at all and never contend with each other.
        let ser = TimeSpan::from_micros(
            size.saturating_mul(1_000_000)
                .div_ceil(spec.bandwidth.max(1))
                .max(1),
        );
        let done_sending = begin + ser;
        inner.link_state.entry(key.clone()).or_default().busy_until = done_sending;
        let arrival = done_sending + spec.latency;

        inner.bytes_sent += size;
        inner.messages_sent += 1;

        // fault injection: drop or duplicate, decided by the seeded plan
        let inner = &mut *inner; // split field borrows through the guard
        let mut deliver_at = vec![arrival];
        if let Some(faults) = &mut inner.faults {
            let fspec = faults
                .per_link
                .get(&key)
                .copied()
                .unwrap_or(faults.default_faults);
            if fspec.drop_prob > 0.0 && faults.rng.gen_bool(fspec.drop_prob) {
                deliver_at.clear();
                inner.messages_dropped += 1;
            } else if fspec.dup_prob > 0.0 && faults.rng.gen_bool(fspec.dup_prob) {
                deliver_at.push(arrival + fspec.dup_delay);
                inner.messages_duplicated += 1;
            }
        }
        for at in deliver_at {
            inner.seq += 1;
            let seq = inner.seq;
            inner.inboxes.entry(to.to_string()).or_default().insert(
                (at, seq),
                Delivery {
                    at,
                    from: from.to_string(),
                    msg: msg.clone(),
                },
            );
        }
        arrival
    }

    /// Drain all messages that have arrived at `endpoint` by `now`.
    pub fn recv_ready(&self, endpoint: &str, now: TimePoint) -> Vec<Delivery> {
        self.recv_where(endpoint, now, |_| true)
    }

    /// Drain only the messages arrived at `endpoint` by `now` that match
    /// `pred`; everything else stays queued. Lets a protocol client pick
    /// its own responses out of the inbox without discarding unrelated
    /// traffic that arrived in the same window.
    pub fn recv_where(
        &self,
        endpoint: &str,
        now: TimePoint,
        mut pred: impl FnMut(&Delivery) -> bool,
    ) -> Vec<Delivery> {
        let mut inner = self.inner.lock();
        let Some(inbox) = inner.inboxes.get_mut(endpoint) else {
            return Vec::new();
        };
        let keys: Vec<_> = inbox
            .range(..=(now, u64::MAX))
            .filter(|(_, d)| pred(d))
            .map(|(k, _)| *k)
            .collect();
        keys.into_iter()
            .map(|k| inbox.remove(&k).unwrap())
            .collect()
    }

    /// Every message still in flight, across all endpoints, sorted by
    /// `(endpoint, seq)` — the controlled-stepping view used by the
    /// model checker (`bistro-mc`). Where [`SimNetwork::recv_ready`]
    /// drains whatever the clock says has arrived, this exposes each
    /// pending message as an addressable event so a scheduler can
    /// deliver, drop, or duplicate them in any order it chooses.
    pub fn pending_messages(&self) -> Vec<PendingMessage> {
        let inner = self.inner.lock();
        let mut out: Vec<PendingMessage> = inner
            .inboxes
            .iter()
            .flat_map(|(endpoint, inbox)| {
                inbox.iter().map(|(&(at, seq), d)| PendingMessage {
                    endpoint: endpoint.clone(),
                    seq,
                    from: d.from.clone(),
                    at,
                    msg: d.msg.clone(),
                })
            })
            .collect();
        out.sort_by(|a, b| (&a.endpoint, a.seq).cmp(&(&b.endpoint, b.seq)));
        out
    }

    /// Remove and return the in-flight message addressed by
    /// `(endpoint, seq)` regardless of its scheduled arrival time. The
    /// model checker's "deliver this message now" step.
    pub fn take_message(&self, endpoint: &str, seq: u64) -> Option<Delivery> {
        let mut inner = self.inner.lock();
        let inbox = inner.inboxes.get_mut(endpoint)?;
        let key = inbox.keys().find(|&&(_, s)| s == seq).copied()?;
        inbox.remove(&key)
    }

    /// Silently discard the in-flight message addressed by
    /// `(endpoint, seq)`, counting it as dropped. The model checker's
    /// "lose this message" step.
    pub fn drop_message(&self, endpoint: &str, seq: u64) -> Option<Delivery> {
        let mut inner = self.inner.lock();
        let inbox = inner.inboxes.get_mut(endpoint)?;
        let key = inbox.keys().find(|&&(_, s)| s == seq).copied()?;
        let dropped = inbox.remove(&key);
        if dropped.is_some() {
            inner.messages_dropped += 1;
        }
        dropped
    }

    /// Enqueue a second copy of the in-flight message addressed by
    /// `(endpoint, seq)`, counting it as duplicated; returns the copy's
    /// fabric sequence. The model checker's "duplicate this message"
    /// step.
    pub fn duplicate_message(&self, endpoint: &str, seq: u64) -> Option<u64> {
        let mut inner = self.inner.lock();
        let inbox = inner.inboxes.get(endpoint)?;
        let (key, copy) = inbox
            .iter()
            .find(|(&(_, s), _)| s == seq)
            .map(|(k, d)| (*k, d.clone()))?;
        inner.seq += 1;
        let new_seq = inner.seq;
        inner
            .inboxes
            .get_mut(endpoint)
            .expect("inbox vanished under lock")
            .insert((key.0, new_seq), copy);
        inner.messages_duplicated += 1;
        Some(new_seq)
    }

    /// Order-independent digest of the in-flight message multiset:
    /// each pending message hashes as (endpoint, sender, wire bytes) —
    /// deliberately excluding arrival times and fabric sequences, which
    /// vary across action orders that reach the same protocol state —
    /// and the per-message hashes are combined order-independently.
    /// One ingredient of a model-checker state hash.
    pub fn in_flight_digest(&self) -> u64 {
        use bistro_base::fnv1a64;
        let inner = self.inner.lock();
        let mut hashes: Vec<u64> = inner
            .inboxes
            .iter()
            .flat_map(|(endpoint, inbox)| {
                inbox.values().map(move |d| {
                    let mut bytes = Vec::with_capacity(64);
                    bytes.extend_from_slice(endpoint.as_bytes());
                    bytes.push(0);
                    bytes.extend_from_slice(d.from.as_bytes());
                    bytes.push(0);
                    bytes.extend_from_slice(&d.msg.encode());
                    fnv1a64(&bytes)
                })
            })
            .collect();
        hashes.sort_unstable();
        let mut acc = Vec::with_capacity(hashes.len() * 8);
        for h in hashes {
            acc.extend_from_slice(&h.to_le_bytes());
        }
        fnv1a64(&acc)
    }

    /// The earliest pending arrival time for `endpoint`, if any — lets a
    /// driver advance the clock to the next interesting instant.
    pub fn next_arrival(&self, endpoint: &str) -> Option<TimePoint> {
        let inner = self.inner.lock();
        inner.inboxes.get(endpoint)?.keys().next().map(|(t, _)| *t)
    }

    /// Earliest pending arrival across all endpoints.
    pub fn next_arrival_any(&self) -> Option<TimePoint> {
        let inner = self.inner.lock();
        inner
            .inboxes
            .values()
            .filter_map(|b| b.keys().next().map(|(t, _)| *t))
            .min()
    }

    /// Total bytes sent through the fabric.
    pub fn bytes_sent(&self) -> u64 {
        self.inner.lock().bytes_sent
    }

    /// Total messages sent through the fabric.
    pub fn messages_sent(&self) -> u64 {
        self.inner.lock().messages_sent
    }

    /// Messages lost to the installed fault plan.
    pub fn messages_dropped(&self) -> u64 {
        self.inner.lock().messages_dropped
    }

    /// Extra copies created by the installed fault plan.
    pub fn messages_duplicated(&self) -> u64 {
        self.inner.lock().messages_duplicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::SourceMsg;

    fn msg(size: u64) -> Message {
        Message::Source(SourceMsg::Deposited {
            path: "x".to_string(),
            size,
        })
    }

    fn t(s: u64) -> TimePoint {
        TimePoint::from_secs(s)
    }

    #[test]
    fn latency_and_serialization() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000, // 1 MB/s
            latency: TimeSpan::from_millis(100),
        });
        // Deposited msg wire size is header-only (~small)
        let arrival = net.send(t(0), "a", "b", msg(0));
        assert!(arrival >= TimePoint::from_millis(100));
        assert!(arrival < TimePoint::from_millis(200));
    }

    #[test]
    fn fifo_serialization_queues() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 10, // absurdly slow: 10 B/s
            latency: TimeSpan::ZERO,
        });
        let a1 = net.send(t(0), "a", "b", msg(0));
        let a2 = net.send(t(0), "a", "b", msg(0));
        assert!(a2 > a1, "second message waits for the first");
    }

    #[test]
    fn small_sends_still_occupy_the_link() {
        // Regression: serialization time truncated to 0 µs for messages
        // smaller than bandwidth/1e6 bytes, so back-to-back small sends
        // shared one busy_until and contention was never modeled. The
        // delay now rounds up to ≥1 µs, so the second send's arrival
        // (busy_until + fixed latency) is strictly later.
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 100_000_000, // 100 MB/s: header-only msgs are < 100 B
            latency: TimeSpan::from_millis(1),
        });
        let a1 = net.send(t(0), "a", "b", msg(0));
        let a2 = net.send(t(0), "a", "b", msg(0));
        assert!(
            a2 > a1,
            "back-to-back small sends must get distinct busy_until: {a1:?} vs {a2:?}"
        );
        assert!(a2 >= a1 + TimeSpan::from_micros(1));
    }

    #[test]
    fn recv_ready_respects_time() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000_000,
            latency: TimeSpan::from_secs(5),
        });
        net.send(t(0), "a", "b", msg(0));
        assert!(net.recv_ready("b", t(1)).is_empty());
        let got = net.recv_ready("b", t(6));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, "a");
        // drained: second call is empty
        assert!(net.recv_ready("b", t(10)).is_empty());
    }

    #[test]
    fn outage_delays_delivery() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000_000,
            latency: TimeSpan::from_millis(1),
        });
        net.add_outage("a", "b", t(0), t(60));
        let arrival = net.send(t(10), "a", "b", msg(0));
        assert!(arrival >= t(60));
        // other direction unaffected
        let arrival = net.send(t(10), "b", "a", msg(0));
        assert!(arrival < t(11));
    }

    #[test]
    fn per_link_overrides() {
        let net = SimNetwork::new(LinkSpec::default());
        net.set_link(
            "a",
            "slow",
            LinkSpec {
                bandwidth: 1,
                latency: TimeSpan::from_secs(30),
            },
        );
        let fast = net.send(t(0), "a", "fast", msg(0));
        let slow = net.send(t(0), "a", "slow", msg(0));
        assert!(slow > fast + TimeSpan::from_secs(10));
    }

    #[test]
    fn adjacent_outages_registered_out_of_order() {
        // Regression: windows were scanned in insertion order with at
        // most one bump each, so bumping past the second-listed window
        // could land inside the first-listed (adjacent) one and deliver
        // during an outage.
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000_000,
            latency: TimeSpan::ZERO,
        });
        net.add_outage("a", "b", t(60), t(120)); // registered first
        net.add_outage("a", "b", t(0), t(60)); // adjacent, earlier
        let arrival = net.send(t(10), "a", "b", msg(0));
        assert!(
            arrival >= t(120),
            "send at t=10 must wait out both adjacent windows, got {arrival:?}"
        );
        // overlapping windows likewise resolve to the latest recovery
        net.add_outage("a", "b", t(200), t(400));
        net.add_outage("a", "b", t(150), t(250));
        let arrival = net.send(t(160), "a", "b", msg(0));
        assert!(arrival >= t(400), "{arrival:?}");
    }

    #[test]
    fn fifo_merge_cannot_land_in_outage() {
        // Regression: `begin = start.max(busy_until)` could push the
        // send *back into* an outage after the outage check had passed.
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 10, // 10 B/s: a 500-byte message occupies 50 s
            latency: TimeSpan::ZERO,
        });
        net.add_outage("a", "b", t(40), t(100));
        // a push delivery's wire size includes its payload (500 bytes)
        let first = net.send(
            t(0),
            "a",
            "b",
            Message::Subscriber(crate::messages::SubscriberMsg::FileDelivered {
                file: bistro_base::FileId(1),
                feed: "F".to_string(),
                dest_path: "d".to_string(),
                size: 500,
            }),
        );
        assert!(first >= t(50));
        // the second send starts clear of any outage but the FIFO merge
        // lands it at busy_until = 50s, inside [40, 100)
        let second = net.send(t(0), "a", "b", msg(0));
        assert!(
            second >= t(100),
            "FIFO-merged send must wait out the outage, got {second:?}"
        );
    }

    #[test]
    fn fault_plan_drops_are_seeded_and_counted() {
        let run = |seed: u64| {
            let net = SimNetwork::new(LinkSpec::default());
            net.install_fault_plan(FaultPlan::uniform(seed, FaultSpec::lossy(0.5, 0.0)));
            for _ in 0..100 {
                net.send(t(0), "a", "b", msg(0));
            }
            let delivered = net.recv_ready("b", t(100)).len() as u64;
            (delivered, net.messages_dropped())
        };
        let (delivered, dropped) = run(7);
        assert_eq!(delivered + dropped, 100);
        assert!(dropped > 20 && dropped < 80, "dropped {dropped}");
        // same seed, same faults — bit-for-bit replay
        assert_eq!(run(7), (delivered, dropped));
        // a different seed gives a different fault sequence
        assert_ne!(run(8), (delivered, dropped));
    }

    #[test]
    fn fault_plan_duplicates_messages() {
        let net = SimNetwork::new(LinkSpec::default());
        net.install_fault_plan(FaultPlan::uniform(
            3,
            FaultSpec {
                drop_prob: 0.0,
                dup_prob: 1.0,
                dup_delay: TimeSpan::from_secs(5),
            },
        ));
        let arrival = net.send(t(0), "a", "b", msg(0));
        assert_eq!(net.messages_duplicated(), 1);
        // the original arrives on time, the copy 5 s later
        assert_eq!(net.recv_ready("b", arrival).len(), 1);
        assert_eq!(
            net.recv_ready("b", arrival + TimeSpan::from_secs(5)).len(),
            1
        );
    }

    #[test]
    fn fault_plan_per_link_overrides() {
        let net = SimNetwork::new(LinkSpec::default());
        let mut plan = FaultPlan::uniform(1, FaultSpec::default());
        plan.link_faults.push((
            "a".to_string(),
            "lossy".to_string(),
            FaultSpec::lossy(1.0, 0.0),
        ));
        net.install_fault_plan(plan);
        net.send(t(0), "a", "lossy", msg(0));
        net.send(t(0), "a", "clean", msg(0));
        assert!(net.recv_ready("lossy", t(10)).is_empty());
        assert_eq!(net.recv_ready("clean", t(10)).len(), 1);
    }

    #[test]
    fn fault_plan_flaps_become_outages() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000_000,
            latency: TimeSpan::ZERO,
        });
        let mut plan = FaultPlan::uniform(9, FaultSpec::default());
        plan.flaps.push(LinkFlap {
            from: "a".to_string(),
            to: "b".to_string(),
            first_down: t(100),
            period: TimeSpan::from_secs(100),
            down_for: TimeSpan::from_secs(20),
            count: 3,
            jitter: TimeSpan::ZERO,
        });
        net.install_fault_plan(plan);
        // before the first flap: unaffected
        assert!(net.send(t(50), "a", "b", msg(0)) < t(60));
        // inside the second flap window [200, 220): held until recovery
        assert!(net.send(t(205), "a", "b", msg(0)) >= t(220));
    }

    #[test]
    fn recv_where_leaves_unmatched_queued() {
        let net = SimNetwork::new(LinkSpec::default());
        net.send(t(0), "a", "b", msg(10));
        net.send(t(0), "c", "b", msg(20));
        let picked = net.recv_where("b", t(10), |d| d.from == "a");
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].from, "a");
        // the other message is still there
        let rest = net.recv_ready("b", t(10));
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].from, "c");
    }

    #[test]
    fn pending_messages_are_addressable() {
        let net = SimNetwork::new(LinkSpec::default());
        net.send(t(0), "a", "b", msg(1));
        net.send(t(0), "a", "c", msg(2));
        net.send(t(0), "c", "b", msg(3));

        let pending = net.pending_messages();
        assert_eq!(pending.len(), 3);
        // sorted by (endpoint, seq)
        let order: Vec<_> = pending
            .iter()
            .map(|p| (p.endpoint.clone(), p.seq))
            .collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);

        // take one out of order (regardless of arrival time)
        let to_b: Vec<_> = pending.iter().filter(|p| p.endpoint == "b").collect();
        assert_eq!(to_b.len(), 2);
        let later = to_b[1];
        let got = net.take_message("b", later.seq).unwrap();
        assert_eq!(got.from, later.from);
        assert_eq!(net.pending_messages().len(), 2);
        // a second take of the same seq is None
        assert!(net.take_message("b", later.seq).is_none());
        assert!(net.take_message("nobody", 1).is_none());
    }

    #[test]
    fn drop_and_duplicate_pending() {
        let net = SimNetwork::new(LinkSpec::default());
        net.send(t(0), "a", "b", msg(1));
        let seq = net.pending_messages()[0].seq;

        let copy_seq = net.duplicate_message("b", seq).unwrap();
        assert_ne!(copy_seq, seq);
        assert_eq!(net.messages_duplicated(), 1);
        assert_eq!(net.pending_messages().len(), 2);

        assert!(net.drop_message("b", seq).is_some());
        assert_eq!(net.messages_dropped(), 1);
        // the copy survives the original's drop
        let left = net.pending_messages();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].seq, copy_seq);
        // duplicating a gone message is None
        assert!(net.duplicate_message("b", seq).is_none());
    }

    #[test]
    fn in_flight_digest_ignores_schedule_but_sees_content() {
        // Two different send orders reaching the same in-flight multiset
        // must hash identically even though seqs/arrival times differ.
        let run = |flip: bool| {
            let net = SimNetwork::new(LinkSpec::default());
            if flip {
                net.send(t(1), "a", "c", msg(2));
                net.send(t(2), "a", "b", msg(1));
            } else {
                net.send(t(0), "a", "b", msg(1));
                net.send(t(0), "a", "c", msg(2));
            }
            net.in_flight_digest()
        };
        assert_eq!(run(false), run(true));

        // content differences do change the digest
        let net = SimNetwork::new(LinkSpec::default());
        net.send(t(0), "a", "b", msg(1));
        net.send(t(0), "a", "c", msg(99));
        assert_ne!(net.in_flight_digest(), run(false));

        // and an empty fabric differs from a loaded one
        let empty = SimNetwork::new(LinkSpec::default());
        assert_ne!(empty.in_flight_digest(), run(false));
    }

    #[test]
    fn next_arrival_ordering() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000_000,
            latency: TimeSpan::from_secs(3),
        });
        net.send(t(0), "a", "b", msg(0));
        net.send(t(0), "a", "c", msg(0));
        assert!(net.next_arrival("b").is_some());
        assert_eq!(net.next_arrival_any(), net.next_arrival("b"));
        assert_eq!(net.next_arrival("nobody"), None);
        assert_eq!(net.messages_sent(), 2);
    }
}
