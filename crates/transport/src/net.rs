//! Simulated network fabric.
//!
//! Named endpoints exchange [`Message`]s over links with bandwidth,
//! latency and outage windows, all on simulated time. This substitutes
//! for the paper's production WAN (DESIGN.md substitution table):
//! propagation-delay experiments (E3) measure the time from a source's
//! deposit to the subscriber-side notification through this fabric.
//!
//! The model is intentionally simple and deterministic: each message
//! occupies its link for `wire_size / bandwidth` (serialization delay,
//! FIFO per link) plus a fixed propagation latency. A message entering a
//! link during an outage window is queued until the link recovers.

use crate::messages::Message;
use bistro_base::sync::Mutex;
use bistro_base::{TimePoint, TimeSpan};
use std::collections::{BTreeMap, HashMap};

/// Link characteristics.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Bytes per second.
    pub bandwidth: u64,
    /// Fixed propagation latency.
    pub latency: TimeSpan,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            bandwidth: 100_000_000, // 100 MB/s
            latency: TimeSpan::from_millis(1),
        }
    }
}

#[derive(Default)]
struct LinkState {
    /// The time at which the link becomes free (serialization is FIFO).
    busy_until: TimePoint,
}

/// A delivered message waiting in an endpoint's inbox.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// When the message fully arrived.
    pub at: TimePoint,
    /// Sender endpoint.
    pub from: String,
    /// The message.
    pub msg: Message,
}

struct Inner {
    links: HashMap<(String, String), LinkSpec>,
    link_state: HashMap<(String, String), LinkState>,
    outages: HashMap<(String, String), Vec<(TimePoint, TimePoint)>>,
    default_link: LinkSpec,
    /// Per-endpoint inbox ordered by arrival time.
    inboxes: HashMap<String, BTreeMap<(TimePoint, u64), Delivery>>,
    seq: u64,
    /// Total bytes that crossed the fabric.
    bytes_sent: u64,
    /// Messages sent.
    messages_sent: u64,
}

/// The simulated network.
pub struct SimNetwork {
    inner: Mutex<Inner>,
}

impl SimNetwork {
    /// An empty fabric where every pair is connected by `default_link`.
    pub fn new(default_link: LinkSpec) -> SimNetwork {
        SimNetwork {
            inner: Mutex::new(Inner {
                links: HashMap::new(),
                link_state: HashMap::new(),
                outages: HashMap::new(),
                default_link,
                inboxes: HashMap::new(),
                seq: 0,
                bytes_sent: 0,
                messages_sent: 0,
            }),
        }
    }

    /// Configure a specific directed link.
    pub fn set_link(&self, from: &str, to: &str, spec: LinkSpec) {
        self.inner
            .lock()
            .links
            .insert((from.to_string(), to.to_string()), spec);
    }

    /// Add an outage window `[down, up)` on a directed link.
    pub fn add_outage(&self, from: &str, to: &str, down: TimePoint, up: TimePoint) {
        self.inner
            .lock()
            .outages
            .entry((from.to_string(), to.to_string()))
            .or_default()
            .push((down, up));
    }

    /// Send a message at simulated time `now`; returns the arrival time.
    pub fn send(&self, now: TimePoint, from: &str, to: &str, msg: Message) -> TimePoint {
        let mut inner = self.inner.lock();
        let key = (from.to_string(), to.to_string());
        let spec = inner.links.get(&key).copied().unwrap_or(inner.default_link);

        // wait out any outage window covering the send instant
        let mut start = now;
        if let Some(outs) = inner.outages.get(&key) {
            for &(down, up) in outs {
                if start >= down && start < up {
                    start = up;
                }
            }
        }
        // FIFO serialization on the link
        let state = inner.link_state.entry(key.clone()).or_default();
        let begin = start.max(state.busy_until);
        let size = msg.wire_size();
        let ser = TimeSpan::from_micros(size.saturating_mul(1_000_000) / spec.bandwidth.max(1));
        let done_sending = begin + ser;
        state.busy_until = done_sending;
        let arrival = done_sending + spec.latency;

        inner.seq += 1;
        let seq = inner.seq;
        inner.bytes_sent += size;
        inner.messages_sent += 1;
        inner.inboxes.entry(to.to_string()).or_default().insert(
            (arrival, seq),
            Delivery {
                at: arrival,
                from: from.to_string(),
                msg,
            },
        );
        arrival
    }

    /// Drain all messages that have arrived at `endpoint` by `now`.
    pub fn recv_ready(&self, endpoint: &str, now: TimePoint) -> Vec<Delivery> {
        let mut inner = self.inner.lock();
        let Some(inbox) = inner.inboxes.get_mut(endpoint) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let keys: Vec<_> = inbox.range(..=(now, u64::MAX)).map(|(k, _)| *k).collect();
        for k in keys {
            out.push(inbox.remove(&k).unwrap());
        }
        out
    }

    /// The earliest pending arrival time for `endpoint`, if any — lets a
    /// driver advance the clock to the next interesting instant.
    pub fn next_arrival(&self, endpoint: &str) -> Option<TimePoint> {
        let inner = self.inner.lock();
        inner.inboxes.get(endpoint)?.keys().next().map(|(t, _)| *t)
    }

    /// Earliest pending arrival across all endpoints.
    pub fn next_arrival_any(&self) -> Option<TimePoint> {
        let inner = self.inner.lock();
        inner
            .inboxes
            .values()
            .filter_map(|b| b.keys().next().map(|(t, _)| *t))
            .min()
    }

    /// Total bytes sent through the fabric.
    pub fn bytes_sent(&self) -> u64 {
        self.inner.lock().bytes_sent
    }

    /// Total messages sent through the fabric.
    pub fn messages_sent(&self) -> u64 {
        self.inner.lock().messages_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::SourceMsg;

    fn msg(size: u64) -> Message {
        Message::Source(SourceMsg::Deposited {
            path: "x".to_string(),
            size,
        })
    }

    fn t(s: u64) -> TimePoint {
        TimePoint::from_secs(s)
    }

    #[test]
    fn latency_and_serialization() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000, // 1 MB/s
            latency: TimeSpan::from_millis(100),
        });
        // Deposited msg wire size is header-only (~small)
        let arrival = net.send(t(0), "a", "b", msg(0));
        assert!(arrival >= TimePoint::from_millis(100));
        assert!(arrival < TimePoint::from_millis(200));
    }

    #[test]
    fn fifo_serialization_queues() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 10, // absurdly slow: 10 B/s
            latency: TimeSpan::ZERO,
        });
        let a1 = net.send(t(0), "a", "b", msg(0));
        let a2 = net.send(t(0), "a", "b", msg(0));
        assert!(a2 > a1, "second message waits for the first");
    }

    #[test]
    fn recv_ready_respects_time() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000_000,
            latency: TimeSpan::from_secs(5),
        });
        net.send(t(0), "a", "b", msg(0));
        assert!(net.recv_ready("b", t(1)).is_empty());
        let got = net.recv_ready("b", t(6));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, "a");
        // drained: second call is empty
        assert!(net.recv_ready("b", t(10)).is_empty());
    }

    #[test]
    fn outage_delays_delivery() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000_000,
            latency: TimeSpan::from_millis(1),
        });
        net.add_outage("a", "b", t(0), t(60));
        let arrival = net.send(t(10), "a", "b", msg(0));
        assert!(arrival >= t(60));
        // other direction unaffected
        let arrival = net.send(t(10), "b", "a", msg(0));
        assert!(arrival < t(11));
    }

    #[test]
    fn per_link_overrides() {
        let net = SimNetwork::new(LinkSpec::default());
        net.set_link(
            "a",
            "slow",
            LinkSpec {
                bandwidth: 1,
                latency: TimeSpan::from_secs(30),
            },
        );
        let fast = net.send(t(0), "a", "fast", msg(0));
        let slow = net.send(t(0), "a", "slow", msg(0));
        assert!(slow > fast + TimeSpan::from_secs(10));
    }

    #[test]
    fn next_arrival_ordering() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000_000,
            latency: TimeSpan::from_secs(3),
        });
        net.send(t(0), "a", "b", msg(0));
        net.send(t(0), "a", "c", msg(0));
        assert!(net.next_arrival("b").is_some());
        assert_eq!(net.next_arrival_any(), net.next_arrival("b"));
        assert_eq!(net.next_arrival("nobody"), None);
        assert_eq!(net.messages_sent(), 2);
    }
}
