//! Subscriber-side client for hybrid push-pull delivery (paper §4.1).
//!
//! "The data feed management server will push notification to
//! subscribers by invoking registered trigger scripts, while applications
//! will pull the data after relevant notifications are received at the
//! time of their choosing."
//!
//! The wire protocol adds a fetch request/response pair to the message
//! set; [`SubscriberClient`] tracks received [`FileAvailable`]
//! notifications and issues fetches when the application decides to pull.
//!
//! [`FileAvailable`]: crate::messages::SubscriberMsg::FileAvailable

use crate::messages::{Message, ReliableMsg, SubscriberMsg};
use crate::net::SimNetwork;
use bistro_base::{FileId, TimePoint};
use std::collections::{BTreeMap, BTreeSet};

/// A pending (notified but not yet fetched) file at the subscriber.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingFile {
    /// The file's id at the server.
    pub file: FileId,
    /// The feed it belongs to.
    pub feed: String,
    /// The server-side staged path to request.
    pub staged_path: String,
    /// Size in bytes.
    pub size: u64,
    /// When the notification arrived.
    pub notified_at: TimePoint,
}

/// Subscriber-side state machine for the hybrid push-pull protocol and
/// the reliable (acked) delivery path.
pub struct SubscriberClient {
    /// This client's endpoint name on the network.
    pub endpoint: String,
    /// The server's endpoint name.
    pub server: String,
    pending: BTreeMap<u64, PendingFile>,
    fetched: Vec<(PendingFile, TimePoint)>,
    /// File ids already handled once (reliable-path redelivery dedupe).
    seen: BTreeSet<u64>,
    /// Files received through the reliable push path, with receive time.
    delivered: Vec<(FileId, String, TimePoint)>,
    /// Redeliveries ignored by the dedupe (every one was still acked).
    duplicates: u64,
    /// Acks sent back to the server.
    acks_sent: u64,
}

impl SubscriberClient {
    /// A client for `endpoint`, pulling from `server`.
    pub fn new(endpoint: &str, server: &str) -> SubscriberClient {
        SubscriberClient {
            endpoint: endpoint.to_string(),
            server: server.to_string(),
            pending: BTreeMap::new(),
            fetched: Vec::new(),
            seen: BTreeSet::new(),
            delivered: Vec::new(),
            duplicates: 0,
            acks_sent: 0,
        }
    }

    /// Drain the network inbox at `now`, recording availability
    /// notifications and reliable delivery attempts (each attempt is
    /// acked; redeliveries of an already-seen file are acked but
    /// otherwise ignored). Returns how many *new* files arrived.
    pub fn poll_notifications(&mut self, net: &SimNetwork, now: TimePoint) -> usize {
        let mut n = 0;
        for delivery in net.recv_ready(&self.endpoint, now) {
            match delivery.msg {
                Message::Subscriber(SubscriberMsg::FileAvailable {
                    file,
                    feed,
                    staged_path,
                    size,
                }) => {
                    self.pending.insert(
                        file.raw(),
                        PendingFile {
                            file,
                            feed,
                            staged_path,
                            size,
                            notified_at: delivery.at,
                        },
                    );
                    n += 1;
                }
                Message::Reliable(ReliableMsg::Attempt { attempt, inner }) => {
                    n += usize::from(self.on_attempt(net, now, attempt, inner));
                }
                _ => {}
            }
        }
        n
    }

    /// Handle one reliable delivery attempt: always ack (acks may race a
    /// retransmission already in flight — the server dedupes), and
    /// process the wrapped message only the first time its file is seen.
    /// Returns true if the file was new.
    fn on_attempt(
        &mut self,
        net: &SimNetwork,
        now: TimePoint,
        attempt: u32,
        inner: SubscriberMsg,
    ) -> bool {
        let file = match &inner {
            SubscriberMsg::FileDelivered { file, .. }
            | SubscriberMsg::FileAvailable { file, .. } => *file,
            SubscriberMsg::BatchComplete { .. } => return false, // not file-bearing
        };
        net.send(
            now,
            &self.endpoint,
            &self.server,
            Message::Reliable(ReliableMsg::Ack { file, attempt }),
        );
        self.acks_sent += 1;
        if !self.seen.insert(file.raw()) {
            self.duplicates += 1;
            return false;
        }
        match inner {
            SubscriberMsg::FileDelivered { file, feed, .. } => {
                self.delivered.push((file, feed, now));
            }
            SubscriberMsg::FileAvailable {
                file,
                feed,
                staged_path,
                size,
            } => {
                self.pending.insert(
                    file.raw(),
                    PendingFile {
                        file,
                        feed,
                        staged_path,
                        size,
                        notified_at: now,
                    },
                );
            }
            SubscriberMsg::BatchComplete { .. } => unreachable!("filtered above"),
        }
        true
    }

    /// Files received through the reliable push path (exactly once per
    /// file, in receive order).
    pub fn delivered(&self) -> &[(FileId, String, TimePoint)] {
        &self.delivered
    }

    /// Redeliveries the dedupe ignored.
    pub fn duplicates_ignored(&self) -> u64 {
        self.duplicates
    }

    /// Acks sent back to the server.
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// Files notified but not yet fetched, in file-id order.
    pub fn pending(&self) -> Vec<&PendingFile> {
        self.pending.values().collect()
    }

    /// Pull every pending file "at the time of \[our\] choosing": simulate
    /// the fetch round trip for each (request upstream, payload
    /// downstream) and mark it fetched. Returns the fetch completion
    /// times.
    pub fn fetch_all(&mut self, net: &SimNetwork, now: TimePoint) -> Vec<TimePoint> {
        let pending: Vec<PendingFile> = self.pending.values().cloned().collect();
        self.pending.clear();
        let mut done = Vec::new();
        for p in pending {
            // request: a small message to the server
            let req_arrival = net.send(
                now,
                &self.endpoint,
                &self.server,
                Message::Subscriber(SubscriberMsg::FileAvailable {
                    file: p.file,
                    feed: p.feed.clone(),
                    staged_path: p.staged_path.clone(),
                    size: 0, // request carries no payload
                }),
            );
            // response: the payload back to us
            let resp_arrival = net.send(
                req_arrival,
                &self.server,
                &self.endpoint,
                Message::Subscriber(SubscriberMsg::FileDelivered {
                    file: p.file,
                    feed: p.feed.clone(),
                    dest_path: p.staged_path.clone(),
                    size: p.size,
                }),
            );
            done.push(resp_arrival);
            self.fetched.push((p, resp_arrival));
        }
        // Drain exactly our own payload deliveries so the inbox stays
        // clean. Anything else that arrived in the fetch window — e.g. a
        // fresh FileAvailable notification — must stay queued for the
        // next poll, not be silently discarded.
        if let Some(&latest) = done.iter().max() {
            let expected: BTreeSet<u64> = self.fetched.iter().map(|(p, _)| p.file.raw()).collect();
            let _ = net.recv_where(&self.endpoint, latest, |d| {
                matches!(
                    &d.msg,
                    Message::Subscriber(SubscriberMsg::FileDelivered { file, .. })
                        if expected.contains(&file.raw())
                )
            });
        }
        done
    }

    /// Everything fetched so far, with completion times.
    pub fn fetched(&self) -> &[(PendingFile, TimePoint)] {
        &self.fetched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkSpec;
    use bistro_base::TimeSpan;

    fn t(s: u64) -> TimePoint {
        TimePoint::from_secs(s)
    }

    #[test]
    fn notify_then_pull_roundtrip() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000,
            latency: TimeSpan::from_millis(10),
        });
        let mut client = SubscriberClient::new("app", "bistro");

        // server pushes two availability notifications
        for i in 1..=2u64 {
            net.send(
                t(0),
                "bistro",
                "app",
                Message::Subscriber(SubscriberMsg::FileAvailable {
                    file: FileId(i),
                    feed: "F".to_string(),
                    staged_path: format!("F/f{i}.csv"),
                    size: 500_000,
                }),
            );
        }
        assert_eq!(client.poll_notifications(&net, t(1)), 2);
        assert_eq!(client.pending().len(), 2);

        // the app pulls later, at its own pace
        let completions = client.fetch_all(&net, t(60));
        assert_eq!(completions.len(), 2);
        for c in &completions {
            assert!(*c > t(60), "fetch takes network time");
            // 500KB at 1MB/s ≈ 0.5s per payload plus latency
            assert!(*c < t(63));
        }
        assert!(client.pending().is_empty());
        assert_eq!(client.fetched().len(), 2);
    }

    #[test]
    fn duplicate_notifications_dedupe() {
        let net = SimNetwork::new(LinkSpec::default());
        let mut client = SubscriberClient::new("app", "bistro");
        for _ in 0..3 {
            net.send(
                t(0),
                "bistro",
                "app",
                Message::Subscriber(SubscriberMsg::FileAvailable {
                    file: FileId(7),
                    feed: "F".to_string(),
                    staged_path: "F/same.csv".to_string(),
                    size: 10,
                }),
            );
        }
        client.poll_notifications(&net, t(1));
        assert_eq!(client.pending().len(), 1);
    }

    #[test]
    fn notification_arriving_mid_fetch_survives() {
        // Regression: fetch_all drained the whole inbox up to the latest
        // fetch completion, silently discarding any unrelated
        // FileAvailable that arrived in that window.
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000, // 500 KB payload => ~0.5 s fetch window
            latency: TimeSpan::from_millis(10),
        });
        let mut client = SubscriberClient::new("app", "bistro");
        net.send(
            t(0),
            "bistro",
            "app",
            Message::Subscriber(SubscriberMsg::FileAvailable {
                file: FileId(1),
                feed: "F".to_string(),
                staged_path: "F/one.csv".to_string(),
                size: 500_000,
            }),
        );
        client.poll_notifications(&net, t(1));

        // a second notification lands *during* the fetch round trip
        net.send(
            t(60),
            "bistro",
            "app",
            Message::Subscriber(SubscriberMsg::FileAvailable {
                file: FileId(2),
                feed: "F".to_string(),
                staged_path: "F/two.csv".to_string(),
                size: 10,
            }),
        );
        let completions = client.fetch_all(&net, t(60));
        assert_eq!(completions.len(), 1);

        // the mid-fetch notification is still pending delivery to us
        let latest = *completions.iter().max().unwrap();
        assert_eq!(client.poll_notifications(&net, latest), 1);
        assert_eq!(client.pending().len(), 1);
        assert_eq!(client.pending()[0].file, FileId(2));
    }

    #[test]
    fn reliable_attempts_acked_and_deduped() {
        let net = SimNetwork::new(LinkSpec::default());
        let mut client = SubscriberClient::new("app", "bistro");
        let push = |attempt: u32| {
            Message::Reliable(crate::messages::ReliableMsg::Attempt {
                attempt,
                inner: SubscriberMsg::FileDelivered {
                    file: FileId(5),
                    feed: "F".to_string(),
                    dest_path: "incoming/x".to_string(),
                    size: 10,
                },
            })
        };
        net.send(t(0), "bistro", "app", push(1));
        net.send(t(0), "bistro", "app", push(2)); // spurious retransmission
        let new = client.poll_notifications(&net, t(1));
        assert_eq!(new, 1, "redelivery is not a new file");
        assert_eq!(client.delivered().len(), 1);
        assert_eq!(client.duplicates_ignored(), 1);
        assert_eq!(client.acks_sent(), 2, "every attempt is acked");

        // both acks arrived at the server, echoing their attempt ids
        let acks = net.recv_ready("bistro", t(10));
        assert_eq!(acks.len(), 2);
        for (i, d) in acks.iter().enumerate() {
            match &d.msg {
                Message::Reliable(crate::messages::ReliableMsg::Ack { file, attempt }) => {
                    assert_eq!(*file, FileId(5));
                    assert_eq!(*attempt, i as u32 + 1);
                }
                other => panic!("expected ack, got {other:?}"),
            }
        }
    }

    #[test]
    fn reliable_notify_attempt_lands_in_pending() {
        let net = SimNetwork::new(LinkSpec::default());
        let mut client = SubscriberClient::new("app", "bistro");
        net.send(
            t(0),
            "bistro",
            "app",
            Message::Reliable(crate::messages::ReliableMsg::Attempt {
                attempt: 1,
                inner: SubscriberMsg::FileAvailable {
                    file: FileId(3),
                    feed: "F".to_string(),
                    staged_path: "F/three.csv".to_string(),
                    size: 10,
                },
            }),
        );
        assert_eq!(client.poll_notifications(&net, t(1)), 1);
        assert_eq!(client.pending().len(), 1);
        assert_eq!(client.acks_sent(), 1);
    }

    #[test]
    fn push_deliveries_ignored_by_pull_client() {
        let net = SimNetwork::new(LinkSpec::default());
        let mut client = SubscriberClient::new("app", "bistro");
        net.send(
            t(0),
            "bistro",
            "app",
            Message::Subscriber(SubscriberMsg::FileDelivered {
                file: FileId(1),
                feed: "F".to_string(),
                dest_path: "x".to_string(),
                size: 10,
            }),
        );
        assert_eq!(client.poll_notifications(&net, t(1)), 0);
    }
}
