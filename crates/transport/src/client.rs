//! Subscriber-side client for hybrid push-pull delivery (paper §4.1).
//!
//! "The data feed management server will push notification to
//! subscribers by invoking registered trigger scripts, while applications
//! will pull the data after relevant notifications are received at the
//! time of their choosing."
//!
//! The wire protocol adds a fetch request/response pair to the message
//! set; [`SubscriberClient`] tracks received [`FileAvailable`]
//! notifications and issues fetches when the application decides to pull.
//!
//! [`FileAvailable`]: crate::messages::SubscriberMsg::FileAvailable

use crate::messages::{Message, SubscriberMsg};
use crate::net::SimNetwork;
use bistro_base::{FileId, TimePoint};
use std::collections::BTreeMap;

/// A pending (notified but not yet fetched) file at the subscriber.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingFile {
    /// The file's id at the server.
    pub file: FileId,
    /// The feed it belongs to.
    pub feed: String,
    /// The server-side staged path to request.
    pub staged_path: String,
    /// Size in bytes.
    pub size: u64,
    /// When the notification arrived.
    pub notified_at: TimePoint,
}

/// Subscriber-side state machine for the hybrid push-pull protocol.
pub struct SubscriberClient {
    /// This client's endpoint name on the network.
    pub endpoint: String,
    /// The server's endpoint name.
    pub server: String,
    pending: BTreeMap<u64, PendingFile>,
    fetched: Vec<(PendingFile, TimePoint)>,
}

impl SubscriberClient {
    /// A client for `endpoint`, pulling from `server`.
    pub fn new(endpoint: &str, server: &str) -> SubscriberClient {
        SubscriberClient {
            endpoint: endpoint.to_string(),
            server: server.to_string(),
            pending: BTreeMap::new(),
            fetched: Vec::new(),
        }
    }

    /// Drain the network inbox at `now`, recording availability
    /// notifications. Returns how many new notifications arrived.
    pub fn poll_notifications(&mut self, net: &SimNetwork, now: TimePoint) -> usize {
        let mut n = 0;
        for delivery in net.recv_ready(&self.endpoint, now) {
            if let Message::Subscriber(SubscriberMsg::FileAvailable {
                file,
                feed,
                staged_path,
                size,
            }) = delivery.msg
            {
                self.pending.insert(
                    file.raw(),
                    PendingFile {
                        file,
                        feed,
                        staged_path,
                        size,
                        notified_at: delivery.at,
                    },
                );
                n += 1;
            }
        }
        n
    }

    /// Files notified but not yet fetched, in file-id order.
    pub fn pending(&self) -> Vec<&PendingFile> {
        self.pending.values().collect()
    }

    /// Pull every pending file "at the time of \[our\] choosing": simulate
    /// the fetch round trip for each (request upstream, payload
    /// downstream) and mark it fetched. Returns the fetch completion
    /// times.
    pub fn fetch_all(&mut self, net: &SimNetwork, now: TimePoint) -> Vec<TimePoint> {
        let pending: Vec<PendingFile> = self.pending.values().cloned().collect();
        self.pending.clear();
        let mut done = Vec::new();
        for p in pending {
            // request: a small message to the server
            let req_arrival = net.send(
                now,
                &self.endpoint,
                &self.server,
                Message::Subscriber(SubscriberMsg::FileAvailable {
                    file: p.file,
                    feed: p.feed.clone(),
                    staged_path: p.staged_path.clone(),
                    size: 0, // request carries no payload
                }),
            );
            // response: the payload back to us
            let resp_arrival = net.send(
                req_arrival,
                &self.server,
                &self.endpoint,
                Message::Subscriber(SubscriberMsg::FileDelivered {
                    file: p.file,
                    feed: p.feed.clone(),
                    dest_path: p.staged_path.clone(),
                    size: p.size,
                }),
            );
            done.push(resp_arrival);
            self.fetched.push((p, resp_arrival));
        }
        // drain our own payload deliveries so the inbox stays clean
        if let Some(&latest) = done.iter().max() {
            let _ = net.recv_ready(&self.endpoint, latest);
        }
        done
    }

    /// Everything fetched so far, with completion times.
    pub fn fetched(&self) -> &[(PendingFile, TimePoint)] {
        &self.fetched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkSpec;
    use bistro_base::TimeSpan;

    fn t(s: u64) -> TimePoint {
        TimePoint::from_secs(s)
    }

    #[test]
    fn notify_then_pull_roundtrip() {
        let net = SimNetwork::new(LinkSpec {
            bandwidth: 1_000_000,
            latency: TimeSpan::from_millis(10),
        });
        let mut client = SubscriberClient::new("app", "bistro");

        // server pushes two availability notifications
        for i in 1..=2u64 {
            net.send(
                t(0),
                "bistro",
                "app",
                Message::Subscriber(SubscriberMsg::FileAvailable {
                    file: FileId(i),
                    feed: "F".to_string(),
                    staged_path: format!("F/f{i}.csv"),
                    size: 500_000,
                }),
            );
        }
        assert_eq!(client.poll_notifications(&net, t(1)), 2);
        assert_eq!(client.pending().len(), 2);

        // the app pulls later, at its own pace
        let completions = client.fetch_all(&net, t(60));
        assert_eq!(completions.len(), 2);
        for c in &completions {
            assert!(*c > t(60), "fetch takes network time");
            // 500KB at 1MB/s ≈ 0.5s per payload plus latency
            assert!(*c < t(63));
        }
        assert!(client.pending().is_empty());
        assert_eq!(client.fetched().len(), 2);
    }

    #[test]
    fn duplicate_notifications_dedupe() {
        let net = SimNetwork::new(LinkSpec::default());
        let mut client = SubscriberClient::new("app", "bistro");
        for _ in 0..3 {
            net.send(
                t(0),
                "bistro",
                "app",
                Message::Subscriber(SubscriberMsg::FileAvailable {
                    file: FileId(7),
                    feed: "F".to_string(),
                    staged_path: "F/same.csv".to_string(),
                    size: 10,
                }),
            );
        }
        client.poll_notifications(&net, t(1));
        assert_eq!(client.pending().len(), 1);
    }

    #[test]
    fn push_deliveries_ignored_by_pull_client() {
        let net = SimNetwork::new(LinkSpec::default());
        let mut client = SubscriberClient::new("app", "bistro");
        net.send(
            t(0),
            "bistro",
            "app",
            Message::Subscriber(SubscriberMsg::FileDelivered {
                file: FileId(1),
                feed: "F".to_string(),
                dest_path: "x".to_string(),
                size: 10,
            }),
        );
        assert_eq!(client.poll_notifications(&net, t(1)), 0);
    }
}
