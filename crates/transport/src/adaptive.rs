//! Adaptive (learned) batch-boundary detection.
//!
//! The paper's stated future direction (§4.1): "Ideally, we would like to
//! incorporate machine learning techniques to dynamically determine end
//! of batches events by continuously monitoring file arrival patterns."
//!
//! [`AdaptiveBatcher`] implements the simplest version that works: it
//! maintains exponentially weighted moving statistics of the *intra-batch*
//! inter-arrival gap, and closes the batch when the current silence
//! exceeds `gap_factor ×` the learned typical gap (plus a learned
//! variance margin). Batches of files deposited in a burst close as soon
//! as the burst demonstrably ended — no fixed count to go stale, no fixed
//! window to pad the delay.

use crate::batching::{BatchCloseReason, BatchOutcome};
use bistro_base::{FileId, TimePoint, TimeSpan};

/// Batcher that learns arrival gaps.
#[derive(Debug)]
pub struct AdaptiveBatcher {
    /// EWMA of intra-batch gaps (µs).
    gap_ewma: f64,
    /// EWMA of absolute deviation (µs).
    dev_ewma: f64,
    /// Multiplier on the learned gap for the closing threshold.
    gap_factor: f64,
    /// Hard cap: close after this long regardless (safety net).
    max_wait: TimeSpan,
    /// EWMA smoothing factor.
    alpha: f64,
    open: Vec<FileId>,
    opened_at: Option<TimePoint>,
    last_file_at: Option<TimePoint>,
}

impl AdaptiveBatcher {
    /// A learner with the given closing factor and safety-net wait.
    ///
    /// Until it has observed a few gaps it behaves like a time-based
    /// batcher with window `max_wait / 4` (conservative warm-up).
    pub fn new(gap_factor: f64, max_wait: TimeSpan) -> AdaptiveBatcher {
        AdaptiveBatcher {
            gap_ewma: 0.0,
            dev_ewma: 0.0,
            gap_factor: gap_factor.max(1.1),
            max_wait,
            alpha: 0.25,
            open: Vec::new(),
            opened_at: None,
            last_file_at: None,
        }
    }

    /// The learned typical intra-batch gap.
    pub fn learned_gap(&self) -> TimeSpan {
        TimeSpan::from_micros(self.gap_ewma as u64)
    }

    /// The current silence threshold that will close the batch.
    pub fn close_threshold(&self) -> TimeSpan {
        if self.gap_ewma == 0.0 {
            // warm-up: quarter of the safety net
            TimeSpan::from_micros(self.max_wait.as_micros() / 4)
        } else {
            let t = (self.gap_ewma * self.gap_factor + 3.0 * self.dev_ewma) as u64;
            TimeSpan::from_micros(t).min(self.max_wait)
        }
    }

    /// The deadline by which [`AdaptiveBatcher::on_tick`] should be
    /// called (None when no batch is open).
    pub fn tick_deadline(&self) -> Option<TimePoint> {
        if self.open.is_empty() {
            return None;
        }
        let last = self.last_file_at?;
        Some(last + self.close_threshold())
    }

    /// Number of files in the open batch.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// A file arrived. Adaptive batching never closes *on* a file — it
    /// closes when the silence after the last file exceeds the learned
    /// threshold (see [`AdaptiveBatcher::on_tick`]) — but a file arriving
    /// after the threshold has lapsed closes the old batch first and
    /// returns it.
    pub fn on_file(&mut self, file: FileId, now: TimePoint) -> Option<BatchOutcome> {
        let mut closed = None;
        if let Some(deadline) = self.tick_deadline() {
            if now >= deadline {
                closed = self.close(deadline);
            }
        }
        if let Some(last) = self.last_file_at {
            if self.open.is_empty() {
                // gap to the previous *batch*: not an intra-batch gap
            } else {
                let gap = now.since(last).as_micros() as f64;
                if self.gap_ewma == 0.0 {
                    self.gap_ewma = gap.max(1.0);
                    self.dev_ewma = gap / 2.0;
                } else {
                    let dev = (gap - self.gap_ewma).abs();
                    self.gap_ewma += self.alpha * (gap - self.gap_ewma);
                    self.dev_ewma += self.alpha * (dev - self.dev_ewma);
                }
            }
        }
        if self.open.is_empty() {
            self.opened_at = Some(now);
        }
        self.open.push(file);
        self.last_file_at = Some(now);
        closed
    }

    /// The clock reached `now`: close the batch if the silence since the
    /// last file exceeds the learned threshold. The batch is stamped as
    /// closed at the *deadline* — the instant the boundary became
    /// detectable — so delay metrics don't depend on tick cadence.
    pub fn on_tick(&mut self, now: TimePoint) -> Option<BatchOutcome> {
        let deadline = self.tick_deadline()?;
        if now >= deadline && !self.open.is_empty() {
            return self.close(deadline);
        }
        None
    }

    fn close(&mut self, now: TimePoint) -> Option<BatchOutcome> {
        if self.open.is_empty() {
            return None;
        }
        let files = std::mem::take(&mut self.open);
        let opened = self.opened_at.take().unwrap_or(now);
        Some(BatchOutcome {
            files,
            opened,
            closed: now,
            reason: BatchCloseReason::Window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> TimePoint {
        TimePoint::from_secs(s)
    }

    /// Feed bursts of 3 files 2s apart, bursts separated by 300s.
    fn run_bursts(b: &mut AdaptiveBatcher, bursts: usize) -> Vec<BatchOutcome> {
        let mut out = Vec::new();
        for burst in 0..bursts {
            let base = burst as u64 * 300;
            for i in 0..3u64 {
                if let Some(done) = b.on_file(FileId(burst as u64 * 3 + i), t(base + i * 2)) {
                    out.push(done);
                }
            }
            // tick halfway to the next burst
            if let Some(done) = b.on_tick(t(base + 150)) {
                out.push(done);
            }
        }
        out
    }

    #[test]
    fn learns_burst_structure() {
        let mut b = AdaptiveBatcher::new(4.0, TimeSpan::from_mins(10));
        let batches = run_bursts(&mut b, 5);
        assert_eq!(batches.len(), 5);
        for batch in &batches {
            assert_eq!(batch.files.len(), 3, "{batch:?}");
        }
        // learned gap converges near the 2s intra-burst gap
        let g = b.learned_gap();
        assert!(
            g >= TimeSpan::from_secs(1) && g <= TimeSpan::from_secs(4),
            "learned gap {g}"
        );
        // after warm-up the threshold is far below the 150s tick, so the
        // close time tracks the burst end closely
        let last = batches.last().unwrap();
        assert!(
            last.closed.since(last.opened) < TimeSpan::from_secs(60),
            "{last:?}"
        );
    }

    #[test]
    fn adapts_to_faster_source() {
        let mut b = AdaptiveBatcher::new(4.0, TimeSpan::from_mins(10));
        run_bursts(&mut b, 3);
        let slow_threshold = b.close_threshold();
        // source speeds up: 200ms gaps
        for burst in 0..5u64 {
            let base = TimePoint::from_secs(10_000 + burst * 300);
            for i in 0..3u64 {
                b.on_file(
                    FileId(100 + burst * 3 + i),
                    base + TimeSpan::from_millis(i * 200),
                );
            }
            b.on_tick(base + TimeSpan::from_secs(150));
        }
        assert!(
            b.close_threshold() < slow_threshold,
            "threshold should shrink: {} -> {}",
            slow_threshold,
            b.close_threshold()
        );
    }

    #[test]
    fn safety_net_caps_threshold() {
        let mut b = AdaptiveBatcher::new(1000.0, TimeSpan::from_mins(5));
        b.on_file(FileId(1), t(0));
        b.on_file(FileId(2), t(100)); // huge gap learned
        assert!(b.close_threshold() <= TimeSpan::from_mins(5));
    }

    #[test]
    fn late_file_closes_stale_batch_first() {
        let mut b = AdaptiveBatcher::new(4.0, TimeSpan::from_mins(10));
        run_bursts(&mut b, 3); // warm up
        b.on_file(FileId(50), t(5_000));
        // next file arrives way past the threshold: old batch returned
        let closed = b.on_file(FileId(51), t(6_000));
        assert!(closed.is_some());
        assert_eq!(closed.unwrap().files, vec![FileId(50)]);
        assert_eq!(b.open_len(), 1);
    }

    #[test]
    fn empty_batcher_is_quiet() {
        let mut b = AdaptiveBatcher::new(4.0, TimeSpan::from_mins(10));
        assert!(b.on_tick(t(1_000_000)).is_none());
        assert!(b.tick_deadline().is_none());
    }
}
