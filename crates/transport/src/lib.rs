//! # bistro-transport
//!
//! Bistro's communication protocols (paper §4.1).
//!
//! The paper's diagnosis of pull- and push-based feed delivery is that
//! "the main issue lies not with using pull or push-based data
//! transmission, but rather with the poor communication protocols used".
//! This crate implements the protocols Bistro defines to fix that:
//!
//! * [`messages`] — the wire messages: source → server *deposit
//!   notifications* and *end-of-batch punctuation* (the analogue of
//!   stream punctuations), and server → subscriber *file / batch
//!   notifications* for push and hybrid push-pull delivery;
//! * [`batching`] — the batch-boundary engine: count-based, time-based
//!   and hybrid batch specs from the configuration language, plus
//!   source punctuation, deciding when subscriber triggers fire (§2.3);
//! * [`trigger`] — trigger invocation with `%N`/`%f`/`%b` command
//!   expansion, local or remote;
//! * [`net`] — a simulated network of named endpoints with per-link
//!   bandwidth, latency and outage windows, driven by the simulated
//!   clock, plus a seeded fault-injection plan (drops, duplicates, link
//!   flaps). This is the substitute for the paper's production WAN (see
//!   DESIGN.md): propagation-delay experiments measure time through this
//!   fabric;
//! * [`reliable`] — the acknowledgement/retry bookkeeping behind
//!   reliable delivery (§4.2): unacked-send table, per-subscriber
//!   timeout, exponential backoff with seeded jitter.

pub mod adaptive;
pub mod batching;
pub mod client;
pub mod messages;
pub mod net;
pub mod reliable;
pub mod trigger;

pub use adaptive::AdaptiveBatcher;
pub use batching::{BatchOutcome, Batcher};
pub use client::{PendingFile, SubscriberClient};
pub use messages::{ClusterMsg, GroupMsg, Message, ReliableMsg, SourceMsg, SubscriberMsg};
pub use net::{Delivery, FaultPlan, FaultSpec, LinkFlap, LinkSpec, PendingMessage, SimNetwork};
pub use reliable::{
    Coverage, GroupResend, GroupRetryRound, GroupTracker, RetryPolicy, RetryRound, RetryTracker,
};
pub use trigger::{expand_command, Invocation, TriggerLog};
