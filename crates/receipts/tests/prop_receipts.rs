//! Property-based tests: the receipt store's queue computation must match
//! a trivial model under arbitrary interleavings of operations, and
//! recovery must be lossless at every prefix.

use bistro_base::prop::{self, Runner, Shrink};
use bistro_base::rng::Rng;
use bistro_base::{prop_assert_eq, FileId, SimClock, TimePoint};
use bistro_receipts::{ReceiptStore, Record};
use bistro_vfs::{FileStore, MemFs};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Arrive { feed: u8 },
    Deliver { file_idx: usize, sub: u8 },
    Expire { file_idx: usize },
    Snapshot,
    Crash,
}

// ops don't shrink individually; the op *sequence* shrinks structurally
impl Shrink for Op {}

fn op_gen(rng: &mut Rng) -> Op {
    // weights 4:4:1:1:1, as the original proptest strategy had
    match rng.gen_range(0u32..11) {
        0..=3 => Op::Arrive {
            feed: rng.gen_range(0u8..3),
        },
        4..=7 => Op::Deliver {
            file_idx: rng.gen_range(0usize..64),
            sub: rng.gen_range(0u8..3),
        },
        8 => Op::Expire {
            file_idx: rng.gen_range(0usize..64),
        },
        9 => Op::Snapshot,
        _ => Op::Crash,
    }
}

/// Reference model: plain sets.
#[derive(Default)]
struct Model {
    files: BTreeMap<u64, String>,       // id -> feed
    delivered: BTreeSet<(u64, String)>, // (id, sub)
    expired: BTreeSet<u64>,
}

impl Model {
    fn pending(&self, sub: &str, feed: &str) -> Vec<u64> {
        self.files
            .iter()
            .filter(|(id, f)| {
                f.as_str() == feed
                    && !self.expired.contains(id)
                    && !self.delivered.contains(&(**id, sub.to_string()))
            })
            .map(|(id, _)| *id)
            .collect()
    }
}

#[test]
fn store_matches_model() {
    Runner::new("store_matches_model").cases(48).run(
        |rng| prop::vec_of(rng, 1..=59, op_gen),
        |ops| {
            let store = MemFs::shared(SimClock::new());
            let mut db = ReceiptStore::open(store.clone() as Arc<dyn FileStore>, "r").unwrap();
            let mut model = Model::default();
            let mut live_ids: Vec<u64> = Vec::new();
            let mut t = 0u64;

            for op in ops {
                t += 1;
                match op {
                    Op::Arrive { feed } => {
                        let feed = format!("feed{feed}");
                        let id = db
                            .record_arrival(
                                &format!("f{t}.csv"),
                                &format!("staging/f{t}.csv"),
                                10,
                                TimePoint::from_secs(t),
                                None,
                                vec![feed.clone()],
                            )
                            .unwrap();
                        model.files.insert(id.raw(), feed);
                        live_ids.push(id.raw());
                    }
                    Op::Deliver { file_idx, sub } => {
                        if live_ids.is_empty() {
                            continue;
                        }
                        let id = live_ids[file_idx % live_ids.len()];
                        if model.expired.contains(&id) {
                            continue;
                        }
                        let sub = format!("sub{sub}");
                        db.record_delivery(FileId(id), &sub, TimePoint::from_secs(t))
                            .unwrap();
                        model.delivered.insert((id, sub));
                    }
                    Op::Expire { file_idx } => {
                        if live_ids.is_empty() {
                            continue;
                        }
                        let id = live_ids[file_idx % live_ids.len()];
                        if model.expired.contains(&id) {
                            continue;
                        }
                        db.record_expiration(FileId(id), TimePoint::from_secs(t))
                            .unwrap();
                        model.expired.insert(id);
                    }
                    Op::Snapshot => {
                        db.snapshot().unwrap();
                    }
                    Op::Crash => {
                        drop(db);
                        db = ReceiptStore::open(store.clone() as Arc<dyn FileStore>, "r").unwrap();
                    }
                }

                // invariant: queues match the model for every (sub, feed)
                for sub_i in 0..3u8 {
                    for feed_i in 0..3u8 {
                        let sub = format!("sub{sub_i}");
                        let feed = format!("feed{feed_i}");
                        let got: Vec<u64> = db
                            .pending_for(&sub, std::slice::from_ref(&feed))
                            .into_iter()
                            .map(|f| f.id.raw())
                            .collect();
                        let want = model.pending(&sub, &feed);
                        prop_assert_eq!(&got, &want, "sub {} feed {}", sub, feed);
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn record_encoding_roundtrips() {
    Runner::new("record_encoding_roundtrips").run(
        |rng| {
            (
                rng.next_u64(),
                prop::string(rng, "A-Za-z0-9_.", 1..=30),
                rng.next_u64(),
                rng.next_u64(),
                rng.gen_range(0usize..5),
            )
        },
        |(id, name, size, t, nfeeds)| {
            let (id, size, t) = (*id, *size, *t);
            let rec = Record::Arrival(bistro_receipts::FileRecord {
                id: FileId(id),
                name: name.clone(),
                staged_path: format!("s/{name}"),
                size,
                arrival: TimePoint::from_micros(t),
                feed_time: if t % 2 == 0 {
                    Some(TimePoint::from_micros(t))
                } else {
                    None
                },
                feeds: (0..*nfeeds).map(|i| format!("feed{i}")).collect(),
            });
            let bytes = rec.encode();
            prop_assert_eq!(Record::decode(&bytes).unwrap(), rec);
            Ok(())
        },
    );
}
