//! Property-based tests: the receipt store's queue computation must match
//! a trivial model under arbitrary interleavings of operations, and
//! recovery must be lossless at every prefix.

use bistro_base::{FileId, SimClock, TimePoint};
use bistro_receipts::{Record, ReceiptStore};
use bistro_vfs::{FileStore, MemFs};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Arrive { feed: u8 },
    Deliver { file_idx: usize, sub: u8 },
    Expire { file_idx: usize },
    Snapshot,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..3).prop_map(|feed| Op::Arrive { feed }),
        4 => (any::<prop::sample::Index>(), 0u8..3)
            .prop_map(|(i, sub)| Op::Deliver { file_idx: i.index(64), sub }),
        1 => any::<prop::sample::Index>().prop_map(|i| Op::Expire { file_idx: i.index(64) }),
        1 => Just(Op::Snapshot),
        1 => Just(Op::Crash),
    ]
}

/// Reference model: plain sets.
#[derive(Default)]
struct Model {
    files: BTreeMap<u64, String>,          // id -> feed
    delivered: BTreeSet<(u64, String)>,    // (id, sub)
    expired: BTreeSet<u64>,
}

impl Model {
    fn pending(&self, sub: &str, feed: &str) -> Vec<u64> {
        self.files
            .iter()
            .filter(|(id, f)| {
                f.as_str() == feed
                    && !self.expired.contains(id)
                    && !self.delivered.contains(&(**id, sub.to_string()))
            })
            .map(|(id, _)| *id)
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let store = MemFs::shared(SimClock::new());
        let mut db = ReceiptStore::open(store.clone() as Arc<dyn FileStore>, "r").unwrap();
        let mut model = Model::default();
        let mut live_ids: Vec<u64> = Vec::new();
        let mut t = 0u64;

        for op in ops {
            t += 1;
            match op {
                Op::Arrive { feed } => {
                    let feed = format!("feed{feed}");
                    let id = db
                        .record_arrival(
                            &format!("f{t}.csv"),
                            &format!("staging/f{t}.csv"),
                            10,
                            TimePoint::from_secs(t),
                            None,
                            vec![feed.clone()],
                        )
                        .unwrap();
                    model.files.insert(id.raw(), feed);
                    live_ids.push(id.raw());
                }
                Op::Deliver { file_idx, sub } => {
                    if live_ids.is_empty() { continue; }
                    let id = live_ids[file_idx % live_ids.len()];
                    if model.expired.contains(&id) { continue; }
                    let sub = format!("sub{sub}");
                    db.record_delivery(FileId(id), &sub, TimePoint::from_secs(t)).unwrap();
                    model.delivered.insert((id, sub));
                }
                Op::Expire { file_idx } => {
                    if live_ids.is_empty() { continue; }
                    let id = live_ids[file_idx % live_ids.len()];
                    if model.expired.contains(&id) { continue; }
                    db.record_expiration(FileId(id), TimePoint::from_secs(t)).unwrap();
                    model.expired.insert(id);
                }
                Op::Snapshot => {
                    db.snapshot().unwrap();
                }
                Op::Crash => {
                    drop(db);
                    db = ReceiptStore::open(store.clone() as Arc<dyn FileStore>, "r").unwrap();
                }
            }

            // invariant: queues match the model for every (sub, feed)
            for sub_i in 0..3u8 {
                for feed_i in 0..3u8 {
                    let sub = format!("sub{sub_i}");
                    let feed = format!("feed{feed_i}");
                    let got: Vec<u64> = db
                        .pending_for(&sub, std::slice::from_ref(&feed))
                        .into_iter()
                        .map(|f| f.id.raw())
                        .collect();
                    let want = model.pending(&sub, &feed);
                    prop_assert_eq!(&got, &want, "sub {} feed {}", sub, feed);
                }
            }
        }
    }

    #[test]
    fn record_encoding_roundtrips(
        id in any::<u64>(),
        name in "[A-Za-z0-9_.]{1,30}",
        size in any::<u64>(),
        t in any::<u64>(),
        nfeeds in 0usize..5,
    ) {
        let rec = Record::Arrival(bistro_receipts::FileRecord {
            id: FileId(id),
            name: name.clone(),
            staged_path: format!("s/{name}"),
            size,
            arrival: TimePoint::from_micros(t),
            feed_time: if t % 2 == 0 { Some(TimePoint::from_micros(t)) } else { None },
            feeds: (0..nfeeds).map(|i| format!("feed{i}")).collect(),
        });
        let bytes = rec.encode();
        prop_assert_eq!(Record::decode(&bytes).unwrap(), rec);
    }
}
