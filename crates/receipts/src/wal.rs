//! Segmented, CRC-framed write-ahead log.
//!
//! Records are appended to numbered segment files
//! (`<dir>/0000000001.seg`, …) under a [`FileStore`]. Each segment
//! starts with a small header pinning the sequence number of its first
//! record:
//!
//! ```text
//! [4B magic "BSG1"][u64 first-record sequence]
//! ```
//!
//! followed by records framed as:
//!
//! ```text
//! [u32 payload length][u32 CRC-32 of payload][payload bytes]
//! ```
//!
//! Replay reads segments in order and stops at the first torn or corrupt
//! frame — everything before it is durable, everything after is treated
//! as a crashed-in-flight write and discarded (and the segment is
//! truncated on the next append). A snapshot records the highest record
//! sequence number it covers; segments whose records are all covered can
//! be deleted. The per-segment base sequence is what keeps numbering
//! *stable* across pruning: surviving records replay with their original
//! sequence numbers instead of being renumbered from 1, so external
//! state keyed by WAL sequence never dangles. Headerless (legacy)
//! segments are still readable and number from the running sequence.

use bistro_base::checksum::crc32;
use bistro_base::SharedClock;
use bistro_telemetry::{Counter, Histogram, Registry};
use bistro_vfs::{FileStore, VfsError};
use std::fmt;
use std::sync::Arc;

/// Errors from WAL operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Underlying filesystem error.
    Vfs(VfsError),
    /// A segment filename did not parse.
    BadSegmentName(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Vfs(e) => write!(f, "wal i/o: {e}"),
            WalError::BadSegmentName(n) => write!(f, "bad wal segment name: {n}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<VfsError> for WalError {
    fn from(e: VfsError) -> Self {
        WalError::Vfs(e)
    }
}

/// Frame header size.
const FRAME_HEADER: usize = 8;

/// Segment header: magic + first-record sequence.
const SEG_MAGIC: &[u8; 4] = b"BSG1";
/// Segment header size.
const SEG_HEADER: usize = 12;

/// Parse an optional segment header; returns `(first_seq, body_offset)`.
fn segment_header(data: &[u8]) -> Option<(u64, usize)> {
    if data.len() >= SEG_HEADER && &data[0..4] == SEG_MAGIC {
        let first = u64::from_le_bytes(data[4..12].try_into().unwrap());
        Some((first, SEG_HEADER))
    } else {
        None
    }
}

/// Telemetry handles for a WAL (attached via [`Wal::set_telemetry`]).
struct WalMetrics {
    appends: Arc<Counter>,
    bytes: Arc<Counter>,
    rotations: Arc<Counter>,
    /// Durable-write latency per append, in clock microseconds. Under a
    /// `SimClock` this is the simulated cost (zero unless something
    /// advances the clock mid-append), keeping instrumented runs
    /// deterministic.
    fsync_us: Arc<Histogram>,
    clock: SharedClock,
}

/// How a [`Wal::append_batch`] group was committed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupAppendStats {
    /// Records in the group.
    pub records: u64,
    /// Physical store appends issued (one per segment the group touched;
    /// 1 when no rotation happened mid-group).
    pub physical_appends: u64,
}

/// A segmented write-ahead log.
pub struct Wal {
    store: Arc<dyn FileStore>,
    dir: String,
    /// Segment currently being appended to.
    active_segment: u64,
    /// Bytes in the active segment (header included).
    active_bytes: u64,
    /// Whether the active segment holds at least one record.
    active_has_records: bool,
    /// Records are numbered from 1 across segments.
    next_seq: u64,
    /// Rotate segments at this size.
    segment_bytes: u64,
    /// Optional `wal.*` metrics.
    metrics: Option<WalMetrics>,
}

/// Default segment rotation size.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

fn segment_path(dir: &str, n: u64) -> String {
    format!("{dir}/{n:010}.seg")
}

impl Wal {
    /// Open (or create) a WAL in `dir`, replaying existing records into
    /// `apply`. Returns the WAL positioned for appending.
    ///
    /// `apply` is called once per intact record, in order, with
    /// `(sequence_number, payload)`.
    pub fn open(
        store: Arc<dyn FileStore>,
        dir: &str,
        mut apply: impl FnMut(u64, &[u8]),
    ) -> Result<Wal, WalError> {
        store.create_dir_all(dir)?;
        let mut segments: Vec<u64> = Vec::new();
        for entry in store.list_dir(dir)? {
            if let Some(stem) = entry.name.strip_suffix(".seg") {
                let n: u64 = stem
                    .parse()
                    .map_err(|_| WalError::BadSegmentName(entry.name.clone()))?;
                segments.push(n);
            }
        }
        segments.sort_unstable();

        let mut seq = 0u64;
        let mut active_segment = *segments.last().unwrap_or(&1);
        let mut active_bytes = 0u64;
        let mut active_has_records = false;

        for &seg in &segments {
            let path = segment_path(dir, seg);
            let data = store.read(&path)?;
            let body_off = match segment_header(&data) {
                Some((first_seq, off)) => {
                    // the header pins this segment's numbering even when
                    // every earlier segment has been pruned away
                    seq = first_seq.saturating_sub(1);
                    off
                }
                None => 0, // legacy headerless segment
            };
            let before = seq;
            let valid = body_off + Self::replay_segment(&data[body_off..], &mut seq, &mut apply);
            if seg == active_segment {
                active_bytes = valid as u64;
                active_has_records = seq > before;
                if valid < data.len() {
                    // torn tail: truncate so future appends are clean
                    store.write(&path, &data[..valid])?;
                }
            } else if valid < data.len() {
                // corruption in a non-final segment: everything after it
                // is unreachable; truncate here and make this the active
                // segment (later segments are stale garbage from a crash)
                store.write(&path, &data[..valid])?;
                for &later in segments.iter().filter(|&&s| s > seg) {
                    store.remove(&segment_path(dir, later))?;
                }
                active_segment = seg;
                active_bytes = valid as u64;
                active_has_records = seq > before;
                break;
            }
        }

        Ok(Wal {
            store,
            dir: dir.to_string(),
            active_segment,
            active_bytes,
            active_has_records,
            next_seq: seq + 1,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            metrics: None,
        })
    }

    /// Attach `wal.*` metrics: append/rotation counters and the
    /// durable-write latency histogram `wal.fsync_us`, timed on `clock`.
    pub fn set_telemetry(&mut self, reg: &Registry, clock: SharedClock) {
        self.metrics = Some(WalMetrics {
            appends: reg.counter("wal.appends"),
            bytes: reg.counter("wal.bytes"),
            rotations: reg.counter("wal.rotations"),
            fsync_us: reg.histogram("wal.fsync_us"),
            clock,
        });
    }

    /// Replay one segment buffer; returns the byte offset of the first
    /// invalid frame (== `data.len()` if the whole segment is intact).
    fn replay_segment(data: &[u8], seq: &mut u64, apply: &mut impl FnMut(u64, &[u8])) -> usize {
        let mut pos = 0usize;
        while pos + FRAME_HEADER <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let end = pos + FRAME_HEADER + len;
            if end > data.len() {
                break; // torn write
            }
            let payload = &data[pos + FRAME_HEADER..end];
            if crc32(payload) != crc {
                break; // corrupt
            }
            *seq += 1;
            apply(*seq, payload);
            pos = end;
        }
        pos
    }

    /// Override the segment rotation size (tests use small segments).
    pub fn set_segment_bytes(&mut self, bytes: u64) {
        self.segment_bytes = bytes.max(FRAME_HEADER as u64 + 1);
    }

    /// Append one record; returns its sequence number.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        if self.active_bytes >= self.segment_bytes {
            self.active_segment += 1;
            self.active_bytes = 0;
            self.active_has_records = false;
            if let Some(m) = &self.metrics {
                m.rotations.inc();
            }
        }
        let mut frame = Vec::with_capacity(SEG_HEADER + FRAME_HEADER + payload.len());
        if self.active_bytes == 0 {
            // first bytes of a fresh segment: pin its base sequence
            frame.extend_from_slice(SEG_MAGIC);
            frame.extend_from_slice(&self.next_seq.to_le_bytes());
        }
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let started = self.metrics.as_ref().map(|m| m.clock.now());
        self.store
            .append(&segment_path(&self.dir, self.active_segment), &frame)?;
        if let (Some(m), Some(t0)) = (&self.metrics, started) {
            m.fsync_us.record(m.clock.now().since(t0).as_micros());
            m.appends.inc();
            m.bytes.add(frame.len() as u64);
        }
        self.active_bytes += frame.len() as u64;
        self.active_has_records = true;
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Append a group of records with one physical store append (and so
    /// one fsync on a real filesystem) per touched segment, instead of
    /// one per record. Returns how the group was committed.
    ///
    /// The byte stream is **identical** to calling [`Wal::append`] once
    /// per payload: rotation is decided record by record while framing,
    /// so segment boundaries, headers and sequence numbers land exactly
    /// where the per-record path would put them — group size can never
    /// change the WAL bytes. Each frame is handed to the store as its
    /// own part via [`FileStore::append_many`], so the vfs ledger counts
    /// one write per record and a torn physical append still tears on a
    /// frame boundary at worst (replay then recovers a prefix of whole
    /// records; a tear *inside* a frame is caught by the CRC).
    ///
    /// Per-record metrics (`wal.appends`, `wal.bytes`, `wal.fsync_us`
    /// samples) are recorded per record — the fsync histogram gets the
    /// flush latency once per record in the flushed chunk, which under a
    /// `SimClock` is deterministically zero. If the underlying store
    /// errors mid-group the WAL's in-memory position is ahead of the
    /// durable bytes; callers must treat that as fatal and reopen, the
    /// same contract as a failed [`Wal::append`].
    pub fn append_batch(&mut self, payloads: &[Vec<u8>]) -> Result<GroupAppendStats, WalError> {
        let mut stats = GroupAppendStats {
            records: payloads.len() as u64,
            physical_appends: 0,
        };
        // frames accumulated for `chunk_segment`, flushed on rotation and
        // at the end — one physical append per (group × segment)
        let mut chunk: Vec<Vec<u8>> = Vec::new();
        let mut chunk_segment = self.active_segment;
        for payload in payloads {
            if self.active_bytes >= self.segment_bytes {
                self.flush_chunk(&mut chunk, chunk_segment, &mut stats)?;
                self.active_segment += 1;
                self.active_bytes = 0;
                self.active_has_records = false;
                chunk_segment = self.active_segment;
                if let Some(m) = &self.metrics {
                    m.rotations.inc();
                }
            }
            let mut frame = Vec::with_capacity(SEG_HEADER + FRAME_HEADER + payload.len());
            if self.active_bytes == 0 {
                frame.extend_from_slice(SEG_MAGIC);
                frame.extend_from_slice(&self.next_seq.to_le_bytes());
            }
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(payload).to_le_bytes());
            frame.extend_from_slice(payload);
            self.active_bytes += frame.len() as u64;
            self.active_has_records = true;
            self.next_seq += 1;
            chunk.push(frame);
        }
        self.flush_chunk(&mut chunk, chunk_segment, &mut stats)?;
        Ok(stats)
    }

    /// Durably append the buffered frames of one segment in a single
    /// [`FileStore::append_many`] call.
    fn flush_chunk(
        &mut self,
        chunk: &mut Vec<Vec<u8>>,
        segment: u64,
        stats: &mut GroupAppendStats,
    ) -> Result<(), WalError> {
        if chunk.is_empty() {
            return Ok(());
        }
        let parts: Vec<&[u8]> = chunk.iter().map(|f| f.as_slice()).collect();
        let started = self.metrics.as_ref().map(|m| m.clock.now());
        self.store
            .append_many(&segment_path(&self.dir, segment), &parts)?;
        if let (Some(m), Some(t0)) = (&self.metrics, started) {
            let elapsed = m.clock.now().since(t0).as_micros();
            m.fsync_us.record_n(elapsed, chunk.len() as u64);
            for frame in chunk.iter() {
                m.appends.inc();
                m.bytes.add(frame.len() as u64);
            }
        }
        stats.physical_appends += 1;
        chunk.clear();
        Ok(())
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Start a fresh segment so that every record logged so far lives in
    /// a non-active segment (and can be pruned once covered by a
    /// snapshot). The new segment's header is written eagerly so the base
    /// sequence survives even if every older segment is pruned before the
    /// next append.
    pub fn rotate(&mut self) -> Result<(), WalError> {
        if self.active_has_records {
            self.active_segment += 1;
            if let Some(m) = &self.metrics {
                m.rotations.inc();
            }
            let mut header = Vec::with_capacity(SEG_HEADER);
            header.extend_from_slice(SEG_MAGIC);
            header.extend_from_slice(&self.next_seq.to_le_bytes());
            self.store
                .append(&segment_path(&self.dir, self.active_segment), &header)?;
            self.active_bytes = SEG_HEADER as u64;
            self.active_has_records = false;
        }
        Ok(())
    }

    /// Delete all segments strictly older than the active one whose
    /// records are covered by a snapshot at `covered_seq`. Conservative:
    /// only removes whole segments that cannot contain records after
    /// `covered_seq`, which we establish by re-reading and counting.
    pub fn prune(&mut self, covered_seq: u64) -> Result<usize, WalError> {
        let mut removed = 0usize;
        let mut segments: Vec<u64> = Vec::new();
        for entry in self.store.list_dir(&self.dir)? {
            if let Some(stem) = entry.name.strip_suffix(".seg") {
                if let Ok(n) = stem.parse::<u64>() {
                    segments.push(n);
                }
            }
        }
        segments.sort_unstable();
        let mut seq = 0u64;
        for &seg in &segments {
            let path = segment_path(&self.dir, seg);
            let data = self.store.read(&path)?;
            let (body_off, base) = match segment_header(&data) {
                Some((first_seq, off)) => (off, first_seq.saturating_sub(1)),
                None => (0, seq),
            };
            let mut last_in_seg = base;
            Self::replay_segment(&data[body_off..], &mut last_in_seg, &mut |_, _| {});
            // records in this segment are (base, last_in_seg]
            if seg != self.active_segment && last_in_seg <= covered_seq {
                self.store.remove(&path)?;
                removed += 1;
            }
            seq = last_in_seg;
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::SimClock;
    use bistro_vfs::MemFs;

    fn mem() -> Arc<MemFs> {
        MemFs::shared(SimClock::new())
    }

    fn replayed(store: &Arc<MemFs>) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let _ = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |seq, p| {
            out.push((seq, p.to_vec()))
        })
        .unwrap();
        out
    }

    #[test]
    fn append_and_replay() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            assert_eq!(wal.append(b"one").unwrap(), 1);
            assert_eq!(wal.append(b"two").unwrap(), 2);
            assert_eq!(wal.append(b"three").unwrap(), 3);
        }
        let recs = replayed(&store);
        assert_eq!(
            recs,
            vec![
                (1, b"one".to_vec()),
                (2, b"two".to_vec()),
                (3, b"three".to_vec())
            ]
        );
    }

    #[test]
    fn reopen_continues_sequence() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append(b"a").unwrap();
        }
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            assert_eq!(wal.append(b"b").unwrap(), 2);
        }
        assert_eq!(replayed(&store).len(), 2);
    }

    #[test]
    fn torn_tail_discarded_and_truncated() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append(b"good").unwrap();
        }
        // simulate a torn write: append a partial frame
        store
            .append("wal/0000000001.seg", &[0x55, 0x00, 0x00])
            .unwrap();
        let recs = replayed(&store);
        assert_eq!(recs, vec![(1, b"good".to_vec())]);
        // after recovery the torn bytes are gone; appends resume cleanly
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append(b"after").unwrap();
        }
        assert_eq!(replayed(&store).len(), 2);
    }

    #[test]
    fn corrupt_payload_stops_replay() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        // flip a bit inside the second record's payload
        let mut data = store.read("wal/0000000001.seg").unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        store.write("wal/0000000001.seg", &data).unwrap();
        let recs = replayed(&store);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, b"first");
    }

    #[test]
    fn segment_rotation() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.set_segment_bytes(64);
            for i in 0..50u32 {
                wal.append(format!("record-{i:04}").as_bytes()).unwrap();
            }
        }
        let segs = store.list_dir("wal").unwrap();
        assert!(
            segs.len() > 1,
            "expected rotation, got {} segments",
            segs.len()
        );
        let recs = replayed(&store);
        assert_eq!(recs.len(), 50);
        assert_eq!(recs[49].1, b"record-0049");
    }

    #[test]
    fn prune_removes_covered_segments() {
        let store = mem();
        let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        wal.set_segment_bytes(64);
        for i in 0..50u32 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        let before = store.list_dir("wal").unwrap().len();
        let removed = wal.prune(50).unwrap();
        assert!(removed > 0);
        assert_eq!(store.list_dir("wal").unwrap().len(), before - removed);
        // numbering must not restart after prune: the surviving segments'
        // headers pin the base sequence, so the next record is exactly 51
        let mut wal2 = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        let seq = wal2.append(b"post-prune").unwrap();
        assert_eq!(seq, 51);
    }

    #[test]
    fn prune_all_then_reopen_preserves_numbering() {
        let store = mem();
        let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        for i in 0..50u32 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        // rotate so every record lives in a prunable segment, then cover
        // all of them: only the (empty) active segment remains on disk
        wal.rotate().unwrap();
        assert!(wal.prune(50).unwrap() > 0);
        drop(wal);
        let mut recs = Vec::new();
        let mut wal2 = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |seq, p| {
            recs.push((seq, p.to_vec()))
        })
        .unwrap();
        assert!(recs.is_empty(), "pruned records must not replay");
        assert_eq!(wal2.next_seq(), 51, "sequence restarted after prune");
        assert_eq!(wal2.append(b"later").unwrap(), 51);
        // and the replayed sequence numbers stay pinned on the next reopen
        drop(wal2);
        let replayed = replayed(&store);
        assert_eq!(replayed, vec![(51, b"later".to_vec())]);
    }

    #[test]
    fn legacy_headerless_segment_replays_from_one() {
        let store = mem();
        // hand-build a pre-header segment: raw frames, no magic
        let payload = b"old-style";
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        store.create_dir_all("wal").unwrap();
        store.write("wal/0000000001.seg", &frame).unwrap();
        let recs = replayed(&store);
        assert_eq!(recs, vec![(1, b"old-style".to_vec())]);
        let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        assert_eq!(wal.append(b"new").unwrap(), 2);
    }

    #[test]
    fn legacy_segment_coexists_with_headered_segments() {
        // Regression for the mixed case: a pre-"BSG1" headerless segment
        // followed by headered segments must replay as one continuous
        // sequence — the legacy segment numbers from the running
        // sequence, the headered one from its pinned base — and reopen
        // must keep appending where the stream left off.
        let store = mem();
        // hand-build the legacy segment: raw frames, no magic
        let mut legacy = Vec::new();
        for p in [b"old-1".as_slice(), b"old-2".as_slice()] {
            legacy.extend_from_slice(&(p.len() as u32).to_le_bytes());
            legacy.extend_from_slice(&crc32(p).to_le_bytes());
            legacy.extend_from_slice(p);
        }
        store.create_dir_all("wal").unwrap();
        store.write("wal/0000000001.seg", &legacy).unwrap();

        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            assert_eq!(wal.next_seq(), 3, "legacy records must count");
            assert_eq!(wal.append(b"new-3").unwrap(), 3);
            wal.rotate().unwrap(); // segment 2 gets an eager "BSG1" header
            assert_eq!(wal.append(b"new-4").unwrap(), 4);
        }
        // on disk: segment 1 is still headerless, segment 2 is headered
        // and pinned at the running sequence
        assert!(segment_header(&store.read("wal/0000000001.seg").unwrap()).is_none());
        assert_eq!(
            segment_header(&store.read("wal/0000000002.seg").unwrap()).map(|(first, _)| first),
            Some(4)
        );
        // mixed replay is one continuous, correctly numbered stream
        let recs = replayed(&store);
        assert_eq!(
            recs,
            vec![
                (1, b"old-1".to_vec()),
                (2, b"old-2".to_vec()),
                (3, b"new-3".to_vec()),
                (4, b"new-4".to_vec()),
            ]
        );
        // and a further reopen keeps the sequence going
        let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        assert_eq!(wal.append(b"new-5").unwrap(), 5);
    }

    #[test]
    fn prune_keeps_uncovered() {
        let store = mem();
        let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        wal.set_segment_bytes(64);
        for i in 0..50u32 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        // nothing covered: nothing pruned
        assert_eq!(wal.prune(0).unwrap(), 0);
    }

    #[test]
    fn telemetry_counts_appends_and_rotations() {
        let store = mem();
        let clock = SimClock::new();
        let reg = Registry::new();
        let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        wal.set_telemetry(&reg, clock.clone());
        wal.set_segment_bytes(64);
        for i in 0..10u32 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        wal.rotate().unwrap();
        assert_eq!(reg.counter_value("wal.appends"), Some(10));
        let rotations = reg.counter_value("wal.rotations").unwrap();
        assert!(rotations >= 2, "size rotations + explicit: {rotations}");
        // SimClock never advanced mid-append: every fsync sample is 0
        assert_eq!(reg.histogram_quantile("wal.fsync_us", 0.99), Some(0));
        assert!(reg.counter_value("wal.bytes").unwrap() > 0);
    }

    /// Sorted (path, bytes) dump of every WAL segment in `store`.
    fn wal_bytes(store: &Arc<MemFs>) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = store
            .list_dir("wal")
            .unwrap()
            .iter()
            .map(|e| {
                let p = format!("wal/{}", e.name);
                let d = store.read(&p).unwrap();
                (p, d)
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn append_batch_bytes_identical_to_per_record_appends() {
        let payloads: Vec<Vec<u8>> = (0..37u32)
            .map(|i| format!("record-{i:04}-{}", "x".repeat((i % 11) as usize)).into_bytes())
            .collect();
        // reference: one append per record, with rotation forced often
        let ref_store = mem();
        {
            let mut wal =
                Wal::open(ref_store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.set_segment_bytes(96);
            for p in &payloads {
                wal.append(p).unwrap();
            }
        }
        let reference = wal_bytes(&ref_store);
        // batched, at several group sizes including ones that straddle
        // rotation boundaries and a size larger than the whole stream
        for group in [1usize, 2, 5, 7, 64] {
            let store = mem();
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.set_segment_bytes(96);
            let mut physical = 0u64;
            for batch in payloads.chunks(group) {
                let s = wal.append_batch(batch).unwrap();
                assert_eq!(s.records, batch.len() as u64);
                physical += s.physical_appends;
            }
            assert_eq!(wal.next_seq(), payloads.len() as u64 + 1);
            assert_eq!(wal_bytes(&store), reference, "group={group}");
            if group > 1 {
                assert!(
                    physical < payloads.len() as u64,
                    "group={group}: expected amortized appends, got {physical}"
                );
            }
            // the vfs ledger is a pure function of the record stream
            assert_eq!(
                store.stats().snapshot().writes,
                ref_store.stats().snapshot().writes,
                "group={group}"
            );
        }
    }

    #[test]
    fn torn_group_append_recovers_to_whole_record_prefix() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append_batch(&[b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()])
                .unwrap();
        }
        // tear the physical group append at every byte boundary: replay
        // must always land on a prefix of whole records, never half a one
        let full = store.read("wal/0000000001.seg").unwrap();
        for cut in 0..full.len() {
            let torn = mem();
            torn.create_dir_all("wal").unwrap();
            torn.write("wal/0000000001.seg", &full[..cut]).unwrap();
            let recs = replayed(&torn);
            let whole: Vec<Vec<u8>> = vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()];
            assert!(recs.len() <= whole.len());
            for (i, (seq, payload)) in recs.iter().enumerate() {
                assert_eq!(*seq, i as u64 + 1, "cut={cut}");
                assert_eq!(payload, &whole[i], "cut={cut}: half-record replayed");
            }
        }
    }

    #[test]
    fn append_batch_telemetry_counts_per_record() {
        let store = mem();
        let clock = SimClock::new();
        let reg = Registry::new();
        let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        wal.set_telemetry(&reg, clock.clone());
        let payloads: Vec<Vec<u8>> = (0..10u32).map(|i| vec![b'r', i as u8]).collect();
        let s = wal.append_batch(&payloads).unwrap();
        assert_eq!(s.records, 10);
        assert_eq!(s.physical_appends, 1);
        assert_eq!(reg.counter_value("wal.appends"), Some(10));
        assert_eq!(reg.histogram("wal.fsync_us").count(), 10);
        assert_eq!(reg.histogram_quantile("wal.fsync_us", 0.99), Some(0));
    }

    #[test]
    fn empty_record_roundtrips() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append(b"").unwrap();
        }
        let recs = replayed(&store);
        assert_eq!(recs, vec![(1, vec![])]);
    }
}
