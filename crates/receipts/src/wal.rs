//! Segmented, CRC-framed write-ahead log.
//!
//! Records are appended to numbered segment files
//! (`<dir>/0000000001.seg`, …) under a [`FileStore`]. Each record is
//! framed as:
//!
//! ```text
//! [u32 payload length][u32 CRC-32 of payload][payload bytes]
//! ```
//!
//! Replay reads segments in order and stops at the first torn or corrupt
//! frame — everything before it is durable, everything after is treated
//! as a crashed-in-flight write and discarded (and the segment is
//! truncated on the next append). A snapshot records the highest record
//! sequence number it covers; segments whose records are all covered can
//! be deleted.

use bistro_base::checksum::crc32;
use bistro_vfs::{FileStore, VfsError};
use std::fmt;
use std::sync::Arc;

/// Errors from WAL operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Underlying filesystem error.
    Vfs(VfsError),
    /// A segment filename did not parse.
    BadSegmentName(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Vfs(e) => write!(f, "wal i/o: {e}"),
            WalError::BadSegmentName(n) => write!(f, "bad wal segment name: {n}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<VfsError> for WalError {
    fn from(e: VfsError) -> Self {
        WalError::Vfs(e)
    }
}

/// Frame header size.
const FRAME_HEADER: usize = 8;

/// A segmented write-ahead log.
pub struct Wal {
    store: Arc<dyn FileStore>,
    dir: String,
    /// Segment currently being appended to.
    active_segment: u64,
    /// Bytes in the active segment.
    active_bytes: u64,
    /// Records are numbered from 1 across segments.
    next_seq: u64,
    /// Rotate segments at this size.
    segment_bytes: u64,
}

/// Default segment rotation size.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

fn segment_path(dir: &str, n: u64) -> String {
    format!("{dir}/{n:010}.seg")
}

impl Wal {
    /// Open (or create) a WAL in `dir`, replaying existing records into
    /// `apply`. Returns the WAL positioned for appending.
    ///
    /// `apply` is called once per intact record, in order, with
    /// `(sequence_number, payload)`.
    pub fn open(
        store: Arc<dyn FileStore>,
        dir: &str,
        mut apply: impl FnMut(u64, &[u8]),
    ) -> Result<Wal, WalError> {
        store.create_dir_all(dir)?;
        let mut segments: Vec<u64> = Vec::new();
        for entry in store.list_dir(dir)? {
            if let Some(stem) = entry.name.strip_suffix(".seg") {
                let n: u64 = stem
                    .parse()
                    .map_err(|_| WalError::BadSegmentName(entry.name.clone()))?;
                segments.push(n);
            }
        }
        segments.sort_unstable();

        let mut seq = 0u64;
        let mut active_segment = *segments.last().unwrap_or(&1);
        let mut active_bytes = 0u64;

        for &seg in &segments {
            let path = segment_path(dir, seg);
            let data = store.read(&path)?;
            let valid = Self::replay_segment(&data, &mut seq, &mut apply);
            if seg == active_segment {
                active_bytes = valid as u64;
                if valid < data.len() {
                    // torn tail: truncate so future appends are clean
                    store.write(&path, &data[..valid])?;
                }
            } else if valid < data.len() {
                // corruption in a non-final segment: everything after it
                // is unreachable; truncate here and make this the active
                // segment (later segments are stale garbage from a crash)
                store.write(&path, &data[..valid])?;
                for &later in segments.iter().filter(|&&s| s > seg) {
                    store.remove(&segment_path(dir, later))?;
                }
                active_segment = seg;
                active_bytes = valid as u64;
                break;
            }
        }

        Ok(Wal {
            store,
            dir: dir.to_string(),
            active_segment,
            active_bytes,
            next_seq: seq + 1,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        })
    }

    /// Replay one segment buffer; returns the byte offset of the first
    /// invalid frame (== `data.len()` if the whole segment is intact).
    fn replay_segment(data: &[u8], seq: &mut u64, apply: &mut impl FnMut(u64, &[u8])) -> usize {
        let mut pos = 0usize;
        while pos + FRAME_HEADER <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let end = pos + FRAME_HEADER + len;
            if end > data.len() {
                break; // torn write
            }
            let payload = &data[pos + FRAME_HEADER..end];
            if crc32(payload) != crc {
                break; // corrupt
            }
            *seq += 1;
            apply(*seq, payload);
            pos = end;
        }
        pos
    }

    /// Override the segment rotation size (tests use small segments).
    pub fn set_segment_bytes(&mut self, bytes: u64) {
        self.segment_bytes = bytes.max(FRAME_HEADER as u64 + 1);
    }

    /// Append one record; returns its sequence number.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        if self.active_bytes >= self.segment_bytes {
            self.active_segment += 1;
            self.active_bytes = 0;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.store
            .append(&segment_path(&self.dir, self.active_segment), &frame)?;
        self.active_bytes += frame.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(seq)
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Start a fresh segment so that every record logged so far lives in
    /// a non-active segment (and can be pruned once covered by a
    /// snapshot).
    pub fn rotate(&mut self) {
        if self.active_bytes > 0 {
            self.active_segment += 1;
            self.active_bytes = 0;
        }
    }

    /// Delete all segments strictly older than the active one whose
    /// records are covered by a snapshot at `covered_seq`. Conservative:
    /// only removes whole segments that cannot contain records after
    /// `covered_seq`, which we establish by re-reading and counting.
    pub fn prune(&mut self, covered_seq: u64) -> Result<usize, WalError> {
        let mut removed = 0usize;
        let mut segments: Vec<u64> = Vec::new();
        for entry in self.store.list_dir(&self.dir)? {
            if let Some(stem) = entry.name.strip_suffix(".seg") {
                if let Ok(n) = stem.parse::<u64>() {
                    segments.push(n);
                }
            }
        }
        segments.sort_unstable();
        let mut seq = 0u64;
        for &seg in &segments {
            let path = segment_path(&self.dir, seg);
            let data = self.store.read(&path)?;
            let mut last_in_seg = seq;
            Self::replay_segment(&data, &mut last_in_seg, &mut |_, _| {});
            // records in this segment are (seq, last_in_seg]
            if seg != self.active_segment && last_in_seg <= covered_seq {
                self.store.remove(&path)?;
                removed += 1;
            }
            seq = last_in_seg;
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::SimClock;
    use bistro_vfs::MemFs;

    fn mem() -> Arc<MemFs> {
        MemFs::shared(SimClock::new())
    }

    fn replayed(store: &Arc<MemFs>) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let _ = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |seq, p| {
            out.push((seq, p.to_vec()))
        })
        .unwrap();
        out
    }

    #[test]
    fn append_and_replay() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            assert_eq!(wal.append(b"one").unwrap(), 1);
            assert_eq!(wal.append(b"two").unwrap(), 2);
            assert_eq!(wal.append(b"three").unwrap(), 3);
        }
        let recs = replayed(&store);
        assert_eq!(
            recs,
            vec![
                (1, b"one".to_vec()),
                (2, b"two".to_vec()),
                (3, b"three".to_vec())
            ]
        );
    }

    #[test]
    fn reopen_continues_sequence() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append(b"a").unwrap();
        }
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            assert_eq!(wal.append(b"b").unwrap(), 2);
        }
        assert_eq!(replayed(&store).len(), 2);
    }

    #[test]
    fn torn_tail_discarded_and_truncated() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append(b"good").unwrap();
        }
        // simulate a torn write: append a partial frame
        store
            .append("wal/0000000001.seg", &[0x55, 0x00, 0x00])
            .unwrap();
        let recs = replayed(&store);
        assert_eq!(recs, vec![(1, b"good".to_vec())]);
        // after recovery the torn bytes are gone; appends resume cleanly
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append(b"after").unwrap();
        }
        assert_eq!(replayed(&store).len(), 2);
    }

    #[test]
    fn corrupt_payload_stops_replay() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        // flip a bit inside the second record's payload
        let mut data = store.read("wal/0000000001.seg").unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        store.write("wal/0000000001.seg", &data).unwrap();
        let recs = replayed(&store);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, b"first");
    }

    #[test]
    fn segment_rotation() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.set_segment_bytes(64);
            for i in 0..50u32 {
                wal.append(format!("record-{i:04}").as_bytes()).unwrap();
            }
        }
        let segs = store.list_dir("wal").unwrap();
        assert!(
            segs.len() > 1,
            "expected rotation, got {} segments",
            segs.len()
        );
        let recs = replayed(&store);
        assert_eq!(recs.len(), 50);
        assert_eq!(recs[49].1, b"record-0049");
    }

    #[test]
    fn prune_removes_covered_segments() {
        let store = mem();
        let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        wal.set_segment_bytes(64);
        for i in 0..50u32 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        let before = store.list_dir("wal").unwrap().len();
        let removed = wal.prune(50).unwrap();
        assert!(removed > 0);
        assert_eq!(store.list_dir("wal").unwrap().len(), before - removed);
        // replay after prune yields only the active segment's records, and
        // appends continue with fresh sequence numbering per replay result
        let mut wal2 = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        let seq = wal2.append(b"post-prune").unwrap();
        assert!(seq >= 1);
    }

    #[test]
    fn prune_keeps_uncovered() {
        let store = mem();
        let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
        wal.set_segment_bytes(64);
        for i in 0..50u32 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        // nothing covered: nothing pruned
        assert_eq!(wal.prune(0).unwrap(), 0);
    }

    #[test]
    fn empty_record_roundtrips() {
        let store = mem();
        {
            let mut wal = Wal::open(store.clone() as Arc<dyn FileStore>, "wal", |_, _| {}).unwrap();
            wal.append(b"").unwrap();
        }
        let recs = replayed(&store);
        assert_eq!(recs, vec![(1, vec![])]);
    }
}
