//! Receipt record types and their binary encoding.

use bistro_base::{ByteReader, ByteWriter, CodecError, FileId, TimePoint};

/// The durable description of one received file (an *arrival receipt*).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileRecord {
    /// Stable id assigned on arrival.
    pub id: FileId,
    /// The original filename (as deposited in the landing directory,
    /// relative to it).
    pub name: String,
    /// Where the normalized file lives in staging.
    pub staged_path: String,
    /// Size in bytes (after normalization).
    pub size: u64,
    /// When the file arrived at the server.
    pub arrival: TimePoint,
    /// The feed timestamp extracted from the filename, if any.
    pub feed_time: Option<TimePoint>,
    /// Names of the feeds the file was classified into (possibly several
    /// — feed definitions may overlap).
    pub feeds: Vec<String>,
}

/// One WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A file arrived and was classified.
    Arrival(FileRecord),
    /// A file was delivered to a subscriber.
    Delivery {
        /// The delivered file.
        file: FileId,
        /// The receiving subscriber's name.
        subscriber: String,
        /// Delivery completion time.
        at: TimePoint,
    },
    /// A file fell out of the retention window and was expunged.
    Expire {
        /// The expired file.
        file: FileId,
        /// Expiration time.
        at: TimePoint,
    },
    /// A file's feed membership was recomputed after a feed definition
    /// changed (§4.2: "a feed definition can be revised at any moment").
    Reclassify {
        /// The affected file.
        file: FileId,
        /// The new complete feed list.
        feeds: Vec<String>,
    },
    /// Member-coverage mark for a shared-delivery-tree group: the relay
    /// has confirmed delivery of `file` to the members set in `bits`
    /// (bit `i`, LSB-first, = member `i` of the group's sorted member
    /// list), of which the first `watermark` form a fully-covered
    /// prefix. Re-applied marks OR-merge, so replay and cascaded
    /// backfill stay exactly-once without one receipt per member.
    GroupMark {
        /// The delivered file.
        file: FileId,
        /// Subscriber-group name.
        group: String,
        /// Member-coverage bitmap.
        bits: Vec<u8>,
        /// Count of leading fully-covered members.
        watermark: u64,
    },
}

/// A pre-serialized arrival record, minus the two fields only the commit
/// stage knows: the [`FileId`] (allocated in commit order so ids stay
/// deterministic under parallel prepare) and the arrival timestamp.
///
/// Prepare workers build the template off the hot path — encoding the
/// name, staged path, size, feed time and feed list once — and the
/// commit stage stamps id + arrival with [`ArrivalTemplate::finish`],
/// which is guaranteed to produce bytes identical to
/// `Record::Arrival(..).encode()` on the equivalent [`FileRecord`]
/// (checked by a unit test).
#[derive(Clone, Debug)]
pub struct ArrivalTemplate {
    /// Original (landing-relative) filename.
    pub name: String,
    /// Staging path of the primary classification.
    pub staged_path: String,
    /// Deposited size in bytes.
    pub size: u64,
    /// Feed timestamp parsed from the filename, if any.
    pub feed_time: Option<TimePoint>,
    /// Feeds the file classified into.
    pub feeds: Vec<String>,
    /// Encoded bytes between the id and the arrival timestamp
    /// (name, staged_path, size).
    mid: Vec<u8>,
    /// Encoded bytes after the arrival timestamp (feed_time, feeds).
    tail: Vec<u8>,
}

impl ArrivalTemplate {
    /// Pre-serialize everything but the id and arrival time.
    pub fn new(
        name: String,
        staged_path: String,
        size: u64,
        feed_time: Option<TimePoint>,
        feeds: Vec<String>,
    ) -> ArrivalTemplate {
        let mut mid = ByteWriter::new();
        mid.put_str(&name);
        mid.put_str(&staged_path);
        mid.put_varint(size);
        let mut tail = ByteWriter::new();
        match feed_time {
            Some(t) => {
                tail.put_u8(1);
                tail.put_u64(t.as_micros());
            }
            None => tail.put_u8(0),
        }
        tail.put_varint(feeds.len() as u64);
        for feed in &feeds {
            tail.put_str(feed);
        }
        ArrivalTemplate {
            name,
            staged_path,
            size,
            feed_time,
            feeds,
            mid: mid.into_bytes(),
            tail: tail.into_bytes(),
        }
    }

    /// Stamp the commit-assigned id and arrival time, yielding the exact
    /// WAL payload bytes and the in-memory [`FileRecord`].
    pub fn finish(&self, id: FileId, arrival: TimePoint) -> (Vec<u8>, FileRecord) {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_ARRIVAL);
        w.put_varint(id.raw());
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&self.mid);
        bytes.extend_from_slice(&arrival.as_micros().to_le_bytes());
        bytes.extend_from_slice(&self.tail);
        let record = FileRecord {
            id,
            name: self.name.clone(),
            staged_path: self.staged_path.clone(),
            size: self.size,
            arrival,
            feed_time: self.feed_time,
            feeds: self.feeds.clone(),
        };
        (bytes, record)
    }
}

const TAG_ARRIVAL: u8 = 1;
const TAG_DELIVERY: u8 = 2;
const TAG_EXPIRE: u8 = 3;
const TAG_RECLASSIFY: u8 = 4;
const TAG_GROUP_MARK: u8 = 5;

impl Record {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Record::Arrival(f) => {
                w.put_u8(TAG_ARRIVAL);
                w.put_varint(f.id.raw());
                w.put_str(&f.name);
                w.put_str(&f.staged_path);
                w.put_varint(f.size);
                w.put_u64(f.arrival.as_micros());
                match f.feed_time {
                    Some(t) => {
                        w.put_u8(1);
                        w.put_u64(t.as_micros());
                    }
                    None => w.put_u8(0),
                }
                w.put_varint(f.feeds.len() as u64);
                for feed in &f.feeds {
                    w.put_str(feed);
                }
            }
            Record::Delivery {
                file,
                subscriber,
                at,
            } => {
                w.put_u8(TAG_DELIVERY);
                w.put_varint(file.raw());
                w.put_str(subscriber);
                w.put_u64(at.as_micros());
            }
            Record::Expire { file, at } => {
                w.put_u8(TAG_EXPIRE);
                w.put_varint(file.raw());
                w.put_u64(at.as_micros());
            }
            Record::Reclassify { file, feeds } => {
                w.put_u8(TAG_RECLASSIFY);
                w.put_varint(file.raw());
                w.put_varint(feeds.len() as u64);
                for feed in feeds {
                    w.put_str(feed);
                }
            }
            Record::GroupMark {
                file,
                group,
                bits,
                watermark,
            } => {
                w.put_u8(TAG_GROUP_MARK);
                w.put_varint(file.raw());
                w.put_str(group);
                w.put_bytes(bits);
                w.put_varint(*watermark);
            }
        }
        w.into_bytes()
    }

    /// Decode from bytes.
    pub fn decode(data: &[u8]) -> Result<Record, CodecError> {
        let mut r = ByteReader::new(data);
        let tag = r.get_u8()?;
        let rec = match tag {
            TAG_ARRIVAL => {
                let id = FileId(r.get_varint()?);
                let name = r.get_str()?.to_string();
                let staged_path = r.get_str()?.to_string();
                let size = r.get_varint()?;
                let arrival = TimePoint::from_micros(r.get_u64()?);
                let feed_time = match r.get_u8()? {
                    0 => None,
                    _ => Some(TimePoint::from_micros(r.get_u64()?)),
                };
                let n = r.get_varint()? as usize;
                let mut feeds = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    feeds.push(r.get_str()?.to_string());
                }
                Record::Arrival(FileRecord {
                    id,
                    name,
                    staged_path,
                    size,
                    arrival,
                    feed_time,
                    feeds,
                })
            }
            TAG_DELIVERY => Record::Delivery {
                file: FileId(r.get_varint()?),
                subscriber: r.get_str()?.to_string(),
                at: TimePoint::from_micros(r.get_u64()?),
            },
            TAG_EXPIRE => Record::Expire {
                file: FileId(r.get_varint()?),
                at: TimePoint::from_micros(r.get_u64()?),
            },
            TAG_RECLASSIFY => {
                let file = FileId(r.get_varint()?);
                let n = r.get_varint()? as usize;
                let mut feeds = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    feeds.push(r.get_str()?.to_string());
                }
                Record::Reclassify { file, feeds }
            }
            TAG_GROUP_MARK => Record::GroupMark {
                file: FileId(r.get_varint()?),
                group: r.get_str()?.to_string(),
                bits: r.get_bytes()?.to_vec(),
                watermark: r.get_varint()?,
            },
            other => {
                return Err(CodecError::BadTag {
                    what: "receipt record",
                    tag: other,
                })
            }
        };
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> FileRecord {
        FileRecord {
            id: FileId(42),
            name: "MEMORY_poller1_20100925.gz".to_string(),
            staged_path: "staging/SNMP/MEMORY/2010/09/25/MEMORY_poller1_20100925.gz".to_string(),
            size: 123_456,
            arrival: TimePoint::from_secs(1_285_372_800),
            feed_time: Some(TimePoint::from_secs(1_285_372_800)),
            feeds: vec!["SNMP/MEMORY".to_string(), "ALL".to_string()],
        }
    }

    #[test]
    fn roundtrip_all_variants() {
        let records = vec![
            Record::Arrival(sample_file()),
            Record::Arrival(FileRecord {
                feed_time: None,
                feeds: vec![],
                ..sample_file()
            }),
            Record::Delivery {
                file: FileId(42),
                subscriber: "warehouse_dallas".to_string(),
                at: TimePoint::from_secs(1_285_372_860),
            },
            Record::Expire {
                file: FileId(42),
                at: TimePoint::from_secs(1_285_977_600),
            },
            Record::Reclassify {
                file: FileId(42),
                feeds: vec!["SNMP/MEMORY".to_string()],
            },
            Record::GroupMark {
                file: FileId(42),
                group: "EAST_COAST".to_string(),
                bits: vec![0xFF, 0b0000_0101],
                watermark: 8,
            },
            Record::GroupMark {
                file: FileId(7),
                group: "G".to_string(),
                bits: vec![],
                watermark: 0,
            },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(Record::decode(&bytes).unwrap(), rec, "roundtrip {rec:?}");
        }
    }

    #[test]
    fn template_finish_matches_full_encode_byte_for_byte() {
        for f in [
            sample_file(),
            FileRecord {
                feed_time: None,
                feeds: vec![],
                ..sample_file()
            },
            FileRecord {
                id: FileId(u64::MAX),
                size: 0,
                name: String::new(),
                ..sample_file()
            },
        ] {
            let template = ArrivalTemplate::new(
                f.name.clone(),
                f.staged_path.clone(),
                f.size,
                f.feed_time,
                f.feeds.clone(),
            );
            let (bytes, record) = template.finish(f.id, f.arrival);
            assert_eq!(bytes, Record::Arrival(f.clone()).encode());
            assert_eq!(record, f);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Record::decode(&[99]),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = Record::Arrival(sample_file()).encode();
        for cut in [1usize, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(Record::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let bytes = Record::GroupMark {
            file: FileId(42),
            group: "G".to_string(),
            bits: vec![0xFF, 0x01],
            watermark: 8,
        }
        .encode();
        for cut in 1..bytes.len() {
            assert!(
                Record::decode(&bytes[..cut]).is_err(),
                "group mark cut at {cut}"
            );
        }
    }
}
