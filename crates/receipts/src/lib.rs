//! # bistro-receipts
//!
//! The transactional receipt database at the heart of Bistro's reliable
//! feed delivery (paper §4.2):
//!
//! > "Every file received from data feed providers is logged in an
//! > `arrival_receipts` database along with list of feeds that the file
//! > belongs to. Additionally a separate `delivery_receipts` database is
//! > maintained that for each file stores a list of subscribers it has
//! > been delivered to. Based on the state of these two databases Bistro
//! > feed manager can always compute the content of subscriber's delivery
//! > queues — a list of files that have not been delivered to a
//! > particular subscriber."
//!
//! Implementation: a single-writer, CRC-framed, segmented write-ahead log
//! ([`wal`]) over a `bistro-vfs` [`bistro_vfs::FileStore`], with the
//! tables maintained as in-memory indexes rebuilt on recovery
//! ([`store::ReceiptStore`]). Snapshots bound recovery time and let old
//! segments be reclaimed. Retention windows expire old files (§4.2), and
//! expired records can be shipped to an [`archive::Archiver`] together
//! with the payloads and an undo/redo log.

pub mod archive;
pub mod records;
pub mod store;
pub mod wal;

pub use archive::Archiver;
pub use records::{ArrivalTemplate, FileRecord, Record};
pub use store::{DeliveryMark, GroupCommitStats, ReceiptError, ReceiptStore, RecoveryInfo};
pub use wal::{GroupAppendStats, Wal, WalError};
