//! The receipt store: arrival/delivery tables over the WAL.
//!
//! All mutations are logged to the WAL *before* the in-memory indexes are
//! updated (write-ahead), so any state observable through queries is
//! durable. Recovery = load snapshot (if present) + replay WAL; every
//! record application is idempotent, so a crash between snapshotting and
//! pruning is harmless.

use crate::records::{ArrivalTemplate, FileRecord, Record};
use crate::wal::{Wal, WalError};
use bistro_base::checksum::crc32;
use bistro_base::sync::Mutex;
use bistro_base::{ByteReader, ByteWriter, FileId, IdGen, TimePoint};
use bistro_vfs::{FileStore, VfsError};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Errors from receipt-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiptError {
    /// Underlying WAL / filesystem error.
    Wal(WalError),
    /// Underlying filesystem error.
    Vfs(VfsError),
    /// Snapshot file is corrupt.
    CorruptSnapshot(String),
    /// Unknown file id.
    UnknownFile(FileId),
}

impl fmt::Display for ReceiptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReceiptError::Wal(e) => write!(f, "{e}"),
            ReceiptError::Vfs(e) => write!(f, "{e}"),
            ReceiptError::CorruptSnapshot(m) => write!(f, "corrupt snapshot: {m}"),
            ReceiptError::UnknownFile(id) => write!(f, "unknown file {id}"),
        }
    }
}

impl std::error::Error for ReceiptError {}

impl From<WalError> for ReceiptError {
    fn from(e: WalError) -> Self {
        ReceiptError::Wal(e)
    }
}

impl From<VfsError> for ReceiptError {
    fn from(e: VfsError) -> Self {
        ReceiptError::Vfs(e)
    }
}

#[derive(Default)]
struct Tables {
    /// Live (non-expired) files by id.
    files: BTreeMap<u64, FileRecord>,
    /// feed name → live file ids.
    by_feed: HashMap<String, BTreeSet<u64>>,
    /// file id → subscribers it has been delivered to.
    delivered: HashMap<u64, BTreeSet<String>>,
    /// file id → group name → (member ack bitmap, high-watermark).
    /// Shared-delivery-tree coverage (§3 delivery network): one compact
    /// mark per (file, group) instead of one receipt per member. BTreeMap
    /// so snapshots serialize the marks in a deterministic order.
    group_marks: BTreeMap<u64, BTreeMap<String, (Vec<u8>, u64)>>,
    /// Count of expired files (for monitoring).
    expired_count: u64,
    /// Count of delivery receipts (including to-expired files).
    delivery_count: u64,
    /// Highest file id seen in any applied `Arrival` (snapshot or WAL);
    /// a durable lower bound for id recovery.
    max_arrival_id: u64,
}

impl Tables {
    fn apply(&mut self, rec: Record) {
        match rec {
            Record::Arrival(f) => {
                self.max_arrival_id = self.max_arrival_id.max(f.id.raw());
                for feed in &f.feeds {
                    // get_mut first: the feed's set almost always exists
                    // already, and `entry` would clone the name every time
                    match self.by_feed.get_mut(feed) {
                        Some(set) => {
                            set.insert(f.id.raw());
                        }
                        None => {
                            self.by_feed
                                .entry(feed.clone())
                                .or_default()
                                .insert(f.id.raw());
                        }
                    }
                }
                self.files.insert(f.id.raw(), f);
            }
            Record::Delivery {
                file, subscriber, ..
            } => {
                let set = self.delivered.entry(file.raw()).or_default();
                if set.insert(subscriber) {
                    self.delivery_count += 1;
                }
            }
            Record::Expire { file, .. } => {
                if let Some(f) = self.files.remove(&file.raw()) {
                    for feed in &f.feeds {
                        if let Some(set) = self.by_feed.get_mut(feed) {
                            set.remove(&file.raw());
                        }
                    }
                    self.delivered.remove(&file.raw());
                    self.group_marks.remove(&file.raw());
                    self.expired_count += 1;
                }
            }
            Record::GroupMark {
                file,
                group,
                bits,
                watermark,
            } => {
                // Marks only make sense against a live arrival; a mark
                // replayed after the file expired is stale and dropped
                // (Expire removed the whole entry).
                if self.files.contains_key(&file.raw()) {
                    let slot = self
                        .group_marks
                        .entry(file.raw())
                        .or_default()
                        .entry(group)
                        .or_insert_with(|| (Vec::new(), 0));
                    // OR-merge: coverage only grows, so replaying any
                    // prefix or reordering of marks is idempotent.
                    if slot.0.len() < bits.len() {
                        slot.0.resize(bits.len(), 0);
                    }
                    for (i, b) in bits.iter().enumerate() {
                        slot.0[i] |= b;
                    }
                    slot.1 = slot.1.max(watermark);
                }
            }
            Record::Reclassify { file, feeds } => {
                if let Some(f) = self.files.get_mut(&file.raw()) {
                    for feed in &f.feeds {
                        if let Some(set) = self.by_feed.get_mut(feed) {
                            set.remove(&file.raw());
                        }
                    }
                    f.feeds = feeds;
                    for feed in &f.feeds {
                        self.by_feed
                            .entry(feed.clone())
                            .or_default()
                            .insert(file.raw());
                    }
                }
            }
        }
    }
}

/// What [`ReceiptStore::open`] found while recovering. Published as
/// `recovery.*` telemetry counters by [`ReceiptStore::set_telemetry`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryInfo {
    /// A snapshot was present and loaded.
    pub snapshot_loaded: bool,
    /// Records applied from the snapshot body.
    pub snapshot_records: u64,
    /// Records replayed from the WAL.
    pub wal_records: u64,
    /// A leftover `snapshot.tmp` from a torn snapshot write was discarded.
    pub tmp_discarded: bool,
}

/// The transactional receipt database (paper §4.2).
pub struct ReceiptStore {
    store: Arc<dyn FileStore>,
    dir: String,
    inner: Mutex<Inner>,
    ids: IdGen,
    recovery: RecoveryInfo,
}

struct Inner {
    wal: Wal,
    tables: Tables,
    /// Group-commit buffering between [`ReceiptStore::begin_group`] and
    /// [`ReceiptStore::end_group`]; `None` = per-record durability.
    group: Option<Group>,
    /// Every delivery receipt in WAL order, positioned by its WAL
    /// sequence — the backfill cursor a failover coordinator pages
    /// through ([`ReceiptStore::deliveries_since`]). Receipts recovered
    /// from a snapshot (whose covering segments were pruned) carry seq 0.
    delivery_log: Vec<DeliveryMark>,
}

/// One delivery receipt positioned by its receipt-WAL sequence number.
///
/// Carries the file *name* rather than its [`FileId`]: ids are local to
/// one store, names are the cross-server join key a standby uses to mark
/// the failed home's deliveries against its own replicated arrivals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryMark {
    /// WAL sequence of the delivery record (0 = recovered from a
    /// snapshot whose WAL coverage was pruned).
    pub seq: u64,
    /// The delivered file's id in *this* store.
    pub file: FileId,
    /// The delivered file's original deposited name.
    pub file_name: String,
    /// Who it was delivered to.
    pub subscriber: String,
}

/// In-flight group-commit state.
struct Group {
    /// Flush whenever this many records are pending.
    max: usize,
    /// Encoded record payloads awaiting their batched WAL append.
    pending: Vec<Vec<u8>>,
    stats: GroupCommitStats,
}

/// How a [`ReceiptStore::begin_group`] … [`ReceiptStore::end_group`]
/// window was committed, for telemetry. None of this feeds back into the
/// record stream: the WAL bytes are identical for every group size.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Records logged inside the group window.
    pub records: u64,
    /// Physical store appends issued (≤ flushes + rotations).
    pub physical_appends: u64,
    /// Batched flushes performed.
    pub flushes: u64,
    /// Records per flush, in flush order (the `wal.group_size` samples).
    pub flush_sizes: Vec<u64>,
}

const SNAPSHOT_MAGIC: &[u8; 4] = b"BSNP";
/// v2 widens `expired_count` to u64 and adds the id high-water mark.
/// v1 (`[magic 4][ver 1][crc 4][expired u32][body]`) is still readable.
const SNAPSHOT_VERSION: u8 = 2;
const V1_HEADER: usize = 13;
const V2_HEADER: usize = 25;

impl ReceiptStore {
    /// Open (or create) a receipt store rooted at `dir` within `store`.
    /// Performs crash recovery: snapshot load + WAL replay.
    pub fn open(store: Arc<dyn FileStore>, dir: &str) -> Result<ReceiptStore, ReceiptError> {
        store.create_dir_all(dir)?;
        let mut tables = Tables::default();
        let mut recovery = RecoveryInfo::default();

        // A crash mid-snapshot can only tear the temp file: the write of
        // `snapshot.bin` itself is an atomic replace. Discard the debris.
        let tmp_path = format!("{dir}/snapshot.tmp");
        if store.exists(&tmp_path) {
            store.remove(&tmp_path)?;
            recovery.tmp_discarded = true;
        }

        let snap_path = format!("{dir}/snapshot.bin");
        let mut snapshot_high_water = None;
        if store.exists(&snap_path) {
            let data = store.read(&snap_path)?;
            let (hw, n) = Self::load_snapshot(&data, &mut tables)?;
            snapshot_high_water = hw;
            recovery.snapshot_loaded = true;
            recovery.snapshot_records = n;
        }

        // Snapshot-covered deliveries pre-date the surviving WAL: they
        // enter the backfill log at seq 0, in (file id, subscriber)
        // order, so a cursor of 0 always replays the full delivered set.
        let mut delivery_log: Vec<DeliveryMark> = Vec::new();
        {
            let mut ids: Vec<u64> = tables.delivered.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                let Some(name) = tables.files.get(&id).map(|f| f.name.clone()) else {
                    continue;
                };
                for sub in &tables.delivered[&id] {
                    delivery_log.push(DeliveryMark {
                        seq: 0,
                        file: FileId(id),
                        file_name: name.clone(),
                        subscriber: sub.clone(),
                    });
                }
            }
        }

        let wal_dir = format!("{dir}/wal");
        let mut wal_records = 0u64;
        let wal = Wal::open(store.clone(), &wal_dir, |seq, payload| {
            if let Ok(rec) = Record::decode(payload) {
                wal_records += 1;
                if let Record::Delivery {
                    file,
                    ref subscriber,
                    ..
                } = rec
                {
                    Self::push_mark(&tables, &mut delivery_log, seq, file, subscriber);
                }
                tables.apply(rec);
            }
        })?;
        recovery.wal_records = wal_records;

        // Never reissue an id: resume past the persisted high-water mark
        // (which covers allocations burned by failed appends) and past
        // every arrival actually on record. v1 snapshots carried no
        // high-water, so fall back to the legacy live-max + expired-count
        // heuristic for them.
        let hint = match snapshot_high_water {
            Some(hw) => hw,
            None => {
                let max_live = tables.files.keys().next_back().copied().unwrap_or(0);
                max_live + tables.expired_count
            }
        };
        let ids = IdGen::starting_at(1);
        ids.bump_past(hint.max(tables.max_arrival_id));

        Ok(ReceiptStore {
            store,
            dir: dir.to_string(),
            inner: Mutex::new(Inner {
                wal,
                tables,
                group: None,
                delivery_log,
            }),
            ids,
            recovery,
        })
    }

    /// Apply a snapshot to `tables`; returns the persisted id high-water
    /// mark (v2 only) and the number of records applied.
    fn load_snapshot(data: &[u8], tables: &mut Tables) -> Result<(Option<u64>, u64), ReceiptError> {
        if data.len() < 5 || &data[0..4] != SNAPSHOT_MAGIC {
            return Err(ReceiptError::CorruptSnapshot("bad header".to_string()));
        }
        let (body, crc_expected, high_water) = match data[4] {
            1 => {
                if data.len() < V1_HEADER {
                    return Err(ReceiptError::CorruptSnapshot("short v1 header".to_string()));
                }
                let crc = u32::from_le_bytes(data[5..9].try_into().unwrap());
                let expired = u32::from_le_bytes(data[9..13].try_into().unwrap());
                tables.expired_count = expired as u64;
                (&data[V1_HEADER..], crc, None)
            }
            2 => {
                if data.len() < V2_HEADER {
                    return Err(ReceiptError::CorruptSnapshot("short v2 header".to_string()));
                }
                let crc = u32::from_le_bytes(data[5..9].try_into().unwrap());
                tables.expired_count = u64::from_le_bytes(data[9..17].try_into().unwrap());
                let hw = u64::from_le_bytes(data[17..25].try_into().unwrap());
                (&data[V2_HEADER..], crc, Some(hw))
            }
            v => {
                return Err(ReceiptError::CorruptSnapshot(format!(
                    "unsupported version {v}"
                )));
            }
        };
        if crc32(body) != crc_expected {
            return Err(ReceiptError::CorruptSnapshot(
                "checksum mismatch".to_string(),
            ));
        }
        let mut r = ByteReader::new(body);
        let n = r
            .get_varint()
            .map_err(|e| ReceiptError::CorruptSnapshot(e.to_string()))?;
        for _ in 0..n {
            let rec_bytes = r
                .get_bytes()
                .map_err(|e| ReceiptError::CorruptSnapshot(e.to_string()))?;
            let rec = Record::decode(rec_bytes)
                .map_err(|e| ReceiptError::CorruptSnapshot(e.to_string()))?;
            tables.apply(rec);
        }
        Ok((high_water, n))
    }

    /// What the last `open` recovered (snapshot/WAL record counts, torn
    /// temp cleanup).
    pub fn recovery_info(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Attach `wal.*` telemetry (append/rotation counters, durable-write
    /// latency histogram timed on `clock`) to the underlying WAL, and
    /// publish what recovery found as `recovery.*` counters.
    pub fn set_telemetry(&self, reg: &bistro_telemetry::Registry, clock: bistro_base::SharedClock) {
        reg.counter("recovery.snapshot_records")
            .add(self.recovery.snapshot_records);
        reg.counter("recovery.wal_records")
            .add(self.recovery.wal_records);
        let torn = reg.counter("recovery.snapshot_tmp_discarded");
        if self.recovery.tmp_discarded {
            torn.inc();
        }
        self.inner.lock().wal.set_telemetry(reg, clock);
    }

    /// Log one encoded record: straight to the WAL normally, or into the
    /// group buffer (flushing at `max`) inside a group-commit window.
    /// Returns the record's WAL sequence; inside a group window the
    /// sequence is the one the buffered record *will* receive at flush
    /// (batch appends assign consecutive sequences and nothing else can
    /// interleave while the window is open).
    fn log_bytes(inner: &mut Inner, bytes: Vec<u8>) -> Result<u64, ReceiptError> {
        let next = inner.wal.next_seq();
        let (seq, flush_now) = match inner.group.as_mut() {
            Some(g) => {
                g.pending.push(bytes);
                g.stats.records += 1;
                (next + g.pending.len() as u64 - 1, g.pending.len() >= g.max)
            }
            None => return Ok(inner.wal.append(&bytes)?),
        };
        if flush_now {
            Self::flush_group(inner)?;
        }
        Ok(seq)
    }

    /// Durably append every buffered group record in one batched WAL
    /// append. No-op outside a group window or with nothing pending.
    fn flush_group(inner: &mut Inner) -> Result<(), ReceiptError> {
        let payloads = match inner.group.as_mut() {
            Some(g) if !g.pending.is_empty() => std::mem::take(&mut g.pending),
            _ => return Ok(()),
        };
        let n = payloads.len() as u64;
        let s = inner.wal.append_batch(&payloads)?;
        if let Some(g) = inner.group.as_mut() {
            g.stats.physical_appends += s.physical_appends;
            g.stats.flushes += 1;
            g.stats.flush_sizes.push(n);
        }
        Ok(())
    }

    /// Enter a group-commit window: subsequent records buffer their WAL
    /// bytes and are appended in batches of at most `max` (one physical
    /// append + fsync per batch instead of per record), until
    /// [`ReceiptStore::end_group`]. Records still apply to the in-memory
    /// tables immediately — queries and delivery-queue computation see
    /// them as usual — so the write-ahead discipline is relaxed *within
    /// the window only*: a crash inside it loses a suffix of whole
    /// records (never a torn one; see [`Wal::append_batch`]), exactly as
    /// if the deposit batch had been cut short. `max` is clamped to ≥ 1;
    /// nested calls are not supported.
    pub fn begin_group(&self, max: usize) {
        let mut inner = self.inner.lock();
        debug_assert!(inner.group.is_none(), "nested begin_group");
        inner.group = Some(Group {
            max: max.max(1),
            pending: Vec::new(),
            stats: GroupCommitStats::default(),
        });
    }

    /// Leave the group-commit window, flushing anything still buffered.
    /// Returns how the window was committed. The window is closed even if
    /// the final flush fails (the error is returned and the store must be
    /// treated as crashed, per the WAL error contract).
    pub fn end_group(&self) -> Result<GroupCommitStats, ReceiptError> {
        let mut inner = self.inner.lock();
        let flushed = Self::flush_group(&mut inner);
        let stats = inner.group.take().map(|g| g.stats).unwrap_or_default();
        flushed.map(|()| stats)
    }

    /// Record a delivery in the backfill log unless it is a duplicate
    /// (the tables dedupe; the log must match them) or the file is
    /// unknown (nothing to name the mark with).
    fn push_mark(
        tables: &Tables,
        log: &mut Vec<DeliveryMark>,
        seq: u64,
        file: FileId,
        subscriber: &str,
    ) {
        let already = tables
            .delivered
            .get(&file.raw())
            .map(|s| s.contains(subscriber))
            .unwrap_or(false);
        if already {
            return;
        }
        let Some(name) = tables.files.get(&file.raw()).map(|f| f.name.clone()) else {
            return;
        };
        log.push(DeliveryMark {
            seq,
            file,
            file_name: name,
            subscriber: subscriber.to_string(),
        });
    }

    fn log_and_apply(&self, rec: Record) -> Result<(), ReceiptError> {
        let bytes = rec.encode();
        let mut inner = self.inner.lock();
        let seq = Self::log_bytes(&mut inner, bytes)?;
        if let Record::Delivery {
            file,
            ref subscriber,
            ..
        } = rec
        {
            let Inner {
                tables,
                delivery_log,
                ..
            } = &mut *inner;
            Self::push_mark(tables, delivery_log, seq, file, subscriber);
        }
        inner.tables.apply(rec);
        Ok(())
    }

    /// [`ReceiptStore::record_arrival`] from a pre-serialized
    /// [`ArrivalTemplate`]: the commit stage only stamps the id and
    /// arrival time, reusing the record bytes the prepare stage encoded.
    /// Byte-identical to the unprepared path.
    pub fn record_arrival_prepared(
        &self,
        template: &ArrivalTemplate,
        arrival: TimePoint,
    ) -> Result<FileId, ReceiptError> {
        let id: FileId = self.ids.next();
        let (bytes, rec) = template.finish(id, arrival);
        let mut inner = self.inner.lock();
        Self::log_bytes(&mut inner, bytes)?;
        inner.tables.apply(Record::Arrival(rec));
        Ok(id)
    }

    /// Record a classified file arrival; returns its new [`FileId`].
    #[allow(clippy::too_many_arguments)]
    pub fn record_arrival(
        &self,
        name: &str,
        staged_path: &str,
        size: u64,
        arrival: TimePoint,
        feed_time: Option<TimePoint>,
        feeds: Vec<String>,
    ) -> Result<FileId, ReceiptError> {
        let id: FileId = self.ids.next();
        let rec = FileRecord {
            id,
            name: name.to_string(),
            staged_path: staged_path.to_string(),
            size,
            arrival,
            feed_time,
            feeds,
        };
        self.log_and_apply(Record::Arrival(rec))?;
        Ok(id)
    }

    /// Record a completed delivery.
    pub fn record_delivery(
        &self,
        file: FileId,
        subscriber: &str,
        at: TimePoint,
    ) -> Result<(), ReceiptError> {
        self.log_and_apply(Record::Delivery {
            file,
            subscriber: subscriber.to_string(),
            at,
        })
    }

    /// Record (or widen) a group delivery mark: the member ack bitmap and
    /// high-watermark for `group`'s shared delivery of `file`. Marks
    /// OR-merge, so logging every coverage change keeps crash recovery
    /// exactly-once: a recovered server resumes the group delivery from
    /// the last durable coverage instead of refanning to every member.
    pub fn record_group_mark(
        &self,
        file: FileId,
        group: &str,
        bits: &[u8],
        watermark: u64,
    ) -> Result<(), ReceiptError> {
        self.log_and_apply(Record::GroupMark {
            file,
            group: group.to_string(),
            bits: bits.to_vec(),
            watermark,
        })
    }

    /// The merged (bitmap, high-watermark) coverage recorded for a group's
    /// delivery of `file`, if any mark has been logged.
    pub fn group_coverage(&self, file: FileId, group: &str) -> Option<(Vec<u8>, u64)> {
        self.inner
            .lock()
            .tables
            .group_marks
            .get(&file.raw())
            .and_then(|g| g.get(group))
            .cloned()
    }

    /// Record a file expiration (caller removes the staged payload).
    pub fn record_expiration(&self, file: FileId, at: TimePoint) -> Result<(), ReceiptError> {
        self.log_and_apply(Record::Expire { file, at })
    }

    /// Record new feed membership for a file after a definition change.
    pub fn record_reclassification(
        &self,
        file: FileId,
        feeds: Vec<String>,
    ) -> Result<(), ReceiptError> {
        self.log_and_apply(Record::Reclassify { file, feeds })
    }

    /// Fetch a live file record.
    pub fn file(&self, id: FileId) -> Option<FileRecord> {
        self.inner.lock().tables.files.get(&id.raw()).cloned()
    }

    /// Number of live (non-expired) files.
    pub fn live_count(&self) -> usize {
        self.inner.lock().tables.files.len()
    }

    /// Number of expired files.
    pub fn expired_count(&self) -> u64 {
        self.inner.lock().tables.expired_count
    }

    /// Number of delivery receipts recorded.
    pub fn delivery_count(&self) -> u64 {
        self.inner.lock().tables.delivery_count
    }

    /// All live files belonging to a feed, ordered by id (arrival order).
    pub fn files_in_feed(&self, feed: &str) -> Vec<FileRecord> {
        let inner = self.inner.lock();
        inner
            .tables
            .by_feed
            .get(feed)
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| inner.tables.files.get(id).cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True if `file` has been delivered to `subscriber`.
    pub fn is_delivered(&self, file: FileId, subscriber: &str) -> bool {
        self.inner
            .lock()
            .tables
            .delivered
            .get(&file.raw())
            .map(|s| s.contains(subscriber))
            .unwrap_or(false)
    }

    /// The current backfill cursor: the WAL sequence the *next* record
    /// will receive. `deliveries_since(cursor)` returns only receipts
    /// recorded after this point; `deliveries_since(0)` replays all.
    pub fn delivery_cursor(&self) -> u64 {
        self.inner.lock().wal.next_seq()
    }

    /// Delivery receipts whose WAL sequence is ≥ `from_seq`, in WAL
    /// order. This is the query behind cross-server backfill: a failover
    /// coordinator pages through the failed home's delivered set (by file
    /// *name* — ids are store-local) so the new home can mark them
    /// against its replicated arrivals and deliver only the remainder.
    /// Receipts recovered from a snapshot carry seq 0 and are therefore
    /// always included when paging from the start.
    pub fn deliveries_since(&self, from_seq: u64) -> Vec<DeliveryMark> {
        let inner = self.inner.lock();
        let start = inner.delivery_log.partition_point(|m| m.seq < from_seq);
        inner.delivery_log[start..].to_vec()
    }

    /// Look up a live file by its original deposited name (linear scan —
    /// the cross-server backfill join; names are unique per retention
    /// window in practice, the first match in id order wins).
    pub fn file_by_name(&self, name: &str) -> Option<FileRecord> {
        let inner = self.inner.lock();
        inner
            .tables
            .files
            .values()
            .find(|f| f.name == name)
            .cloned()
    }

    /// Compute a subscriber's **delivery queue**: all live files in any of
    /// `feeds` that have not yet been delivered to `subscriber`, in
    /// arrival (id) order. This is the query the paper calls out as the
    /// core of reliable delivery (§4.2) — new subscribers and recovered
    /// subscribers are backfilled from exactly this.
    pub fn pending_for(&self, subscriber: &str, feeds: &[String]) -> Vec<FileRecord> {
        let inner = self.inner.lock();
        let mut ids: BTreeSet<u64> = BTreeSet::new();
        for feed in feeds {
            if let Some(set) = inner.tables.by_feed.get(feed) {
                ids.extend(set.iter().copied());
            }
        }
        ids.into_iter()
            .filter(|id| {
                !inner
                    .tables
                    .delivered
                    .get(id)
                    .map(|s| s.contains(subscriber))
                    .unwrap_or(false)
            })
            .filter_map(|id| inner.tables.files.get(&id).cloned())
            .collect()
    }

    /// All live files, in id (arrival) order.
    pub fn all_live(&self) -> Vec<FileRecord> {
        self.inner.lock().tables.files.values().cloned().collect()
    }

    /// A content digest of the delivery state: live files (name, feeds,
    /// size) and the delivered (file name, subscriber) pairs, plus the
    /// expired-file count. One ingredient of a model-checker state hash,
    /// so it is deliberately *schedule-independent*: file ids, WAL
    /// sequences and timestamps — which vary with the order operations
    /// interleaved in — are excluded, and everything is hashed in sorted
    /// order. Two stores that agree on this digest hold the same files
    /// and owe the same subscribers the same deliveries.
    pub fn state_digest(&self) -> u64 {
        use bistro_base::fnv1a64;
        let inner = self.inner.lock();
        let mut lines: Vec<String> = Vec::with_capacity(inner.tables.files.len() * 2);
        for f in inner.tables.files.values() {
            let mut feeds = f.feeds.clone();
            feeds.sort_unstable();
            lines.push(format!("live\0{}\0{}\0{}", f.name, feeds.join(","), f.size));
        }
        for (id, subs) in &inner.tables.delivered {
            // name the file if still live; expired files keep their id
            // (ids are only compared within one store's digest history)
            let key = inner
                .tables
                .files
                .get(id)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| format!("#{id}"));
            for sub in subs {
                lines.push(format!("delivered\0{key}\0{sub}"));
            }
        }
        for (id, groups) in &inner.tables.group_marks {
            let key = inner
                .tables
                .files
                .get(id)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| format!("#{id}"));
            for (group, (bits, wm)) in groups {
                let mut hex = String::with_capacity(bits.len() * 2);
                for b in bits {
                    hex.push_str(&format!("{b:02x}"));
                }
                lines.push(format!("gmark\0{key}\0{group}\0{hex}\0{wm}"));
            }
        }
        lines.sort_unstable();
        let mut acc = Vec::with_capacity(lines.len() * 32);
        for line in &lines {
            acc.extend_from_slice(line.as_bytes());
            acc.push(b'\n');
        }
        acc.extend_from_slice(&inner.tables.expired_count.to_le_bytes());
        fnv1a64(&acc)
    }

    /// Files whose reference time (feed time when available, else arrival
    /// time) is before `cutoff` — the candidates for retention expiration
    /// (§4.2: "every Bistro server maintains a limited time window of
    /// data and regularly expunges files that fall outside the window").
    pub fn expire_candidates(&self, cutoff: TimePoint) -> Vec<FileRecord> {
        let inner = self.inner.lock();
        inner
            .tables
            .files
            .values()
            .filter(|f| f.feed_time.unwrap_or(f.arrival) < cutoff)
            .cloned()
            .collect()
    }

    /// Write a snapshot of the live state and prune covered WAL segments.
    /// Bounds recovery time; returns the number of segments removed.
    pub fn snapshot(&self) -> Result<usize, ReceiptError> {
        let mut inner = self.inner.lock();
        // a snapshot inside a group window must not cover records that
        // are buffered but not yet durable: flush them first
        Self::flush_group(&mut inner)?;
        let mut body = ByteWriter::new();
        let mut records: Vec<Record> = Vec::new();
        for f in inner.tables.files.values() {
            records.push(Record::Arrival(f.clone()));
        }
        for (file, subs) in &inner.tables.delivered {
            if !inner.tables.files.contains_key(file) {
                continue;
            }
            for sub in subs {
                records.push(Record::Delivery {
                    file: FileId(*file),
                    subscriber: sub.clone(),
                    at: TimePoint::EPOCH, // delivery times are not part of queue computation
                });
            }
        }
        for (file, groups) in &inner.tables.group_marks {
            if !inner.tables.files.contains_key(file) {
                continue;
            }
            for (group, (bits, wm)) in groups {
                records.push(Record::GroupMark {
                    file: FileId(*file),
                    group: group.clone(),
                    bits: bits.clone(),
                    watermark: *wm,
                });
            }
        }
        body.put_varint(records.len() as u64);
        for rec in &records {
            body.put_bytes(&rec.encode());
        }
        let body = body.into_bytes();

        let mut out = Vec::with_capacity(V2_HEADER + body.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.push(SNAPSHOT_VERSION);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&inner.tables.expired_count.to_le_bytes());
        // the id high-water mark: even ids whose arrival append failed
        // must never be reissued after recovery
        out.extend_from_slice(&self.ids.peek().saturating_sub(1).to_le_bytes());
        out.extend_from_slice(&body);

        // Write-then-rename: a crash can tear only `snapshot.tmp`, never
        // `snapshot.bin`, so recovery always sees a whole snapshot (old or
        // new). WAL segments are pruned only after the replace lands —
        // until then they still cover the pre-snapshot history.
        let tmp = format!("{}/snapshot.tmp", self.dir);
        let dst = format!("{}/snapshot.bin", self.dir);
        self.store.write(&tmp, &out)?;
        self.store.replace(&tmp, &dst)?;

        let covered = inner.wal.next_seq().saturating_sub(1);
        inner.wal.rotate()?;
        let removed = inner.wal.prune(covered)?;
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::SimClock;
    use bistro_vfs::MemFs;

    fn open(store: &Arc<MemFs>) -> ReceiptStore {
        ReceiptStore::open(store.clone() as Arc<dyn FileStore>, "receipts").unwrap()
    }

    fn arrive(db: &ReceiptStore, name: &str, feeds: &[&str], t: u64) -> FileId {
        db.record_arrival(
            name,
            &format!("staging/{name}"),
            100,
            TimePoint::from_secs(t),
            Some(TimePoint::from_secs(t)),
            feeds.iter().map(|s| s.to_string()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn arrival_and_queue() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        let f1 = arrive(&db, "a.csv", &["F"], 100);
        let f2 = arrive(&db, "b.csv", &["F"], 200);
        arrive(&db, "c.csv", &["G"], 300);

        let queue = db.pending_for("sub1", &["F".to_string()]);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue[0].id, f1);
        assert_eq!(queue[1].id, f2);

        db.record_delivery(f1, "sub1", TimePoint::from_secs(101))
            .unwrap();
        let queue = db.pending_for("sub1", &["F".to_string()]);
        assert_eq!(queue.len(), 1);
        assert_eq!(queue[0].id, f2);
        // another subscriber's queue is unaffected
        assert_eq!(db.pending_for("sub2", &["F".to_string()]).len(), 2);
    }

    #[test]
    fn recovery_replays_state() {
        let store = MemFs::shared(SimClock::new());
        let (f1, f2);
        {
            let db = open(&store);
            f1 = arrive(&db, "a.csv", &["F"], 100);
            f2 = arrive(&db, "b.csv", &["F", "G"], 200);
            db.record_delivery(f1, "sub1", TimePoint::from_secs(150))
                .unwrap();
        } // "crash"
        let db = open(&store);
        assert_eq!(db.live_count(), 2);
        assert!(db.is_delivered(f1, "sub1"));
        assert!(!db.is_delivered(f2, "sub1"));
        let queue = db.pending_for("sub1", &["F".to_string()]);
        assert_eq!(queue.len(), 1);
        assert_eq!(queue[0].id, f2);
        // ids continue without collision
        let f3 = arrive(&db, "c.csv", &["F"], 300);
        assert!(f3.raw() > f2.raw());
    }

    #[test]
    fn expiration_removes_from_queues() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        let f1 = arrive(&db, "old.csv", &["F"], 100);
        let _f2 = arrive(&db, "new.csv", &["F"], 10_000);

        let victims = db.expire_candidates(TimePoint::from_secs(1_000));
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].id, f1);
        db.record_expiration(f1, TimePoint::from_secs(10_001))
            .unwrap();

        assert_eq!(db.live_count(), 1);
        assert_eq!(db.expired_count(), 1);
        assert_eq!(db.pending_for("s", &["F".to_string()]).len(), 1);
    }

    #[test]
    fn reclassification_moves_feeds() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        let f1 = arrive(&db, "a.csv", &["OLD"], 100);
        db.record_reclassification(f1, vec!["NEW".to_string()])
            .unwrap();
        assert!(db.pending_for("s", &["OLD".to_string()]).is_empty());
        assert_eq!(db.pending_for("s", &["NEW".to_string()]).len(), 1);
        // survives recovery
        drop(db);
        let db = open(&store);
        assert_eq!(db.pending_for("s", &["NEW".to_string()]).len(), 1);
    }

    #[test]
    fn snapshot_bounds_recovery_and_preserves_state() {
        let store = MemFs::shared(SimClock::new());
        {
            let db = open(&store);
            for i in 0..100 {
                let id = arrive(&db, &format!("f{i}.csv"), &["F"], 100 + i);
                if i % 2 == 0 {
                    db.record_delivery(id, "sub1", TimePoint::from_secs(200 + i))
                        .unwrap();
                }
            }
            let f_exp = db.pending_for("never", &["F".to_string()])[0].id;
            db.record_expiration(f_exp, TimePoint::from_secs(9_999))
                .unwrap();
            db.snapshot().unwrap();
            // post-snapshot activity must also survive
            arrive(&db, "post.csv", &["F"], 500);
        }
        let db = open(&store);
        assert_eq!(db.live_count(), 100); // 100 - 1 expired + 1 post
        assert_eq!(db.expired_count(), 1);
        let pending = db.pending_for("sub1", &["F".to_string()]);
        // 99 live originals: 50 delivered (one of which expired ⇒ 49 or 50
        // delivered among live), compute directly instead:
        let expect: usize = 100 - 50 + 1 - 1; // originals - delivered + post - expired(undelivered even id? id1 is odd)
        let _ = expect;
        assert!(!pending.is_empty());
        for f in &pending {
            assert!(!db.is_delivered(f.id, "sub1"));
        }
    }

    #[test]
    fn torn_snapshot_tmp_is_discarded_on_open() {
        let store = MemFs::shared(SimClock::new());
        {
            let db = open(&store);
            for i in 0..5 {
                arrive(&db, &format!("f{i}.csv"), &["F"], 100 + i);
            }
            db.snapshot().unwrap();
            arrive(&db, "post.csv", &["F"], 500);
        }
        // simulate a crash mid-snapshot: a torn temp file is left behind,
        // while snapshot.bin (the previous one) is whole
        store
            .write("receipts/snapshot.tmp", b"BSNP\x02torn-partial-garbage")
            .unwrap();
        let db = open(&store);
        assert_eq!(db.live_count(), 6);
        assert!(db.recovery_info().tmp_discarded);
        assert!(!store.exists("receipts/snapshot.tmp"));
    }

    #[test]
    fn snapshot_is_written_via_atomic_replace() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        arrive(&db, "a.csv", &["F"], 100);
        db.snapshot().unwrap();
        arrive(&db, "b.csv", &["F"], 200);
        db.snapshot().unwrap();
        assert!(!store.exists("receipts/snapshot.tmp"));
        let snap = store.read("receipts/snapshot.bin").unwrap();
        assert_eq!(&snap[0..4], b"BSNP");
        assert_eq!(snap[4], 2);
    }

    #[test]
    fn v1_snapshots_still_readable() {
        let store = MemFs::shared(SimClock::new());
        // hand-craft a v1 snapshot: one live arrival (id 1), 7 expired
        let rec = Record::Arrival(FileRecord {
            id: FileId(1),
            name: "old.csv".to_string(),
            staged_path: "staging/old.csv".to_string(),
            size: 42,
            arrival: TimePoint::from_secs(100),
            feed_time: None,
            feeds: vec!["F".to_string()],
        });
        let mut body = ByteWriter::new();
        body.put_varint(1);
        body.put_bytes(&rec.encode());
        let body = body.into_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(b"BSNP");
        out.push(1u8);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&7u32.to_le_bytes());
        out.extend_from_slice(&body);
        store.create_dir_all("receipts").unwrap();
        store.write("receipts/snapshot.bin", &out).unwrap();

        let db = open(&store);
        assert_eq!(db.live_count(), 1);
        assert_eq!(db.expired_count(), 7);
        // v1 has no high-water: the legacy heuristic (live max + expired)
        // must still apply, so the next id clears the expired range
        let next = arrive(&db, "new.csv", &["F"], 200);
        assert_eq!(next.raw(), 9);
    }

    #[test]
    fn burned_ids_are_never_reissued_after_restarts() {
        // An arrival append can fail after its id was allocated — the id
        // is "burned": never durable, but also never safe to hand out
        // again once *later* ids are on record. The old heuristic
        // (live max + expired count) under-estimated after expirations
        // emptied the live set, re-issuing a durably-used id.
        let store = MemFs::shared(SimClock::new());
        let mut seen = std::collections::BTreeSet::new();
        {
            let db = open(&store);
            let a = arrive(&db, "a.csv", &["F"], 100);
            let b = arrive(&db, "b.csv", &["F"], 110);
            db.record_expiration(a, TimePoint::from_secs(1_000))
                .unwrap();
            db.record_expiration(b, TimePoint::from_secs(1_000))
                .unwrap();
            let c = arrive(&db, "c.csv", &["F"], 10_000);
            let d = arrive(&db, "d.csv", &["F"], 10_001);
            seen.extend([a.raw(), b.raw(), c.raw()]);
            let _ = d; // torn below: never becomes durable
        }
        // tear the tail of the WAL so d's arrival never happened
        let mut seg = store.read("receipts/wal/0000000001.seg").unwrap();
        let n = seg.len();
        seg.truncate(n - 3);
        store.write("receipts/wal/0000000001.seg", &seg).unwrap();

        {
            let db = open(&store);
            assert_eq!(db.live_count(), 1); // only c survived
            let e = arrive(&db, "e.csv", &["F"], 10_002);
            assert!(!seen.contains(&e.raw()), "id {e} reissued");
            seen.insert(e.raw());
            for f in db.all_live() {
                db.record_expiration(f.id, TimePoint::from_secs(20_000))
                    .unwrap();
            }
        }
        {
            let db = open(&store);
            assert_eq!(db.live_count(), 0);
            for name in ["f.csv", "g.csv"] {
                let id = arrive(&db, name, &["F"], 30_000);
                assert!(!seen.contains(&id.raw()), "id {id} reissued for {name}");
                seen.insert(id.raw());
            }
        }
    }

    #[test]
    fn high_water_survives_snapshot_roundtrip() {
        let store = MemFs::shared(SimClock::new());
        {
            let db = open(&store);
            let a = arrive(&db, "a.csv", &["F"], 100);
            db.record_expiration(a, TimePoint::from_secs(500)).unwrap();
            db.snapshot().unwrap(); // live set empty; high-water = 1
        }
        let db = open(&store);
        let b = arrive(&db, "b.csv", &["F"], 600);
        assert!(b.raw() > 1, "expired id 1 reissued");
    }

    #[test]
    fn corrupt_snapshot_detected() {
        let store = MemFs::shared(SimClock::new());
        {
            let db = open(&store);
            arrive(&db, "a.csv", &["F"], 100);
            db.snapshot().unwrap();
        }
        let mut snap = store.read("receipts/snapshot.bin").unwrap();
        let n = snap.len();
        snap[n - 1] ^= 0x01;
        store.write("receipts/snapshot.bin", &snap).unwrap();
        let err = ReceiptStore::open(store.clone() as Arc<dyn FileStore>, "receipts");
        assert!(matches!(err, Err(ReceiptError::CorruptSnapshot(_))));
    }

    #[test]
    fn new_subscriber_sees_full_history() {
        // §4.2: "New feed subscribers can be added at any moment with the
        // expectation that they will be receiving a full available history"
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        for i in 0..10 {
            arrive(&db, &format!("f{i}.csv"), &["F"], 100 + i);
        }
        let queue = db.pending_for("brand_new_subscriber", &["F".to_string()]);
        assert_eq!(queue.len(), 10);
    }

    #[test]
    fn multi_feed_files_dedupe_in_queue() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        arrive(&db, "x.csv", &["A", "B"], 100);
        let queue = db.pending_for("s", &["A".to_string(), "B".to_string()]);
        assert_eq!(queue.len(), 1, "file in two subscribed feeds appears once");
    }

    /// Sorted (path, bytes) view of the receipt WAL directory.
    fn wal_dump(store: &Arc<MemFs>) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = store
            .list_dir("receipts/wal")
            .unwrap()
            .iter()
            .map(|e| {
                let p = format!("receipts/wal/{}", e.name);
                let d = store.read(&p).unwrap();
                (p, d)
            })
            .collect();
        out.sort();
        out
    }

    /// Drive the same mixed workload with and without group commit: the
    /// WAL bytes and recovered state must be identical for every group
    /// size, and batching must actually amortize physical appends.
    #[test]
    fn group_commit_wal_bytes_identical_across_group_sizes() {
        let drive = |group: Option<usize>| -> (Arc<MemFs>, GroupCommitStats) {
            let store = MemFs::shared(SimClock::new());
            let db = open(&store);
            let mut stats = GroupCommitStats::default();
            for round in 0..3u64 {
                if let Some(g) = group {
                    db.begin_group(g);
                }
                let mut ids = Vec::new();
                for i in 0..7u64 {
                    let t = ArrivalTemplate::new(
                        format!("r{round}_f{i}.csv"),
                        format!("staging/r{round}_f{i}.csv"),
                        64 + i,
                        Some(TimePoint::from_secs(100 + i)),
                        vec!["F".to_string()],
                    );
                    ids.push(
                        db.record_arrival_prepared(&t, TimePoint::from_secs(1_000 + round))
                            .unwrap(),
                    );
                }
                // deliveries raised mid-window route through the buffer too
                db.record_delivery(ids[0], "sub1", TimePoint::from_secs(2_000))
                    .unwrap();
                if group.is_some() {
                    let s = db.end_group().unwrap();
                    stats.records += s.records;
                    stats.physical_appends += s.physical_appends;
                    stats.flushes += s.flushes;
                }
            }
            (store, stats)
        };
        let (reference, _) = drive(None);
        let expect = wal_dump(&reference);
        for group in [1usize, 2, 3, 64] {
            let (store, stats) = drive(Some(group));
            assert_eq!(wal_dump(&store), expect, "group={group}");
            assert_eq!(stats.records, 24, "group={group}");
            if group >= 8 {
                assert_eq!(stats.physical_appends, 3, "group={group}");
            }
            // recovery sees the same world
            let db = open(&store);
            assert_eq!(db.live_count(), 21);
            assert!(db.is_delivered(FileId(1), "sub1"));
        }
    }

    #[test]
    fn snapshot_inside_group_window_flushes_pending_first() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        db.begin_group(1024); // never auto-flushes
        arrive(&db, "a.csv", &["F"], 100);
        arrive(&db, "b.csv", &["F"], 200);
        db.snapshot().unwrap();
        let s = db.end_group().unwrap();
        assert_eq!(s.records, 2);
        assert_eq!(s.flushes, 1, "snapshot forced the flush");
        // both records are durable: a reopen (snapshot + pruned WAL) sees them
        drop(db);
        let db = open(&store);
        assert_eq!(db.live_count(), 2);
    }

    #[test]
    fn crash_mid_group_loses_whole_suffix_only() {
        let store = MemFs::shared(SimClock::new());
        {
            let db = open(&store);
            db.begin_group(2); // flush after every 2 records
            for i in 0..5u64 {
                arrive(&db, &format!("f{i}.csv"), &["F"], 100 + i);
            }
            // crash before end_group: the 5th record was never flushed
        }
        let db = open(&store);
        assert_eq!(
            db.live_count(),
            4,
            "buffered suffix lost, flushed prefix kept"
        );
        let live: Vec<u64> = db.all_live().iter().map(|f| f.id.raw()).collect();
        assert_eq!(live, vec![1, 2, 3, 4], "prefix of whole records");
        // id 5 burned but never durable and nothing later on record: it
        // may be reissued, same contract as a failed per-record append
        let next = arrive(&db, "next.csv", &["F"], 999);
        assert!(next.raw() >= 5);
    }

    #[test]
    fn prepared_arrival_equals_plain_arrival_bytes() {
        let a = MemFs::shared(SimClock::new());
        let b = MemFs::shared(SimClock::new());
        let da = open(&a);
        let db = open(&b);
        arrive(&da, "x.csv", &["F", "G"], 123);
        let t = ArrivalTemplate::new(
            "x.csv".to_string(),
            "staging/x.csv".to_string(),
            100,
            Some(TimePoint::from_secs(123)),
            vec!["F".to_string(), "G".to_string()],
        );
        db.record_arrival_prepared(&t, TimePoint::from_secs(123))
            .unwrap();
        assert_eq!(wal_dump(&a), wal_dump(&b));
    }

    #[test]
    fn delivery_cursor_pages_and_survives_recovery() {
        let store = MemFs::shared(SimClock::new());
        let (f1, f2, cursor_mid);
        {
            let db = open(&store);
            f1 = arrive(&db, "a.csv", &["F"], 100);
            f2 = arrive(&db, "b.csv", &["F"], 200);
            db.record_delivery(f1, "s1", TimePoint::from_secs(150))
                .unwrap();
            cursor_mid = db.delivery_cursor();
            db.record_delivery(f2, "s1", TimePoint::from_secs(250))
                .unwrap();
            db.record_delivery(f1, "s2", TimePoint::from_secs(260))
                .unwrap();
            // duplicates never re-enter the log
            db.record_delivery(f1, "s1", TimePoint::from_secs(270))
                .unwrap();

            let all = db.deliveries_since(0);
            assert_eq!(all.len(), 3);
            assert_eq!(all[0].file_name, "a.csv");
            assert_eq!(all[0].subscriber, "s1");
            // marks are ordered by WAL sequence and pageable mid-stream
            let tail = db.deliveries_since(cursor_mid);
            assert_eq!(tail.len(), 2);
            assert_eq!(tail[0].file_name, "b.csv");
            assert_eq!(tail[1].subscriber, "s2");
            assert!(db.deliveries_since(db.delivery_cursor()).is_empty());
        } // crash
        let db = open(&store);
        // WAL replay rebuilds the log with the original sequences
        assert_eq!(db.deliveries_since(0).len(), 3);
        assert_eq!(db.deliveries_since(cursor_mid).len(), 2);
    }

    #[test]
    fn delivery_cursor_covers_snapshot_receipts_at_seq_zero() {
        let store = MemFs::shared(SimClock::new());
        {
            let db = open(&store);
            let f1 = arrive(&db, "a.csv", &["F"], 100);
            db.record_delivery(f1, "s1", TimePoint::from_secs(150))
                .unwrap();
            db.snapshot().unwrap(); // prunes the covering WAL segments
            let f2 = arrive(&db, "b.csv", &["F"], 200);
            db.record_delivery(f2, "s1", TimePoint::from_secs(250))
                .unwrap();
        }
        let db = open(&store);
        let all = db.deliveries_since(0);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].seq, 0, "snapshot-covered receipt enters at seq 0");
        assert_eq!(all[0].file_name, "a.csv");
        assert!(all[1].seq > 0, "post-snapshot receipt keeps its WAL seq");
        assert_eq!(all[1].file_name, "b.csv");
    }

    #[test]
    fn delivery_cursor_group_commit_sequences_match_flushed_wal() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        let f1 = arrive(&db, "a.csv", &["F"], 100);
        let f2 = arrive(&db, "b.csv", &["F"], 200);
        db.begin_group(64);
        db.record_delivery(f1, "s1", TimePoint::from_secs(300))
            .unwrap();
        db.record_delivery(f2, "s1", TimePoint::from_secs(301))
            .unwrap();
        db.end_group().unwrap();
        let predicted: Vec<u64> = db.deliveries_since(1).iter().map(|m| m.seq).collect();
        drop(db);
        // replay assigns the real sequences: they must match the
        // predictions made while the records were still buffered
        let db = open(&store);
        let replayed: Vec<u64> = db.deliveries_since(1).iter().map(|m| m.seq).collect();
        assert_eq!(predicted, replayed);
    }

    #[test]
    fn file_by_name_finds_live_files_only() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        let f1 = arrive(&db, "a.csv", &["F"], 100);
        assert_eq!(db.file_by_name("a.csv").unwrap().id, f1);
        assert!(db.file_by_name("missing.csv").is_none());
        db.record_expiration(f1, TimePoint::from_secs(500)).unwrap();
        assert!(db.file_by_name("a.csv").is_none());
    }

    #[test]
    fn delivery_idempotent() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        let f = arrive(&db, "a.csv", &["F"], 100);
        db.record_delivery(f, "s", TimePoint::from_secs(1)).unwrap();
        db.record_delivery(f, "s", TimePoint::from_secs(2)).unwrap();
        assert_eq!(db.delivery_count(), 1);
    }

    #[test]
    fn group_marks_merge_idempotently() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        let f = arrive(&db, "a.csv", &["F"], 100);
        assert!(db.group_coverage(f, "G").is_none());
        db.record_group_mark(f, "G", &[0b0000_0101], 1).unwrap();
        assert_eq!(db.group_coverage(f, "G"), Some((vec![0b0000_0101], 1)));
        // widening mark ORs in; watermark is a max
        db.record_group_mark(f, "G", &[0b0000_0010, 0x01], 3)
            .unwrap();
        assert_eq!(
            db.group_coverage(f, "G"),
            Some((vec![0b0000_0111, 0x01], 3))
        );
        // replaying an old (narrower) mark changes nothing
        db.record_group_mark(f, "G", &[0b0000_0101], 1).unwrap();
        assert_eq!(
            db.group_coverage(f, "G"),
            Some((vec![0b0000_0111, 0x01], 3))
        );
        // per-group isolation
        db.record_group_mark(f, "H", &[0x01], 1).unwrap();
        assert_eq!(db.group_coverage(f, "H"), Some((vec![0x01], 1)));
        assert_eq!(
            db.group_coverage(f, "G"),
            Some((vec![0b0000_0111, 0x01], 3))
        );
        // marks against an unknown file are dropped, not indexed
        db.record_group_mark(FileId(999), "G", &[0xFF], 8).unwrap();
        assert!(db.group_coverage(FileId(999), "G").is_none());
    }

    #[test]
    fn group_marks_survive_replay_and_snapshot() {
        let store = MemFs::shared(SimClock::new());
        let (f1, f2);
        {
            let db = open(&store);
            f1 = arrive(&db, "a.csv", &["F"], 100);
            f2 = arrive(&db, "b.csv", &["F"], 200);
            db.record_group_mark(f1, "G", &[0b0000_1111], 4).unwrap();
            db.record_group_mark(f2, "G", &[0x01], 1).unwrap();
        } // crash: WAL replay
        {
            let db = open(&store);
            assert_eq!(db.group_coverage(f1, "G"), Some((vec![0b0000_1111], 4)));
            assert_eq!(db.group_coverage(f2, "G"), Some((vec![0x01], 1)));
            db.record_group_mark(f1, "G", &[0b0011_0000], 6).unwrap();
            db.snapshot().unwrap(); // marks must round-trip the snapshot
            db.record_expiration(f2, TimePoint::from_secs(900)).unwrap();
        }
        let db = open(&store);
        assert_eq!(db.group_coverage(f1, "G"), Some((vec![0b0011_1111], 6)));
        assert!(
            db.group_coverage(f2, "G").is_none(),
            "expiration drops the file's group marks"
        );
    }

    #[test]
    fn group_marks_change_state_digest() {
        let store = MemFs::shared(SimClock::new());
        let db = open(&store);
        let f = arrive(&db, "a.csv", &["F"], 100);
        let before = db.state_digest();
        db.record_group_mark(f, "G", &[0x03], 2).unwrap();
        let after = db.state_digest();
        assert_ne!(before, after, "coverage is part of the recovery state");
        // merging in an already-covered mark leaves the digest fixed
        db.record_group_mark(f, "G", &[0x01], 1).unwrap();
        assert_eq!(db.state_digest(), after);
    }
}
