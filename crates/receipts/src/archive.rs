//! The archiver (paper §4.2).
//!
//! "The Bistro feed manager implements an archival mechanism by
//! maintaining a set of special archiver nodes that are responsible for
//! storing long-term feed history and optionally undo/redo logs of
//! delivery receipt database on tertiary storage."
//!
//! An [`Archiver`] owns a second [`FileStore`] (the "tertiary storage").
//! When the server expires a file from its retention window, the archiver
//! receives the payload plus the file's receipt record, appending the
//! record to an append-only redo log. The archive can later be queried
//! for historical files (long-term analysis subscribers) and can rebuild
//! receipt history after a catastrophic primary-storage loss.

use crate::records::{FileRecord, Record};
use bistro_base::checksum::crc32;
use bistro_base::TimePoint;
use bistro_vfs::{FileStore, VfsError};
use std::sync::Arc;

/// An archiver node over tertiary storage.
pub struct Archiver {
    store: Arc<dyn FileStore>,
    data_dir: String,
    log_path: String,
}

impl Archiver {
    /// Create an archiver rooted at `dir` within `store`.
    pub fn new(store: Arc<dyn FileStore>, dir: &str) -> Result<Archiver, VfsError> {
        store.create_dir_all(&format!("{dir}/data"))?;
        Ok(Archiver {
            data_dir: format!("{dir}/data"),
            log_path: format!("{dir}/receipts.log"),
            store,
        })
    }

    /// Archive an expired file: store the payload and log the receipt.
    pub fn archive_file(
        &self,
        record: &FileRecord,
        payload: &[u8],
        expired_at: TimePoint,
    ) -> Result<(), VfsError> {
        let dest = format!("{}/{}", self.data_dir, record.staged_path);
        self.store.write(&dest, payload)?;
        self.log(&Record::Arrival(record.clone()))?;
        self.log(&Record::Expire {
            file: record.id,
            at: expired_at,
        })?;
        Ok(())
    }

    /// Append an arbitrary receipt record to the redo log (used to ship
    /// delivery receipts for disaster recovery).
    pub fn log(&self, rec: &Record) -> Result<(), VfsError> {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.store.append(&self.log_path, &frame)
    }

    /// Read back an archived payload by its original staged path.
    pub fn fetch(&self, staged_path: &str) -> Result<Vec<u8>, VfsError> {
        self.store.read(&format!("{}/{staged_path}", self.data_dir))
    }

    /// Replay the redo log, returning all intact records in order.
    pub fn replay(&self) -> Result<Vec<Record>, VfsError> {
        let mut out = Vec::new();
        if !self.store.exists(&self.log_path) {
            return Ok(out);
        }
        let data = self.store.read(&self.log_path)?;
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let end = pos + 8 + len;
            if end > data.len() {
                break;
            }
            let payload = &data[pos + 8..end];
            if crc32(payload) != crc {
                break;
            }
            if let Ok(rec) = Record::decode(payload) {
                out.push(rec);
            }
            pos = end;
        }
        Ok(out)
    }

    /// All archived file records (from the redo log), for historical
    /// backfill of long-term-analysis subscribers. Deduplicated by file
    /// id: a crash between the payload write and the expiration sweep's
    /// receipt can make the server re-archive a file on the next pass,
    /// appending a second redo-log entry for the same file.
    pub fn archived_files(&self) -> Result<Vec<FileRecord>, VfsError> {
        let mut seen = std::collections::BTreeSet::new();
        Ok(self
            .replay()?
            .into_iter()
            .filter_map(|r| match r {
                Record::Arrival(f) if seen.insert(f.id.raw()) => Some(f),
                _ => None,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::{FileId, SimClock};
    use bistro_vfs::MemFs;

    fn record(id: u64, name: &str) -> FileRecord {
        FileRecord {
            id: FileId(id),
            name: name.to_string(),
            staged_path: format!("F/{name}"),
            size: 10,
            arrival: TimePoint::from_secs(100),
            feed_time: Some(TimePoint::from_secs(90)),
            feeds: vec!["F".to_string()],
        }
    }

    #[test]
    fn archive_and_fetch() {
        let store = MemFs::shared(SimClock::new());
        let arch = Archiver::new(store.clone() as Arc<dyn FileStore>, "archive").unwrap();
        let rec = record(1, "a.csv");
        arch.archive_file(&rec, b"payload-bytes", TimePoint::from_secs(1000))
            .unwrap();
        assert_eq!(arch.fetch("F/a.csv").unwrap(), b"payload-bytes");
    }

    #[test]
    fn redo_log_replays_history() {
        let store = MemFs::shared(SimClock::new());
        let arch = Archiver::new(store.clone() as Arc<dyn FileStore>, "archive").unwrap();
        for i in 0..5 {
            arch.archive_file(
                &record(i, &format!("f{i}.csv")),
                b"x",
                TimePoint::from_secs(1000 + i),
            )
            .unwrap();
        }
        arch.log(&Record::Delivery {
            file: FileId(3),
            subscriber: "s".to_string(),
            at: TimePoint::from_secs(500),
        })
        .unwrap();

        let recs = arch.replay().unwrap();
        assert_eq!(recs.len(), 11); // 5 × (arrival + expire) + 1 delivery
        let files = arch.archived_files().unwrap();
        assert_eq!(files.len(), 5);
        assert_eq!(files[0].name, "f0.csv");
    }

    #[test]
    fn re_archived_files_dedupe() {
        // crash-retry: the same file archived twice appears once
        let store = MemFs::shared(SimClock::new());
        let arch = Archiver::new(store.clone() as Arc<dyn FileStore>, "archive").unwrap();
        let rec = record(1, "a.csv");
        arch.archive_file(&rec, b"x", TimePoint::from_secs(1000))
            .unwrap();
        arch.archive_file(&rec, b"x", TimePoint::from_secs(1001))
            .unwrap();
        assert_eq!(arch.archived_files().unwrap().len(), 1);
    }

    #[test]
    fn torn_log_tail_ignored() {
        let store = MemFs::shared(SimClock::new());
        let arch = Archiver::new(store.clone() as Arc<dyn FileStore>, "archive").unwrap();
        arch.archive_file(&record(1, "a.csv"), b"x", TimePoint::from_secs(1))
            .unwrap();
        store.append("archive/receipts.log", &[0x01, 0x02]).unwrap();
        assert_eq!(arch.replay().unwrap().len(), 2);
    }

    #[test]
    fn empty_archive_replays_empty() {
        let store = MemFs::shared(SimClock::new());
        let arch = Archiver::new(store.clone() as Arc<dyn FileStore>, "archive").unwrap();
        assert!(arch.replay().unwrap().is_empty());
        assert!(arch.archived_files().unwrap().is_empty());
    }
}
