//! # bistro-scheduler
//!
//! Feed delivery scheduling (paper §4.3).
//!
//! A Bistro server must deliver files "with well-defined tardiness" under
//! several constrained resources (worker cores, storage bandwidth,
//! per-subscriber network bandwidth), in the presence of offline
//! subscribers accumulating backlogs and of high subscriber
//! heterogeneity.
//!
//! This crate provides:
//!
//! * a deterministic **discrete-event simulator** ([`engine::Engine`])
//!   of the delivery pipeline: worker pool, per-subscriber bandwidth,
//!   a storage cache shared by concurrent deliveries of the same file,
//!   subscriber outages with in-flight abort and retry;
//! * the classic real-time **policies** the paper cites as baselines
//!   ([`queue::PolicyKind`]): FIFO, EDF, prioritized EDF, Rate-Monotonic
//!   and Max-Benefit;
//! * Bistro's **partitioned scheduler**: subscribers are partitioned into
//!   responsiveness classes, each class gets a fixed share of workers and
//!   runs its own (EDF) policy — so a slow or backlogged subscriber can
//!   never starve the responsive ones;
//! * the two **backfill strategies** of §4.3: strict in-order delivery
//!   versus concurrent real-time + backfill;
//! * a locality heuristic: deliveries of the same file are steered
//!   together so the payload is read from storage once.
//!
//! Everything runs on simulated time ([`bistro_base::TimePoint`]); a day
//! of traffic simulates in milliseconds, which is what experiments E6/E7
//! sweep.

pub mod adaptive;
pub mod engine;
pub mod queue;
pub mod report;
pub mod types;

pub use adaptive::{classify_subscribers, observed_throughput};
pub use engine::{Engine, EngineConfig, PartitionSpec};
pub use queue::PolicyKind;
pub use report::{ClassStats, JobOutcome, SimReport};
pub use types::{BackfillMode, JobSpec, SubscriberSpec};
