//! The discrete-event delivery simulator.
//!
//! Models the resources §4.3 identifies as constrained: a pool of worker
//! cores (optionally split into fixed partitions by subscriber class), a
//! storage system whose reads are shared via a cache, and per-subscriber
//! network bandwidth. Subscribers go offline and online per their outage
//! schedule; in-flight transfers to a failing subscriber abort and retry
//! after recovery (§4.2's failure detection + backfill).

use crate::queue::{PolicyKind, ReadyQueue};
use crate::report::{JobOutcome, SimReport};
use crate::types::{BackfillMode, JobSpec, SubscriberSpec};
use bistro_base::{SubscriberId, TimePoint, TimeSpan};
use bistro_telemetry::{Counter, Histogram, SharedRegistry};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A partition of the worker pool.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// Workers dedicated to this partition.
    pub workers: usize,
    /// The scheduling policy inside this partition.
    pub policy: PolicyKind,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker partitions. Subscribers of class `c` are served by
    /// partition `min(c, partitions-1)`. A single entry models a global
    /// (unpartitioned) scheduler.
    pub partitions: Vec<PartitionSpec>,
    /// Storage read bandwidth in bytes/second (cost of a cache miss).
    pub storage_bandwidth: u64,
    /// How many distinct files the storage cache holds.
    pub cache_files: usize,
    /// Locality heuristic slack (prefer in-flight files whose queue key
    /// is within this much of the head); `None` disables it.
    pub locality_slack: Option<TimeSpan>,
    /// Backfill strategy (§4.3).
    pub backfill: BackfillMode,
}

impl EngineConfig {
    /// A global (single-partition) scheduler with `workers` cores running
    /// `policy`.
    pub fn global(workers: usize, policy: PolicyKind) -> EngineConfig {
        EngineConfig {
            partitions: vec![PartitionSpec { workers, policy }],
            storage_bandwidth: 500_000_000,
            cache_files: 256,
            locality_slack: None,
            backfill: BackfillMode::Concurrent,
        }
    }

    /// Bistro's partitioned scheduler: `per_class` workers per class
    /// partition, EDF within each.
    pub fn partitioned(per_class: &[usize]) -> EngineConfig {
        EngineConfig {
            partitions: per_class
                .iter()
                .map(|&workers| PartitionSpec {
                    workers,
                    policy: PolicyKind::Edf,
                })
                .collect(),
            storage_bandwidth: 500_000_000,
            cache_files: 256,
            locality_slack: Some(TimeSpan::from_secs(30)),
            backfill: BackfillMode::Concurrent,
        }
    }
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    SubUp(SubscriberId),
    SubDown(SubscriberId),
    Release(u64),
    Complete(u64),
}

struct InFlight {
    job: JobSpec,
    partition: usize,
    started: TimePoint,
}

struct Partition {
    workers: usize,
    busy: usize,
    rt: ReadyQueue,
    backfill: ReadyQueue,
}

/// The engine's tallies. Registered in a telemetry registry when one is
/// attached, detached otherwise — either way these counters are the only
/// copy; [`SimReport`] is populated by reading them back at the end of
/// the run.
struct EngineMetrics {
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    bytes_delivered: Arc<Counter>,
    registry: Option<SharedRegistry>,
    /// Per-responsiveness-class tardiness histograms, populated lazily
    /// (`sched.tardiness_us.class<N>`), only when a registry is attached.
    tardiness: HashMap<usize, Arc<Histogram>>,
}

impl EngineMetrics {
    fn new(registry: Option<SharedRegistry>) -> EngineMetrics {
        let (cache_hits, cache_misses, bytes_delivered) = match &registry {
            Some(reg) => (
                reg.counter("sched.cache_hits"),
                reg.counter("sched.cache_misses"),
                reg.counter("sched.bytes_delivered"),
            ),
            None => (
                Arc::new(Counter::detached()),
                Arc::new(Counter::detached()),
                Arc::new(Counter::detached()),
            ),
        };
        EngineMetrics {
            cache_hits,
            cache_misses,
            bytes_delivered,
            registry,
            tardiness: HashMap::new(),
        }
    }

    fn record_tardiness(&mut self, class: usize, tardiness: TimeSpan) {
        let Some(reg) = &self.registry else { return };
        let hist = self
            .tardiness
            .entry(class)
            .or_insert_with(|| reg.histogram(&format!("sched.tardiness_us.class{class}")));
        hist.record(tardiness.as_micros());
    }

    fn record_queue_depths(&self, partitions: &[Partition]) {
        let Some(reg) = &self.registry else { return };
        for (pi, part) in partitions.iter().enumerate() {
            reg.gauge(&format!("sched.queue_depth.part{pi}"))
                .set_max((part.rt.len() + part.backfill.len()) as i64);
        }
    }
}

/// The simulator. Construct, add subscribers and jobs, then [`Engine::run`].
pub struct Engine {
    cfg: EngineConfig,
    subs: HashMap<SubscriberId, SubscriberSpec>,
    jobs: BTreeMap<u64, JobSpec>,
    telemetry: Option<SharedRegistry>,
}

impl Engine {
    /// New engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine {
            cfg,
            subs: HashMap::new(),
            jobs: BTreeMap::new(),
            telemetry: None,
        }
    }

    /// Surface the run's tallies in `reg`: `sched.cache_hits` /
    /// `sched.cache_misses` / `sched.bytes_delivered` counters,
    /// per-class tardiness histograms (`sched.tardiness_us.class<N>`)
    /// and per-partition high-water queue depth gauges
    /// (`sched.queue_depth.part<N>`). The simulation itself is unchanged.
    pub fn set_telemetry(&mut self, reg: SharedRegistry) {
        self.telemetry = Some(reg);
    }

    /// Register a subscriber.
    pub fn add_subscriber(&mut self, sub: SubscriberSpec) {
        self.subs.insert(sub.id, sub);
    }

    /// Register a delivery job. Job ids must be unique; id order is
    /// treated as arrival order for in-order backfill.
    pub fn add_job(&mut self, job: JobSpec) {
        self.jobs.insert(job.id, job);
    }

    /// The registered jobs (id → spec), for calibration harnesses.
    pub fn jobs(&self) -> impl Iterator<Item = (&u64, &JobSpec)> {
        self.jobs.iter()
    }

    /// Run the simulation to completion and return the report.
    pub fn run(self) -> SimReport {
        let Engine {
            cfg,
            subs,
            jobs,
            telemetry,
        } = self;
        let mut metrics = EngineMetrics::new(telemetry);
        let locality_us = cfg.locality_slack.map(|s| s.as_micros());

        let mut partitions: Vec<Partition> = cfg
            .partitions
            .iter()
            .map(|p| Partition {
                workers: p.workers.max(1),
                busy: 0,
                rt: ReadyQueue::new(p.policy, locality_us),
                backfill: ReadyQueue::new(p.policy, locality_us),
            })
            .collect();

        // event queue: (time, seq, kind) — seq keeps ordering deterministic
        let mut events: BinaryHeap<Reverse<(TimePoint, u64, EventKind)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push_event = |events: &mut BinaryHeap<_>, seq: &mut u64, at, kind| {
            *seq += 1;
            events.push(Reverse((at, *seq, kind)));
        };

        for sub in subs.values() {
            for &(down, up) in &sub.outages {
                push_event(&mut events, &mut seq, down, EventKind::SubDown(sub.id));
                if up < TimePoint::MAX {
                    // up == MAX means "never recovers": no recovery event
                    push_event(&mut events, &mut seq, up, EventKind::SubUp(sub.id));
                }
            }
        }
        for job in jobs.values() {
            push_event(
                &mut events,
                &mut seq,
                job.release,
                EventKind::Release(job.id),
            );
        }

        // runtime state
        let mut online: HashMap<SubscriberId, bool> = subs
            .keys()
            .map(|&id| (id, subs[&id].online_at(TimePoint::EPOCH)))
            .collect();
        let mut parked_offline: HashMap<SubscriberId, Vec<JobSpec>> = HashMap::new();
        // in-order sequencing state
        let mut seq_pending: HashMap<SubscriberId, BTreeMap<u64, JobSpec>> = HashMap::new();
        let mut seq_busy: HashSet<SubscriberId> = HashSet::new();
        // transfers
        let mut in_flight: HashMap<u64, InFlight> = HashMap::new();
        let mut in_flight_by_sub: HashMap<SubscriberId, Vec<u64>> = HashMap::new();
        let mut in_flight_files: HashMap<u64, usize> = HashMap::new();
        // storage cache (FIFO eviction)
        let mut cache: HashSet<u64> = HashSet::new();
        let mut cache_order: VecDeque<u64> = VecDeque::new();
        // per-job bookkeeping (counter tallies live in `metrics`)
        let mut outcomes: HashMap<u64, JobOutcome> = HashMap::new();
        let mut attempts: HashMap<u64, u32> = HashMap::new();
        let mut makespan = TimePoint::EPOCH;

        // enqueue a runnable job into its partition's queues
        let enqueue = |job: JobSpec,
                       now: TimePoint,
                       partitions: &mut Vec<Partition>,
                       subs: &HashMap<SubscriberId, SubscriberSpec>,
                       cfg: &EngineConfig| {
            let sub = &subs[&job.subscriber];
            let p = sub.class.min(cfg.partitions.len() - 1);
            let now_us = now.as_micros();
            if job.backfill && cfg.backfill == BackfillMode::Concurrent {
                partitions[p].backfill.push(job, now_us);
            } else {
                partitions[p].rt.push(job, now_us);
            }
        };

        // a job became available: route through offline parking and
        // in-order sequencing
        macro_rules! admit {
            ($job:expr, $now:expr) => {{
                let job: JobSpec = $job;
                let now: TimePoint = $now;
                if !online.get(&job.subscriber).copied().unwrap_or(false) {
                    parked_offline.entry(job.subscriber).or_default().push(job);
                } else if cfg.backfill == BackfillMode::InOrder {
                    seq_pending
                        .entry(job.subscriber)
                        .or_default()
                        .insert(job.id, job.clone());
                    if !seq_busy.contains(&job.subscriber) {
                        let sub_id = job.subscriber;
                        if let Some(map) = seq_pending.get_mut(&sub_id) {
                            if let Some((&first, _)) = map.iter().next() {
                                let j = map.remove(&first).unwrap();
                                seq_busy.insert(sub_id);
                                enqueue(j, now, &mut partitions, &subs, &cfg);
                            }
                        }
                    }
                } else {
                    enqueue(job, now, &mut partitions, &subs, &cfg);
                }
            }};
        }

        // dispatch free workers in every partition
        macro_rules! dispatch {
            ($now:expr) => {{
                let now: TimePoint = $now;
                let now_us = now.as_micros();
                let flying: HashSet<u64> = in_flight_files.keys().copied().collect();
                for (pi, part) in partitions.iter_mut().enumerate() {
                    while part.busy < part.workers {
                        let job = match part.rt.pop(&flying, now_us) {
                            Some(j) => Some(j),
                            None => part.backfill.pop(&flying, now_us),
                        };
                        let Some(job) = job else { break };
                        let sub = &subs[&job.subscriber];
                        // storage read: hit if cached or concurrently in flight
                        let read_cost = if cache.contains(&job.file_key)
                            || in_flight_files.contains_key(&job.file_key)
                        {
                            metrics.cache_hits.inc();
                            TimeSpan::ZERO
                        } else {
                            metrics.cache_misses.inc();
                            // insert into cache
                            if cache.len() >= cfg.cache_files.max(1) {
                                if let Some(victim) = cache_order.pop_front() {
                                    cache.remove(&victim);
                                }
                            }
                            cache.insert(job.file_key);
                            cache_order.push_back(job.file_key);
                            TimeSpan::from_micros(
                                job.size.saturating_mul(1_000_000) / cfg.storage_bandwidth.max(1),
                            )
                        };
                        let xfer = TimeSpan::from_micros(
                            job.size.saturating_mul(1_000_000) / sub.bandwidth.max(1),
                        );
                        let service = sub.latency + read_cost + xfer;
                        let finish = now + service;
                        *attempts.entry(job.id).or_insert(0) += 1;
                        *in_flight_files.entry(job.file_key).or_insert(0) += 1;
                        in_flight_by_sub
                            .entry(job.subscriber)
                            .or_default()
                            .push(job.id);
                        part.busy += 1;
                        let id = job.id;
                        in_flight.insert(
                            id,
                            InFlight {
                                job,
                                partition: pi,
                                started: now,
                            },
                        );
                        push_event(&mut events, &mut seq, finish, EventKind::Complete(id));
                    }
                }
            }};
        }

        // Process all events sharing a timestamp before dispatching, so
        // e.g. two releases at the same instant are both visible to the
        // policy when workers are assigned.
        while let Some(Reverse((now, _, kind))) = events.pop() {
            makespan = makespan.max(now);
            let mut batch = vec![kind];
            while let Some(Reverse((t, _, _))) = events.peek() {
                if *t != now {
                    break;
                }
                let Reverse((_, _, k)) = events.pop().unwrap();
                batch.push(k);
            }
            for kind in batch {
                match kind {
                    EventKind::Release(id) => {
                        let job = jobs[&id].clone();
                        admit!(job, now);
                    }
                    EventKind::SubDown(sub_id) => {
                        online.insert(sub_id, false);
                        // abort in-flight transfers to this subscriber
                        if let Some(ids) = in_flight_by_sub.remove(&sub_id) {
                            for jid in ids {
                                if let Some(fl) = in_flight.remove(&jid) {
                                    partitions[fl.partition].busy -= 1;
                                    if let Some(n) = in_flight_files.get_mut(&fl.job.file_key) {
                                        *n -= 1;
                                        if *n == 0 {
                                            in_flight_files.remove(&fl.job.file_key);
                                        }
                                    }
                                    parked_offline.entry(sub_id).or_default().push(fl.job);
                                }
                            }
                        }
                        seq_busy.remove(&sub_id);
                        // park queued jobs for this subscriber
                        for part in partitions.iter_mut() {
                            for j in part.rt.remove_subscriber(sub_id) {
                                parked_offline.entry(sub_id).or_default().push(j);
                            }
                            for j in part.backfill.remove_subscriber(sub_id) {
                                parked_offline.entry(sub_id).or_default().push(j);
                            }
                        }
                        // and any sequencer-pending jobs stay where they are;
                        // move them to parked so recovery re-admits in order
                        if let Some(map) = seq_pending.remove(&sub_id) {
                            parked_offline
                                .entry(sub_id)
                                .or_default()
                                .extend(map.into_values());
                        }
                    }
                    EventKind::SubUp(sub_id) => {
                        online.insert(sub_id, true);
                        if let Some(mut parked) = parked_offline.remove(&sub_id) {
                            parked.sort_by_key(|j| j.id);
                            for job in parked {
                                admit!(job, now);
                            }
                        }
                    }
                    EventKind::Complete(id) => {
                        let Some(fl) = in_flight.remove(&id) else {
                            continue; // aborted transfer's stale completion
                        };
                        partitions[fl.partition].busy -= 1;
                        if let Some(n) = in_flight_files.get_mut(&fl.job.file_key) {
                            *n -= 1;
                            if *n == 0 {
                                in_flight_files.remove(&fl.job.file_key);
                            }
                        }
                        if let Some(v) = in_flight_by_sub.get_mut(&fl.job.subscriber) {
                            v.retain(|&j| j != id);
                        }
                        let sub = &subs[&fl.job.subscriber];
                        let tardiness = now.since(fl.job.deadline);
                        metrics.bytes_delivered.add(fl.job.size);
                        metrics.record_tardiness(sub.class, tardiness);
                        outcomes.insert(
                            id,
                            JobOutcome {
                                job: id,
                                subscriber: fl.job.subscriber,
                                class: sub.class,
                                release: fl.job.release,
                                deadline: fl.job.deadline,
                                completed: Some(now),
                                tardiness: Some(tardiness),
                                attempts: attempts.get(&id).copied().unwrap_or(1),
                                service: Some(now.since(fl.started)),
                                backfill: fl.job.backfill,
                            },
                        );
                        // in-order: admit the subscriber's next job
                        if cfg.backfill == BackfillMode::InOrder {
                            seq_busy.remove(&fl.job.subscriber);
                            if let Some(map) = seq_pending.get_mut(&fl.job.subscriber) {
                                if let Some((&first, _)) = map.iter().next() {
                                    let j = map.remove(&first).unwrap();
                                    seq_busy.insert(fl.job.subscriber);
                                    enqueue(j, now, &mut partitions, &subs, &cfg);
                                }
                            }
                        }
                    }
                }
            }
            dispatch!(now);
            metrics.record_queue_depths(&partitions);
        }

        // jobs that never completed (subscriber stayed offline)
        let mut all_outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
        for (id, job) in &jobs {
            match outcomes.remove(id) {
                Some(o) => all_outcomes.push(o),
                None => {
                    let sub = &subs[&job.subscriber];
                    all_outcomes.push(JobOutcome {
                        job: *id,
                        subscriber: job.subscriber,
                        class: sub.class,
                        release: job.release,
                        deadline: job.deadline,
                        completed: None,
                        tardiness: None,
                        attempts: attempts.get(id).copied().unwrap_or(0),
                        service: None,
                        backfill: job.backfill,
                    });
                }
            }
        }

        SimReport {
            outcomes: all_outcomes,
            makespan,
            cache_hits: metrics.cache_hits.get(),
            cache_misses: metrics.cache_misses.get(),
            bytes_delivered: metrics.bytes_delivered.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1_000_000;

    #[test]
    fn single_job_completes() {
        let mut eng = Engine::new(EngineConfig::global(1, PolicyKind::Edf));
        eng.add_subscriber(SubscriberSpec::simple(1, 10 * MB));
        eng.add_job(JobSpec::new(0, 1, 0, 60, 10 * MB));
        let report = eng.run();
        let o = &report.outcomes[0];
        // 10MB at 10MB/s = 1s transfer (+ tiny read cost)
        let done = o.completed.unwrap();
        assert!(done >= TimePoint::from_secs(1));
        assert!(done < TimePoint::from_secs(2));
        assert_eq!(o.tardiness, Some(TimeSpan::ZERO));
    }

    #[test]
    fn edf_meets_deadlines_fifo_misses() {
        // one worker; a long low-urgency job released just before a short
        // urgent one — FIFO runs the long one first and misses.
        let jobs = |eng: &mut Engine| {
            let mut long = JobSpec::new(0, 1, 0, 1_000, 50 * MB); // 5s service, lax deadline
            long.file_key = 100;
            let mut short = JobSpec::new(1, 1, 1, 3, MB); // needs to finish by t=3
            short.file_key = 200;
            eng.add_subscriber(SubscriberSpec::simple(1, 10 * MB));
            eng.add_job(long);
            eng.add_job(short);
        };
        let mut fifo = Engine::new(EngineConfig::global(1, PolicyKind::Fifo));
        jobs(&mut fifo);
        let fifo_report = fifo.run();
        let mut edf = Engine::new(EngineConfig::global(1, PolicyKind::Edf));
        jobs(&mut edf);
        let edf_report = edf.run();

        // FIFO: short job waits ~5s, missing its 3s deadline
        assert!(fifo_report.outcomes[1].tardiness.unwrap() > TimeSpan::ZERO);
        // EDF: at t=1 the long job is already running (non-preemptive), so
        // the short job still waits — but this scenario releases both at 0?
        // Release long at 0, short at 1: non-preemptive EDF also misses.
        // Re-run with both released at 0 for the EDF win:
        let mut edf2 = Engine::new(EngineConfig::global(1, PolicyKind::Edf));
        let mut long = JobSpec::new(0, 1, 0, 1_000, 50 * MB);
        long.file_key = 100;
        let mut short = JobSpec::new(1, 1, 0, 3, MB);
        short.file_key = 200;
        edf2.add_subscriber(SubscriberSpec::simple(1, 10 * MB));
        edf2.add_job(long);
        edf2.add_job(short);
        let edf2_report = edf2.run();
        assert_eq!(edf2_report.outcomes[1].tardiness, Some(TimeSpan::ZERO));
        let _ = edf_report;
    }

    #[test]
    fn offline_subscriber_gets_backfill_on_recovery() {
        let mut eng = Engine::new(EngineConfig::global(2, PolicyKind::Edf));
        let mut sub = SubscriberSpec::simple(1, 10 * MB);
        sub.outages = vec![(TimePoint::from_secs(0), TimePoint::from_secs(100))];
        eng.add_subscriber(sub);
        for i in 0..5 {
            eng.add_job(JobSpec::new(i, 1, 10 * i, 10 * i + 30, MB));
        }
        let report = eng.run();
        for o in &report.outcomes {
            let done = o.completed.expect("all jobs eventually delivered");
            assert!(
                done >= TimePoint::from_secs(100),
                "delivered only after recovery"
            );
        }
        assert_eq!(report.overall().completed, 5);
    }

    #[test]
    fn mid_transfer_failure_retries() {
        let mut eng = Engine::new(EngineConfig::global(1, PolicyKind::Edf));
        let mut sub = SubscriberSpec::simple(1, MB); // 1 MB/s → 10s transfer
        sub.outages = vec![(TimePoint::from_secs(5), TimePoint::from_secs(50))];
        eng.add_subscriber(sub);
        eng.add_job(JobSpec::new(0, 1, 0, 20, 10 * MB));
        let report = eng.run();
        let o = &report.outcomes[0];
        assert_eq!(o.attempts, 2, "aborted once, retried after recovery");
        assert!(o.completed.unwrap() >= TimePoint::from_secs(60));
    }

    #[test]
    fn never_recovering_subscriber_leaves_unfinished() {
        let mut eng = Engine::new(EngineConfig::global(1, PolicyKind::Edf));
        let mut sub = SubscriberSpec::simple(1, MB);
        sub.outages = vec![(TimePoint::EPOCH, TimePoint::MAX)];
        eng.add_subscriber(sub);
        eng.add_job(JobSpec::new(0, 1, 10, 20, MB));
        let report = eng.run();
        assert_eq!(report.outcomes[0].completed, None);
        assert_eq!(report.overall().completed, 0);
        assert_eq!(report.overall().misses, 1);
    }

    #[test]
    fn partitioned_isolates_slow_subscribers() {
        // class 0: fast subscriber with tight deadlines.
        // class 1: very slow subscriber with a huge backlog.
        // Global EDF: slow jobs with early deadlines occupy all workers.
        // Partitioned: class 0 keeps its own worker and stays on time.
        let build = |cfg: EngineConfig| {
            let mut eng = Engine::new(cfg);
            let mut fast = SubscriberSpec::simple(1, 100 * MB);
            fast.class = 0;
            let mut slow = SubscriberSpec::simple(2, MB / 10); // 0.1 MB/s
            slow.class = 1;
            eng.add_subscriber(fast);
            eng.add_subscriber(slow);
            let mut id = 0;
            // slow subscriber backlog: 20 × 10MB files, early deadlines
            for i in 0..20 {
                let mut j = JobSpec::new(id, 2, 0, 1 + i, 10 * MB);
                j.file_key = 1000 + id;
                eng.add_job(j);
                id += 1;
            }
            // fast subscriber real-time flow: a file every 10s, 30s deadline
            for i in 0..20 {
                let mut j = JobSpec::new(id, 1, 10 * i, 10 * i + 30, 10 * MB);
                j.file_key = 1000 + id;
                eng.add_job(j);
                id += 1;
            }
            eng
        };

        let global = build(EngineConfig::global(2, PolicyKind::Edf)).run();
        let parted = build(EngineConfig::partitioned(&[1, 1])).run();

        let global_fast = &global.per_class()[&0];
        let parted_fast = &parted.per_class()[&0];
        assert!(
            parted_fast.max_tardiness < global_fast.max_tardiness,
            "partitioned fast-class max tardiness {} should beat global {}",
            parted_fast.max_tardiness,
            global_fast.max_tardiness
        );
        assert_eq!(
            parted_fast.misses, 0,
            "partitioned fast class fully on time"
        );
    }

    #[test]
    fn concurrent_backfill_protects_realtime() {
        let build = |mode: BackfillMode| {
            let mut cfg = EngineConfig::global(1, PolicyKind::Edf);
            cfg.backfill = mode;
            let mut eng = Engine::new(cfg);
            eng.add_subscriber(SubscriberSpec::simple(1, 10 * MB));
            let mut id = 0;
            // backlog of 50 × 10MB backfill jobs released at t=0 (1s each)
            for _ in 0..50 {
                let mut j = JobSpec::new(id, 1, 0, 10_000, 10 * MB);
                j.backfill = true;
                j.file_key = id;
                eng.add_job(j);
                id += 1;
            }
            // real-time stream: 1MB file every 5s, 10s deadline
            for i in 0..10 {
                let mut j = JobSpec::new(id, 1, 5 * i, 5 * i + 10, MB);
                j.file_key = id;
                eng.add_job(j);
                id += 1;
            }
            eng
        };
        let concurrent = build(BackfillMode::Concurrent).run();
        let inorder = build(BackfillMode::InOrder).run();

        let c_rt = concurrent.realtime_only();
        let i_rt = inorder.realtime_only();
        assert_eq!(c_rt.misses, 0, "concurrent: real-time stays on time");
        assert!(
            i_rt.misses > 0,
            "in-order: real-time waits behind the backlog"
        );
        // both eventually deliver everything
        assert_eq!(concurrent.overall().completed, 60);
        assert_eq!(inorder.overall().completed, 60);
    }

    #[test]
    fn cache_shares_reads_across_subscribers() {
        // the same file delivered to 8 subscribers: 1 miss + 7 hits
        let mut eng = Engine::new(EngineConfig::global(8, PolicyKind::Edf));
        for s in 1..=8 {
            eng.add_subscriber(SubscriberSpec::simple(s, 10 * MB));
        }
        for (i, s) in (1..=8).enumerate() {
            let mut j = JobSpec::new(i as u64, s, 0, 60, 10 * MB);
            j.file_key = 777;
            eng.add_job(j);
        }
        let report = eng.run();
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_hits, 7);
    }

    #[test]
    fn deterministic_runs() {
        let build = || {
            let mut eng = Engine::new(EngineConfig::partitioned(&[2, 1]));
            for s in 1..=6 {
                let mut sub = SubscriberSpec::simple(s, s * MB);
                sub.class = (s % 2) as usize;
                eng.add_subscriber(sub);
            }
            for i in 0..100u64 {
                let mut j = JobSpec::new(i, 1 + (i % 6), i, i + 30, MB + i * 1000);
                j.file_key = i % 10;
                eng.add_job(j);
            }
            eng.run()
        };
        let a = build();
        let b = build();
        assert_eq!(a.bytes_delivered, b.bytes_delivered);
        assert_eq!(a.makespan, b.makespan);
        let ams: Vec<_> = a.outcomes.iter().map(|o| o.completed).collect();
        let bms: Vec<_> = b.outcomes.iter().map(|o| o.completed).collect();
        assert_eq!(ams, bms);
    }

    #[test]
    fn telemetry_mirrors_report_tallies() {
        use bistro_telemetry::Registry;
        let reg = Registry::new();
        let mut eng = Engine::new(EngineConfig::global(2, PolicyKind::Edf));
        eng.set_telemetry(reg.clone());
        eng.add_subscriber(SubscriberSpec::simple(1, 10 * MB));
        // deadline at release: guaranteed tardy by the service time
        eng.add_job(JobSpec::new(0, 1, 0, 0, 10 * MB));
        eng.add_job(JobSpec::new(1, 1, 0, 100, 3 * MB));
        let report = eng.run();
        assert_eq!(
            reg.counter_value("sched.bytes_delivered"),
            Some(report.bytes_delivered)
        );
        assert_eq!(
            reg.counter_value("sched.cache_misses"),
            Some(report.cache_misses)
        );
        // both completions recorded in the class-0 tardiness histogram,
        // one of them tardy
        let p_max = reg
            .histogram_quantile("sched.tardiness_us.class0", 1.0)
            .unwrap();
        assert!(p_max > 0, "tardy job must show in the histogram");
        assert!(reg.gauge_value("sched.queue_depth.part0").unwrap() >= 0);
        // the report bridge publishes the same totals
        report.publish(&reg);
        assert_eq!(reg.counter_value("sched.jobs"), Some(2));
        assert_eq!(reg.counter_value("sched.completed"), Some(2));
        assert_eq!(reg.counter_value("sched.deadline_misses"), Some(1));
    }

    #[test]
    fn bytes_accounting() {
        let mut eng = Engine::new(EngineConfig::global(2, PolicyKind::Edf));
        eng.add_subscriber(SubscriberSpec::simple(1, 10 * MB));
        eng.add_job(JobSpec::new(0, 1, 0, 100, 3 * MB));
        eng.add_job(JobSpec::new(1, 1, 0, 100, 4 * MB));
        let report = eng.run();
        assert_eq!(report.bytes_delivered, 7 * MB);
    }
}
