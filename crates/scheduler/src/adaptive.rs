//! Dynamic subscriber partitioning (paper §4.3, future work).
//!
//! "Current implementation of Bistro feed manager only supports fixed
//! small number of scheduling groups and does not support dynamic
//! migration of subscriber from one group to another based on observed
//! runtime behavior. Incorporating dynamic subscriber partitioning into
//! Bistro scheduling algorithm is a research direction we are planning
//! to explore in the future."
//!
//! This module implements that direction: [`classify_subscribers`]
//! derives responsiveness classes from *observed* per-subscriber service
//! rates (bytes transferred / service time, from a [`SimReport`]) by
//! splitting the subscribers at the largest gaps in log-throughput.
//! E6's "auto-partitioned" arm calibrates with a short global run, then
//! re-runs partitioned with the derived classes — no hand labelling.

use crate::report::SimReport;
use bistro_base::SubscriberId;
use std::collections::HashMap;

/// Observed per-subscriber throughput from a calibration run:
/// total bytes over total service time, in bytes/second.
pub fn observed_throughput(
    report: &SimReport,
    sizes: &HashMap<u64, u64>,
) -> HashMap<SubscriberId, f64> {
    let mut bytes: HashMap<SubscriberId, u64> = HashMap::new();
    let mut service_us: HashMap<SubscriberId, u64> = HashMap::new();
    for o in &report.outcomes {
        let (Some(service), Some(size)) = (o.service, sizes.get(&o.job)) else {
            continue;
        };
        *bytes.entry(o.subscriber).or_default() += size;
        *service_us.entry(o.subscriber).or_default() += service.as_micros();
    }
    bytes
        .into_iter()
        .filter_map(|(sub, b)| {
            let us = *service_us.get(&sub)?;
            if us == 0 {
                return None;
            }
            Some((sub, b as f64 * 1e6 / us as f64))
        })
        .collect()
}

/// Partition subscribers into `classes` responsiveness classes from
/// observed throughputs. Class 0 is the most responsive. Splitting is
/// done at the `classes - 1` largest gaps between consecutive
/// subscribers in descending log-throughput order — a 1-D clustering
/// that needs no tuning and is scale-free.
pub fn classify_subscribers(
    throughput: &HashMap<SubscriberId, f64>,
    classes: usize,
) -> HashMap<SubscriberId, usize> {
    let classes = classes.max(1);
    let mut ranked: Vec<(SubscriberId, f64)> = throughput
        .iter()
        .map(|(&s, &t)| (s, t.max(f64::MIN_POSITIVE)))
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap()
            .then(a.0.raw().cmp(&b.0.raw()))
    });
    if ranked.is_empty() {
        return HashMap::new();
    }
    if classes == 1 || ranked.len() <= classes {
        // trivial: one class, or one subscriber per class in rank order
        return ranked
            .into_iter()
            .enumerate()
            .map(|(i, (s, _))| (s, i.min(classes - 1)))
            .collect();
    }

    // gaps in log space between consecutive ranked subscribers
    let mut gaps: Vec<(f64, usize)> = ranked
        .windows(2)
        .enumerate()
        .map(|(i, w)| ((w[0].1.ln() - w[1].1.ln()).abs(), i + 1))
        .collect();
    gaps.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let mut cut_points: Vec<usize> = gaps.iter().take(classes - 1).map(|&(_, i)| i).collect();
    cut_points.sort_unstable();

    let mut out = HashMap::new();
    let mut class = 0usize;
    for (i, (sub, _)) in ranked.into_iter().enumerate() {
        while cut_points.get(class).map(|&c| i >= c).unwrap_or(false) {
            class += 1;
        }
        out.insert(sub, class.min(classes - 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(pairs: &[(u64, f64)]) -> HashMap<SubscriberId, f64> {
        pairs.iter().map(|&(s, t)| (SubscriberId(s), t)).collect()
    }

    #[test]
    fn splits_bimodal_population() {
        // 4 fast (~100 MB/s), 2 slow (~0.2 MB/s)
        let t = tp(&[
            (1, 99e6),
            (2, 101e6),
            (3, 100e6),
            (4, 98e6),
            (5, 0.21e6),
            (6, 0.19e6),
        ]);
        let classes = classify_subscribers(&t, 2);
        for s in 1..=4 {
            assert_eq!(classes[&SubscriberId(s)], 0, "sub {s}");
        }
        for s in 5..=6 {
            assert_eq!(classes[&SubscriberId(s)], 1, "sub {s}");
        }
    }

    #[test]
    fn three_way_split() {
        let t = tp(&[
            (1, 100e6),
            (2, 90e6),
            (3, 1e6),
            (4, 1.2e6),
            (5, 1e3),
            (6, 2e3),
        ]);
        let classes = classify_subscribers(&t, 3);
        assert_eq!(classes[&SubscriberId(1)], 0);
        assert_eq!(classes[&SubscriberId(2)], 0);
        assert_eq!(classes[&SubscriberId(3)], 1);
        assert_eq!(classes[&SubscriberId(4)], 1);
        assert_eq!(classes[&SubscriberId(5)], 2);
        assert_eq!(classes[&SubscriberId(6)], 2);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(classify_subscribers(&HashMap::new(), 3).is_empty());
        let one = tp(&[(1, 5e6)]);
        assert_eq!(classify_subscribers(&one, 3)[&SubscriberId(1)], 0);
        // uniform population: everyone lands in some class, none out of range
        let uniform = tp(&[(1, 1e6), (2, 1e6), (3, 1e6), (4, 1e6)]);
        for (_, c) in classify_subscribers(&uniform, 2) {
            assert!(c < 2);
        }
    }

    #[test]
    fn single_class_maps_everyone_to_zero() {
        let t = tp(&[(1, 100e6), (2, 1e3)]);
        let classes = classify_subscribers(&t, 1);
        assert!(classes.values().all(|&c| c == 0));
    }

    #[test]
    fn observed_throughput_from_report() {
        use crate::report::JobOutcome;
        use bistro_base::{TimePoint, TimeSpan};
        let report = SimReport {
            outcomes: vec![JobOutcome {
                job: 0,
                subscriber: SubscriberId(1),
                class: 0,
                release: TimePoint::EPOCH,
                deadline: TimePoint::from_secs(10),
                completed: Some(TimePoint::from_secs(2)),
                tardiness: Some(TimeSpan::ZERO),
                attempts: 1,
                service: Some(TimeSpan::from_secs(2)),
                backfill: false,
            }],
            ..Default::default()
        };
        let mut sizes = HashMap::new();
        sizes.insert(0u64, 10_000_000u64);
        let t = observed_throughput(&report, &sizes);
        let rate = t[&SubscriberId(1)];
        assert!((rate - 5_000_000.0).abs() < 1.0, "{rate}");
    }
}
