//! Ready-queue policies.
//!
//! A [`ReadyQueue`] holds released, eligible jobs and picks the next one
//! to run according to a [`PolicyKind`]. The engine parks jobs whose
//! subscriber is offline or whose in-order predecessor hasn't completed,
//! so queues only ever see runnable work.

use crate::types::JobSpec;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// The scheduling policies the paper discusses (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// First-in-first-out (release order).
    Fifo,
    /// Earliest Deadline First (Jackson's rule).
    Edf,
    /// Prioritized EDF: strict priority classes, EDF within a class.
    EdfP,
    /// Rate-Monotonic: shorter-period feeds first (static priority).
    RateMonotonic,
    /// Max-Benefit: greatest benefit density first — benefit 1 for an
    /// on-time completion decaying linearly with lateness, divided by
    /// service size.
    MaxBenefit,
}

impl PolicyKind {
    /// All policies, for sweeps.
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Fifo,
            PolicyKind::Edf,
            PolicyKind::EdfP,
            PolicyKind::RateMonotonic,
            PolicyKind::MaxBenefit,
        ]
    }

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Edf => "EDF",
            PolicyKind::EdfP => "EDF-P",
            PolicyKind::RateMonotonic => "RM",
            PolicyKind::MaxBenefit => "MaxBenefit",
        }
    }
}

/// Priority key under a policy; smaller = run sooner. The final `u64` is
/// the job id, making every key unique and the order deterministic.
fn key(policy: PolicyKind, job: &JobSpec, now_us: u64) -> (u64, u64, u64) {
    match policy {
        PolicyKind::Fifo => (job.release.as_micros(), 0, job.id),
        PolicyKind::Edf => (job.deadline.as_micros(), 0, job.id),
        PolicyKind::EdfP => (job.priority as u64, job.deadline.as_micros(), job.id),
        PolicyKind::RateMonotonic => (job.period.as_micros(), job.deadline.as_micros(), job.id),
        PolicyKind::MaxBenefit => {
            // benefit density = benefit / size; benefit decays after the
            // deadline. We convert to an ordering key: on-time jobs first
            // by size-scaled slack, late jobs by how late they are.
            let late = now_us.saturating_sub(job.deadline.as_micros());
            let density_inv = job.size.max(1).saturating_mul(1 + late / 1_000_000);
            (density_inv, job.deadline.as_micros(), job.id)
        }
    }
}

/// A ready queue with locality-aware pop.
pub struct ReadyQueue {
    policy: PolicyKind,
    /// Ordered by policy key.
    ordered: BTreeMap<(u64, u64, u64), JobSpec>,
    /// file_key → policy keys of queued jobs for that file.
    by_file: HashMap<u64, BTreeSet<(u64, u64, u64)>>,
    /// Locality: if a queued job's file is already being read/transferred
    /// by another worker, prefer it when its deadline is within this many
    /// microseconds of the queue head's. `None` disables the heuristic.
    locality_slack_us: Option<u64>,
}

impl ReadyQueue {
    /// An empty queue for the given policy.
    pub fn new(policy: PolicyKind, locality_slack_us: Option<u64>) -> ReadyQueue {
        ReadyQueue {
            policy,
            ordered: BTreeMap::new(),
            by_file: HashMap::new(),
            locality_slack_us,
        }
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// True if no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// Insert a runnable job.
    pub fn push(&mut self, job: JobSpec, now_us: u64) {
        let k = key(self.policy, &job, now_us);
        self.by_file.entry(job.file_key).or_default().insert(k);
        self.ordered.insert(k, job);
    }

    fn remove_key(&mut self, k: (u64, u64, u64)) -> Option<JobSpec> {
        let job = self.ordered.remove(&k)?;
        if let Some(set) = self.by_file.get_mut(&job.file_key) {
            set.remove(&k);
            if set.is_empty() {
                self.by_file.remove(&job.file_key);
            }
        }
        Some(job)
    }

    /// Pop the job to run next. `in_flight` is the set of file keys
    /// currently being transferred by busy workers; with the locality
    /// heuristic enabled, a job for an in-flight file is preferred when
    /// its key is close enough to the head's (so the storage read is
    /// shared, §4.3's "delivery of a file to several subscribers within a
    /// group is performed concurrently whenever possible").
    pub fn pop(&mut self, in_flight: &HashSet<u64>, _now_us: u64) -> Option<JobSpec> {
        let head_key = *self.ordered.keys().next()?;
        if let Some(slack) = self.locality_slack_us {
            let mut best: Option<(u64, u64, u64)> = None;
            for fk in in_flight {
                if let Some(set) = self.by_file.get(fk) {
                    if let Some(&k) = set.iter().next() {
                        if k.0 <= head_key.0.saturating_add(slack)
                            && best.map(|b| k < b).unwrap_or(true)
                        {
                            best = Some(k);
                        }
                    }
                }
            }
            if let Some(k) = best {
                return self.remove_key(k);
            }
        }
        self.remove_key(head_key)
    }

    /// Drain every queued job (used when re-parking on subscriber
    /// failure).
    pub fn drain(&mut self) -> Vec<JobSpec> {
        self.by_file.clear();
        std::mem::take(&mut self.ordered).into_values().collect()
    }

    /// Remove all queued jobs for one subscriber (it went offline).
    pub fn remove_subscriber(&mut self, sub: bistro_base::SubscriberId) -> Vec<JobSpec> {
        let keys: Vec<_> = self
            .ordered
            .iter()
            .filter(|(_, j)| j.subscriber == sub)
            .map(|(k, _)| *k)
            .collect();
        keys.into_iter()
            .filter_map(|k| self.remove_key(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::{TimePoint, TimeSpan};

    fn job(id: u64, deadline: u64) -> JobSpec {
        JobSpec::new(id, 1, 0, deadline, 100)
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut q = ReadyQueue::new(PolicyKind::Edf, None);
        q.push(job(1, 300), 0);
        q.push(job(2, 100), 0);
        q.push(job(3, 200), 0);
        let empty = HashSet::new();
        assert_eq!(q.pop(&empty, 0).unwrap().id, 2);
        assert_eq!(q.pop(&empty, 0).unwrap().id, 3);
        assert_eq!(q.pop(&empty, 0).unwrap().id, 1);
        assert!(q.pop(&empty, 0).is_none());
    }

    #[test]
    fn fifo_orders_by_release() {
        let mut q = ReadyQueue::new(PolicyKind::Fifo, None);
        let mut j1 = job(1, 100);
        j1.release = TimePoint::from_secs(50);
        let mut j2 = job(2, 50);
        j2.release = TimePoint::from_secs(10);
        q.push(j1, 0);
        q.push(j2, 0);
        let empty = HashSet::new();
        assert_eq!(q.pop(&empty, 0).unwrap().id, 2);
    }

    #[test]
    fn edfp_respects_priority_classes() {
        let mut q = ReadyQueue::new(PolicyKind::EdfP, None);
        let mut urgent_low_prio = job(1, 10);
        urgent_low_prio.priority = 5;
        let mut relaxed_high_prio = job(2, 1000);
        relaxed_high_prio.priority = 0;
        q.push(urgent_low_prio, 0);
        q.push(relaxed_high_prio, 0);
        let empty = HashSet::new();
        assert_eq!(q.pop(&empty, 0).unwrap().id, 2);
    }

    #[test]
    fn rm_orders_by_period() {
        let mut q = ReadyQueue::new(PolicyKind::RateMonotonic, None);
        let mut slow = job(1, 100);
        slow.period = TimeSpan::from_hours(1);
        let mut fast = job(2, 1000);
        fast.period = TimeSpan::from_mins(1);
        q.push(slow, 0);
        q.push(fast, 0);
        let empty = HashSet::new();
        assert_eq!(q.pop(&empty, 0).unwrap().id, 2);
    }

    #[test]
    fn max_benefit_prefers_small_on_time() {
        let mut q = ReadyQueue::new(PolicyKind::MaxBenefit, None);
        let mut big = job(1, 1_000);
        big.size = 1_000_000;
        let mut small = job(2, 1_000);
        small.size = 100;
        q.push(big, 0);
        q.push(small, 0);
        let empty = HashSet::new();
        assert_eq!(q.pop(&empty, 0).unwrap().id, 2);
    }

    #[test]
    fn locality_prefers_in_flight_file() {
        let mut q = ReadyQueue::new(PolicyKind::Edf, Some(60_000_000));
        let mut j1 = job(1, 100); // earliest deadline, file 10
        j1.file_key = 10;
        let mut j2 = job(2, 130); // slightly later, file 20 (in flight)
        j2.file_key = 20;
        q.push(j1.clone(), 0);
        q.push(j2, 0);
        let mut in_flight = HashSet::new();
        in_flight.insert(20u64);
        assert_eq!(
            q.pop(&in_flight, 0).unwrap().id,
            2,
            "locality wins within slack"
        );
        // without locality the head would have been job 1
        let empty = HashSet::new();
        assert_eq!(q.pop(&empty, 0).unwrap().id, 1);
    }

    #[test]
    fn locality_does_not_violate_slack() {
        let mut q = ReadyQueue::new(PolicyKind::Edf, Some(1_000_000)); // 1s slack
        let mut j1 = job(1, 100);
        j1.file_key = 10;
        let mut j2 = job(2, 10_000); // way past slack
        j2.file_key = 20;
        q.push(j1, 0);
        q.push(j2, 0);
        let mut in_flight = HashSet::new();
        in_flight.insert(20u64);
        assert_eq!(q.pop(&in_flight, 0).unwrap().id, 1);
    }

    #[test]
    fn remove_subscriber_parks_jobs() {
        let mut q = ReadyQueue::new(PolicyKind::Edf, None);
        let mut j1 = job(1, 100);
        j1.subscriber = bistro_base::SubscriberId(7);
        q.push(j1, 0);
        q.push(job(2, 200), 0);
        let parked = q.remove_subscriber(bistro_base::SubscriberId(7));
        assert_eq!(parked.len(), 1);
        assert_eq!(q.len(), 1);
    }
}
