//! Simulation results and aggregation.

use bistro_base::{SubscriberId, TimePoint, TimeSpan};
use std::collections::BTreeMap;

/// The outcome of one delivery job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job id.
    pub job: u64,
    /// Target subscriber.
    pub subscriber: SubscriberId,
    /// The subscriber's responsiveness class.
    pub class: usize,
    /// Release time.
    pub release: TimePoint,
    /// Deadline.
    pub deadline: TimePoint,
    /// Completion time (`None` if never delivered within the simulation).
    pub completed: Option<TimePoint>,
    /// Tardiness (zero if on time; `None` if never completed).
    pub tardiness: Option<TimeSpan>,
    /// Transfer attempts (≥ 1; >1 means outage-aborted retries).
    pub attempts: u32,
    /// Service (transfer) time of the successful attempt.
    pub service: Option<TimeSpan>,
    /// Whether the job was a backfill job.
    pub backfill: bool,
}

/// Aggregated statistics for a set of jobs.
#[derive(Clone, Debug, Default)]
pub struct ClassStats {
    /// Jobs in this aggregate.
    pub count: usize,
    /// Completed jobs.
    pub completed: usize,
    /// Deadline misses among completed jobs.
    pub misses: usize,
    /// Mean tardiness over completed jobs.
    pub mean_tardiness: TimeSpan,
    /// 95th-percentile tardiness over completed jobs.
    pub p95_tardiness: TimeSpan,
    /// Maximum tardiness over completed jobs.
    pub max_tardiness: TimeSpan,
}

impl ClassStats {
    /// Aggregate outcomes (completed jobs contribute tardiness; jobs that
    /// never completed count as misses).
    pub fn from_outcomes<'a>(outcomes: impl Iterator<Item = &'a JobOutcome>) -> ClassStats {
        let mut tards: Vec<u64> = Vec::new();
        let mut stats = ClassStats::default();
        for o in outcomes {
            stats.count += 1;
            match o.tardiness {
                Some(t) => {
                    stats.completed += 1;
                    if t > TimeSpan::ZERO {
                        stats.misses += 1;
                    }
                    tards.push(t.as_micros());
                }
                None => stats.misses += 1,
            }
        }
        if !tards.is_empty() {
            tards.sort_unstable();
            let sum: u64 = tards.iter().sum();
            stats.mean_tardiness = TimeSpan::from_micros(sum / tards.len() as u64);
            let idx = ((tards.len() as f64) * 0.95).ceil() as usize;
            stats.p95_tardiness =
                TimeSpan::from_micros(tards[idx.saturating_sub(1).min(tards.len() - 1)]);
            stats.max_tardiness = TimeSpan::from_micros(*tards.last().unwrap());
        }
        stats
    }

    /// Fraction of jobs that missed their deadline (or never completed).
    pub fn miss_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.misses as f64 / self.count as f64
        }
    }
}

/// Full simulation report.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Per-job outcomes, in job-id order.
    pub outcomes: Vec<JobOutcome>,
    /// Simulated completion time of the last event.
    pub makespan: TimePoint,
    /// Storage reads that hit the cache (shared with a concurrent or
    /// recent transfer of the same file).
    pub cache_hits: u64,
    /// Storage reads that had to go to disk.
    pub cache_misses: u64,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
}

impl SimReport {
    /// Stats over all jobs.
    pub fn overall(&self) -> ClassStats {
        ClassStats::from_outcomes(self.outcomes.iter())
    }

    /// Stats per responsiveness class.
    pub fn per_class(&self) -> BTreeMap<usize, ClassStats> {
        let mut classes: BTreeMap<usize, Vec<&JobOutcome>> = BTreeMap::new();
        for o in &self.outcomes {
            classes.entry(o.class).or_default().push(o);
        }
        classes
            .into_iter()
            .map(|(c, v)| (c, ClassStats::from_outcomes(v.into_iter())))
            .collect()
    }

    /// Stats for real-time (non-backfill) jobs only — the quantity the
    /// E7 backfill experiment compares.
    pub fn realtime_only(&self) -> ClassStats {
        ClassStats::from_outcomes(self.outcomes.iter().filter(|o| !o.backfill))
    }

    /// Stats for backfill jobs only.
    pub fn backfill_only(&self) -> ClassStats {
        ClassStats::from_outcomes(self.outcomes.iter().filter(|o| o.backfill))
    }

    /// Bridge the report's aggregates into a telemetry registry as
    /// `sched.*` counters/gauges (absolute totals for this run), overall
    /// and per responsiveness class.
    pub fn publish(&self, reg: &bistro_telemetry::Registry) {
        let overall = self.overall();
        reg.counter("sched.jobs").set(overall.count as u64);
        reg.counter("sched.completed").set(overall.completed as u64);
        reg.counter("sched.deadline_misses")
            .set(overall.misses as u64);
        reg.gauge("sched.max_tardiness_us")
            .set(overall.max_tardiness.as_micros() as i64);
        for (class, stats) in self.per_class() {
            reg.counter(&format!("sched.completed.class{class}"))
                .set(stats.completed as u64);
            reg.counter(&format!("sched.deadline_misses.class{class}"))
                .set(stats.misses as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(tardiness_s: Option<u64>, class: usize) -> JobOutcome {
        JobOutcome {
            job: 0,
            subscriber: SubscriberId(1),
            class,
            release: TimePoint::EPOCH,
            deadline: TimePoint::from_secs(10),
            completed: tardiness_s.map(|t| TimePoint::from_secs(10 + t)),
            tardiness: tardiness_s.map(TimeSpan::from_secs),
            attempts: 1,
            service: Some(TimeSpan::from_secs(1)),
            backfill: false,
        }
    }

    #[test]
    fn stats_aggregate() {
        let outcomes = [
            outcome(Some(0), 0),
            outcome(Some(10), 0),
            outcome(Some(20), 0),
            outcome(None, 0),
        ];
        let s = ClassStats::from_outcomes(outcomes.iter());
        assert_eq!(s.count, 4);
        assert_eq!(s.completed, 3);
        assert_eq!(s.misses, 3); // two late + one never
        assert_eq!(s.mean_tardiness, TimeSpan::from_secs(10));
        assert_eq!(s.max_tardiness, TimeSpan::from_secs(20));
        assert!((s.miss_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_stats() {
        let s = ClassStats::from_outcomes(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn per_class_split() {
        let report = SimReport {
            outcomes: vec![
                outcome(Some(0), 0),
                outcome(Some(5), 1),
                outcome(Some(7), 1),
            ],
            ..Default::default()
        };
        let per = report.per_class();
        assert_eq!(per[&0].count, 1);
        assert_eq!(per[&1].count, 2);
    }
}
