//! Job and subscriber specifications for the delivery simulator.

use bistro_base::{SubscriberId, TimePoint, TimeSpan};

/// A subscriber as the scheduler sees it.
#[derive(Clone, Debug)]
pub struct SubscriberSpec {
    /// Identity.
    pub id: SubscriberId,
    /// Receive bandwidth in bytes/second — the dominant source of
    /// subscriber heterogeneity (§4.3).
    pub bandwidth: u64,
    /// Fixed per-transfer latency.
    pub latency: TimeSpan,
    /// Responsiveness class, 0 = most responsive. The partitioned
    /// scheduler maps classes to partitions.
    pub class: usize,
    /// Outage intervals `[down, up)` during which transfers to this
    /// subscriber fail. Must be sorted and non-overlapping.
    pub outages: Vec<(TimePoint, TimePoint)>,
}

impl SubscriberSpec {
    /// A subscriber with the given id and bandwidth, no latency, class 0,
    /// always online.
    pub fn simple(id: u64, bandwidth: u64) -> SubscriberSpec {
        SubscriberSpec {
            id: SubscriberId(id),
            bandwidth,
            latency: TimeSpan::ZERO,
            class: 0,
            outages: Vec::new(),
        }
    }

    /// Is the subscriber online at `t`?
    pub fn online_at(&self, t: TimePoint) -> bool {
        !self.outages.iter().any(|&(down, up)| t >= down && t < up)
    }

    /// The next time ≥ `t` at which the subscriber is online.
    pub fn next_online(&self, t: TimePoint) -> TimePoint {
        for &(down, up) in &self.outages {
            if t >= down && t < up {
                return up;
            }
        }
        t
    }
}

/// One delivery task: a file to one subscriber.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Unique job id (caller-assigned, dense from 0 preferred).
    pub id: u64,
    /// Target subscriber.
    pub subscriber: SubscriberId,
    /// When the file becomes available for delivery.
    pub release: TimePoint,
    /// Delivery deadline (release + the subscriber's tardiness target).
    pub deadline: TimePoint,
    /// Payload size in bytes.
    pub size: u64,
    /// The feed's inter-arrival period, used by Rate-Monotonic priority.
    pub period: TimeSpan,
    /// Priority class for EDF-P (lower = more important).
    pub priority: u32,
    /// Identifies the underlying file: jobs delivering the same file to
    /// different subscribers share this key (drives the storage cache and
    /// the locality heuristic).
    pub file_key: u64,
    /// True if this job backfills missed history rather than new data.
    pub backfill: bool,
}

impl JobSpec {
    /// A simple real-time job.
    pub fn new(id: u64, subscriber: u64, release_s: u64, deadline_s: u64, size: u64) -> JobSpec {
        JobSpec {
            id,
            subscriber: SubscriberId(subscriber),
            release: TimePoint::from_secs(release_s),
            deadline: TimePoint::from_secs(deadline_s),
            size,
            period: TimeSpan::from_mins(5),
            priority: 0,
            file_key: id,
            backfill: false,
        }
    }
}

/// How backlogged history is delivered after a subscriber recovers
/// (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackfillMode {
    /// Deliver each subscriber's files strictly in arrival order: real
    /// time data waits behind the backlog.
    InOrder,
    /// Deliver new data in real time concurrently with backfilling missed
    /// history (backfill jobs only run when no real-time job is eligible).
    /// This is what Bistro implements.
    #[default]
    Concurrent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_windows() {
        let mut s = SubscriberSpec::simple(1, 1_000_000);
        s.outages = vec![
            (TimePoint::from_secs(100), TimePoint::from_secs(200)),
            (TimePoint::from_secs(500), TimePoint::from_secs(600)),
        ];
        assert!(s.online_at(TimePoint::from_secs(50)));
        assert!(!s.online_at(TimePoint::from_secs(100)));
        assert!(!s.online_at(TimePoint::from_secs(199)));
        assert!(s.online_at(TimePoint::from_secs(200)));
        assert_eq!(
            s.next_online(TimePoint::from_secs(150)),
            TimePoint::from_secs(200)
        );
        assert_eq!(
            s.next_online(TimePoint::from_secs(300)),
            TimePoint::from_secs(300)
        );
    }
}
