//! Property test: InOrder backfill mode delivers each subscriber's jobs
//! strictly in job-id order (the ordering guarantee that mode trades
//! real-time performance for).

use bistro_base::TimePoint;
use bistro_scheduler::{BackfillMode, Engine, EngineConfig, JobSpec, PolicyKind, SubscriberSpec};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn inorder_mode_preserves_per_subscriber_order(
        jobs in proptest::collection::vec(
            (1u64..=3, 0u64..20, 1_000u64..2_000_000), 1..40),
        outage in proptest::option::of((0u64..100, 1u64..100)),
    ) {
        let mut cfg = EngineConfig::global(3, PolicyKind::Edf);
        cfg.backfill = BackfillMode::InOrder;
        let mut eng = Engine::new(cfg);
        for s in 1..=3 {
            let mut sub = SubscriberSpec::simple(s, 2_000_000);
            if s == 1 {
                if let Some((down, dur)) = outage {
                    sub.outages = vec![(
                        TimePoint::from_secs(down),
                        TimePoint::from_secs(down + dur),
                    )];
                }
            }
            eng.add_subscriber(sub);
        }
        // ids must follow arrival (release) order — that is the engine's
        // documented contract; the server assigns ids on arrival. The
        // generated per-job values are treated as release *gaps*.
        let mut release = 0u64;
        for (i, &(sub, gap, size)) in jobs.iter().enumerate() {
            release += gap;
            // deadlines deliberately scrambled relative to ids so EDF
            // would reorder if allowed to
            let mut j = JobSpec::new(
                i as u64, sub, release, release + 1 + (i as u64 * 37) % 100, size,
            );
            j.file_key = i as u64;
            eng.add_job(j);
        }
        let report = eng.run();

        let mut per_sub: HashMap<u64, Vec<(TimePoint, u64)>> = HashMap::new();
        for o in &report.outcomes {
            let done = o.completed.expect("everything completes");
            per_sub.entry(o.subscriber.raw()).or_default().push((done, o.job));
        }
        for (sub, mut v) in per_sub {
            v.sort();
            let ids: Vec<u64> = v.iter().map(|&(_, id)| id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            prop_assert_eq!(ids, sorted, "subscriber {} out of order", sub);
        }
    }
}
