//! Property test: InOrder backfill mode delivers each subscriber's jobs
//! strictly in job-id order (the ordering guarantee that mode trades
//! real-time performance for).

use bistro_base::prop::{self, Runner};
use bistro_base::rng::Rng;
use bistro_base::{prop_assert_eq, TimePoint};
use bistro_scheduler::{BackfillMode, Engine, EngineConfig, JobSpec, PolicyKind, SubscriberSpec};
use std::collections::HashMap;

/// Runs the InOrder scenario and returns Err describing the first
/// out-of-order subscriber, if any.
fn check_inorder(jobs: &[(u64, u64, u64)], outage: Option<(u64, u64)>) -> Result<(), String> {
    let mut cfg = EngineConfig::global(3, PolicyKind::Edf);
    cfg.backfill = BackfillMode::InOrder;
    let mut eng = Engine::new(cfg);
    for s in 1..=3 {
        let mut sub = SubscriberSpec::simple(s, 2_000_000);
        if s == 1 {
            if let Some((down, dur)) = outage {
                sub.outages = vec![(TimePoint::from_secs(down), TimePoint::from_secs(down + dur))];
            }
        }
        eng.add_subscriber(sub);
    }
    // ids must follow arrival (release) order — that is the engine's
    // documented contract; the server assigns ids on arrival. The
    // generated per-job values are treated as release *gaps*.
    let mut release = 0u64;
    for (i, &(sub, gap, size)) in jobs.iter().enumerate() {
        release += gap;
        // deadlines deliberately scrambled relative to ids so EDF
        // would reorder if allowed to
        let mut j = JobSpec::new(
            i as u64,
            sub,
            release,
            release + 1 + (i as u64 * 37) % 100,
            size,
        );
        j.file_key = i as u64;
        eng.add_job(j);
    }
    let report = eng.run();

    let mut per_sub: HashMap<u64, Vec<(TimePoint, u64)>> = HashMap::new();
    for o in &report.outcomes {
        let done = o.completed.expect("everything completes");
        per_sub
            .entry(o.subscriber.raw())
            .or_default()
            .push((done, o.job));
    }
    for (sub, mut v) in per_sub {
        v.sort();
        let ids: Vec<u64> = v.iter().map(|&(_, id)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ids, sorted, "subscriber {} out of order", sub);
    }
    Ok(())
}

#[test]
fn inorder_mode_preserves_per_subscriber_order() {
    Runner::new("inorder_mode_preserves_per_subscriber_order")
        .cases(32)
        .run(
            |rng| {
                (
                    prop::vec_of(rng, 1..=39, |r| {
                        (
                            r.gen_range(1u64..=3),
                            r.gen_range(0u64..20),
                            r.gen_range(1_000u64..2_000_000),
                        )
                    }),
                    prop::option_of(rng, |r| (r.gen_range(0u64..100), r.gen_range(1u64..100))),
                )
            },
            |(jobs, outage)| {
                // shrunk values can leave the generator's domain
                if jobs.is_empty()
                    || jobs
                        .iter()
                        .any(|&(sub, _, size)| !(1..=3).contains(&sub) || size < 1_000)
                    || outage.is_some_and(|(_, dur)| dur == 0)
                {
                    return Ok(());
                }
                check_inorder(jobs, *outage)
            },
        );
}

/// Regression found by the property test: two jobs for the same
/// subscriber where the first has a later deadline than the second —
/// EDF would swap them; InOrder must not.
#[test]
fn inorder_regression_two_jobs_scrambled_deadlines() {
    let jobs = [(2, 139, 1_000), (2, 0, 1_000)];
    if let Err(e) = check_inorder(&jobs, None) {
        panic!("{e}");
    }
}
