//! Property-based tests for the delivery simulator.

use bistro_base::{TimePoint, TimeSpan};
use bistro_scheduler::{BackfillMode, Engine, EngineConfig, JobSpec, PolicyKind, SubscriberSpec};
use proptest::prelude::*;

const MB: u64 = 1_000_000;

fn jobs_strategy() -> impl Strategy<Value = Vec<(u64, u64, u64, u64)>> {
    // (subscriber 1..=4, release_s, deadline_offset_s, size)
    proptest::collection::vec(
        (1u64..=4, 0u64..500, 1u64..100, 1_000u64..5 * MB),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With every subscriber always online, every job completes, exactly
    /// once, at or after its release, under every policy.
    #[test]
    fn all_jobs_complete_online(jobs in jobs_strategy(), policy_idx in 0usize..5) {
        let policy = PolicyKind::all()[policy_idx];
        let mut eng = Engine::new(EngineConfig::global(2, policy));
        for s in 1..=4 {
            eng.add_subscriber(SubscriberSpec::simple(s, 5 * MB));
        }
        for (i, (sub, rel, dl, size)) in jobs.iter().enumerate() {
            let mut j = JobSpec::new(i as u64, *sub, *rel, rel + dl, *size);
            j.file_key = i as u64 % 7;
            eng.add_job(j);
        }
        let report = eng.run();
        prop_assert_eq!(report.outcomes.len(), jobs.len());
        let mut bytes = 0u64;
        for (o, (_, rel, _, size)) in report.outcomes.iter().zip(jobs.iter()) {
            let done = o.completed.expect("online subscribers always complete");
            prop_assert!(done >= TimePoint::from_secs(*rel));
            bytes += size;
        }
        prop_assert_eq!(report.bytes_delivered, bytes);
        prop_assert!(report.cache_hits + report.cache_misses >= jobs.len() as u64);
    }

    /// With outages, every job to a subscriber that eventually recovers
    /// still completes (the reliability guarantee), under both backfill
    /// modes.
    #[test]
    fn outages_never_lose_jobs(
        jobs in jobs_strategy(),
        down in 0u64..300,
        dur in 1u64..300,
        inorder in any::<bool>(),
    ) {
        let mut cfg = EngineConfig::global(2, PolicyKind::Edf);
        cfg.backfill = if inorder { BackfillMode::InOrder } else { BackfillMode::Concurrent };
        let mut eng = Engine::new(cfg);
        for s in 1..=4 {
            let mut sub = SubscriberSpec::simple(s, 5 * MB);
            if s == 1 {
                sub.outages = vec![(
                    TimePoint::from_secs(down),
                    TimePoint::from_secs(down + dur),
                )];
            }
            eng.add_subscriber(sub);
        }
        for (i, (sub, rel, dl, size)) in jobs.iter().enumerate() {
            eng.add_job(JobSpec::new(i as u64, *sub, *rel, rel + dl, *size));
        }
        let report = eng.run();
        for o in &report.outcomes {
            prop_assert!(o.completed.is_some(), "job {} never delivered", o.job);
        }
    }

    /// Makespan is bounded below by the serial work on the busiest
    /// single-worker partition's subscriber.
    #[test]
    fn makespan_sanity(jobs in jobs_strategy()) {
        let mut eng = Engine::new(EngineConfig::global(4, PolicyKind::Edf));
        for s in 1..=4 {
            eng.add_subscriber(SubscriberSpec::simple(s, 5 * MB));
        }
        let mut total_xfer_us = 0u64;
        for (i, (sub, rel, dl, size)) in jobs.iter().enumerate() {
            eng.add_job(JobSpec::new(i as u64, *sub, *rel, rel + dl, *size));
            total_xfer_us += size * 1_000_000 / (5 * MB);
        }
        let report = eng.run();
        // 4 workers: makespan * 4 >= total transfer time
        let makespan_us = report.makespan.as_micros();
        prop_assert!(makespan_us.saturating_mul(4) + 1_000_000 >= total_xfer_us,
            "makespan {} too small for {} us of work", makespan_us, total_xfer_us);
        let _ = TimeSpan::ZERO;
    }
}
