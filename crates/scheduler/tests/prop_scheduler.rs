//! Property-based tests for the delivery simulator.

use bistro_base::prop::{self, Runner};
use bistro_base::rng::Rng;
use bistro_base::{prop_assert, prop_assert_eq, TimePoint, TimeSpan};
use bistro_scheduler::{BackfillMode, Engine, EngineConfig, JobSpec, PolicyKind, SubscriberSpec};

const MB: u64 = 1_000_000;

// (subscriber 1..=4, release_s, deadline_offset_s, size)
fn jobs_gen(rng: &mut Rng) -> Vec<(u64, u64, u64, u64)> {
    prop::vec_of(rng, 1..=39, |r| {
        (
            r.gen_range(1u64..=4),
            r.gen_range(0u64..500),
            r.gen_range(1u64..100),
            r.gen_range(1_000u64..5 * MB),
        )
    })
}

/// Shrunk tuples can leave the generator's domain; skip those cases.
fn jobs_in_domain(jobs: &[(u64, u64, u64, u64)]) -> bool {
    !jobs.is_empty()
        && jobs
            .iter()
            .all(|&(sub, _, dl, size)| (1..=4).contains(&sub) && dl >= 1 && size >= 1_000)
}

/// With every subscriber always online, every job completes, exactly
/// once, at or after its release, under every policy.
#[test]
fn all_jobs_complete_online() {
    Runner::new("all_jobs_complete_online").cases(32).run(
        |rng| (jobs_gen(rng), rng.gen_range(0usize..5)),
        |(jobs, policy_idx)| {
            if !jobs_in_domain(jobs) || *policy_idx >= 5 {
                return Ok(());
            }
            let policy = PolicyKind::all()[*policy_idx];
            let mut eng = Engine::new(EngineConfig::global(2, policy));
            for s in 1..=4 {
                eng.add_subscriber(SubscriberSpec::simple(s, 5 * MB));
            }
            for (i, (sub, rel, dl, size)) in jobs.iter().enumerate() {
                let mut j = JobSpec::new(i as u64, *sub, *rel, rel + dl, *size);
                j.file_key = i as u64 % 7;
                eng.add_job(j);
            }
            let report = eng.run();
            prop_assert_eq!(report.outcomes.len(), jobs.len());
            let mut bytes = 0u64;
            for (o, (_, rel, _, size)) in report.outcomes.iter().zip(jobs.iter()) {
                let done = o.completed.expect("online subscribers always complete");
                prop_assert!(done >= TimePoint::from_secs(*rel));
                bytes += size;
            }
            prop_assert_eq!(report.bytes_delivered, bytes);
            prop_assert!(report.cache_hits + report.cache_misses >= jobs.len() as u64);
            Ok(())
        },
    );
}

/// With outages, every job to a subscriber that eventually recovers
/// still completes (the reliability guarantee), under both backfill
/// modes.
#[test]
fn outages_never_lose_jobs() {
    Runner::new("outages_never_lose_jobs").cases(32).run(
        |rng| {
            (
                jobs_gen(rng),
                rng.gen_range(0u64..300),
                rng.gen_range(1u64..300),
                rng.gen_bool(0.5),
            )
        },
        |(jobs, down, dur, inorder)| {
            if !jobs_in_domain(jobs) || *dur == 0 {
                return Ok(());
            }
            let mut cfg = EngineConfig::global(2, PolicyKind::Edf);
            cfg.backfill = if *inorder {
                BackfillMode::InOrder
            } else {
                BackfillMode::Concurrent
            };
            let mut eng = Engine::new(cfg);
            for s in 1..=4 {
                let mut sub = SubscriberSpec::simple(s, 5 * MB);
                if s == 1 {
                    sub.outages = vec![(
                        TimePoint::from_secs(*down),
                        TimePoint::from_secs(down + dur),
                    )];
                }
                eng.add_subscriber(sub);
            }
            for (i, (sub, rel, dl, size)) in jobs.iter().enumerate() {
                eng.add_job(JobSpec::new(i as u64, *sub, *rel, rel + dl, *size));
            }
            let report = eng.run();
            for o in &report.outcomes {
                prop_assert!(o.completed.is_some(), "job {} never delivered", o.job);
            }
            Ok(())
        },
    );
}

/// Makespan is bounded below by the serial work on the busiest
/// single-worker partition's subscriber.
#[test]
fn makespan_sanity() {
    Runner::new("makespan_sanity")
        .cases(32)
        .run(jobs_gen, |jobs| {
            if !jobs_in_domain(jobs) {
                return Ok(());
            }
            let mut eng = Engine::new(EngineConfig::global(4, PolicyKind::Edf));
            for s in 1..=4 {
                eng.add_subscriber(SubscriberSpec::simple(s, 5 * MB));
            }
            let mut total_xfer_us = 0u64;
            for (i, (sub, rel, dl, size)) in jobs.iter().enumerate() {
                eng.add_job(JobSpec::new(i as u64, *sub, *rel, rel + dl, *size));
                total_xfer_us += size * 1_000_000 / (5 * MB);
            }
            let report = eng.run();
            // 4 workers: makespan * 4 >= total transfer time
            let makespan_us = report.makespan.as_micros();
            prop_assert!(
                makespan_us.saturating_mul(4) + 1_000_000 >= total_xfer_us,
                "makespan {} too small for {} us of work",
                makespan_us,
                total_xfer_us
            );
            let _ = TimeSpan::ZERO;
            Ok(())
        });
}
