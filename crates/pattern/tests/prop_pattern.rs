//! Property-based tests for the pattern language.

use bistro_base::prop::{self, Runner};
use bistro_base::rng::Rng;
use bistro_base::{prop_assert, prop_assert_eq};
use bistro_pattern::{generalize, levenshtein, pattern_similarity, Pattern};

/// Generator for realistic feed filenames.
fn filename(rng: &mut Rng) -> String {
    let word = prop::string(rng, "A-Za-z", 1..=8);
    let num = prop::string(rng, "0-9", 1..=6);
    let s1 = prop::select(rng, &["_", "-", "."]);
    let s2 = prop::select(rng, &["_", "-", "."]);
    let ext = prop::select(rng, &["csv", "txt", "gz", "log"]);
    format!("{word}{s1}{num}{s2}{ext}")
}

/// Printable ASCII without `/` (paths are out of scope for names).
fn printable_no_slash(rng: &mut Rng, max_len: usize) -> String {
    let pool: Vec<char> = prop::charset(" -~")
        .into_iter()
        .filter(|&c| c != '/')
        .collect();
    let n = rng.gen_range(1..=max_len);
    (0..n).map(|_| *rng.choose(&pool)).collect()
}

#[test]
fn generalized_pattern_matches_origin() {
    Runner::new("generalized_pattern_matches_origin").run(filename, |name| {
        let shape = generalize(name);
        let pat = shape.to_pattern();
        prop_assert!(pat.is_match(name), "pattern {} vs name {}", pat, name);
        Ok(())
    });
}

#[test]
fn generalize_arbitrary_printable() {
    Runner::new("generalize_arbitrary_printable").run(
        |rng| printable_no_slash(rng, 40),
        |name| {
            // any printable ASCII (no slash): generalization must parse and
            // match its origin
            if name.is_empty() || name.contains('/') {
                return Ok(()); // shrunk out of domain
            }
            let shape = generalize(name);
            let pat = shape.to_pattern();
            prop_assert!(pat.is_match(name), "pattern {} vs name {:?}", pat, name);
            Ok(())
        },
    );
}

#[test]
fn self_similarity_is_one() {
    Runner::new("self_similarity_is_one").run(filename, |name| {
        let p = generalize(name).to_pattern();
        let s = pattern_similarity(&p, &p);
        prop_assert!((s - 1.0).abs() < 1e-9);
        Ok(())
    });
}

#[test]
fn similarity_is_symmetric() {
    Runner::new("similarity_is_symmetric").run(
        |rng| (filename(rng), filename(rng)),
        |(a, b)| {
            let pa = generalize(a).to_pattern();
            let pb = generalize(b).to_pattern();
            let ab = pattern_similarity(&pa, &pb);
            let ba = pattern_similarity(&pb, &pa);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&ab));
            Ok(())
        },
    );
}

#[test]
fn levenshtein_triangle_inequality() {
    Runner::new("levenshtein_triangle_inequality").run(
        |rng| {
            (
                prop::string(rng, "a-z", 0..=12),
                prop::string(rng, "a-z", 0..=12),
                prop::string(rng, "a-z", 0..=12),
            )
        },
        |(a, b, c)| {
            let ab = levenshtein(a, b);
            let bc = levenshtein(b, c);
            let ac = levenshtein(a, c);
            prop_assert!(ac <= ab + bc);
            prop_assert_eq!(levenshtein(a, a), 0);
            prop_assert_eq!(levenshtein(a, b), levenshtein(b, a));
            Ok(())
        },
    );
}

#[test]
fn merge_preserves_matching() {
    Runner::new("merge_preserves_matching").run(
        |rng| {
            (
                prop::string(rng, "A-Z", 2..=6),
                rng.gen_range(1u32..9),
                rng.gen_range(1u32..9),
                rng.gen_range(1u32..28),
                rng.gen_range(1u32..28),
            )
        },
        |(base, p1, p2, d1, d2)| {
            if base.is_empty() || !base.chars().all(|c| c.is_ascii_alphabetic()) {
                return Ok(()); // shrunk out of domain
            }
            let n1 = format!("{base}_poller{p1}_201009{d1:02}.gz");
            let n2 = format!("{base}_poller{p2}_201009{d2:02}.gz");
            let mut s = generalize(&n1);
            let s2 = generalize(&n2);
            prop_assert!(s.merge(&s2, false));
            let pat = s.to_pattern();
            prop_assert!(pat.is_match(&n1), "{} vs {}", pat, n1);
            prop_assert!(pat.is_match(&n2), "{} vs {}", pat, n2);
            Ok(())
        },
    );
}

#[test]
fn parse_never_panics() {
    Runner::new("parse_never_panics").run(
        |rng| prop::string(rng, " -~", 0..=30),
        |text| {
            let _ = Pattern::parse(text);
            Ok(())
        },
    );
}

#[test]
fn match_never_panics() {
    Runner::new("match_never_panics").run(
        |rng| {
            (
                prop::string(rng, "A-Za-z_%.*0-9", 1..=20),
                prop::string(rng, " -~", 0..=30),
            )
        },
        |(pat, name)| {
            if let Ok(p) = Pattern::parse(pat) {
                let _ = p.match_str(name);
            }
            Ok(())
        },
    );
}
