//! Property-based tests for the pattern language.

use bistro_pattern::{generalize, levenshtein, pattern_similarity, Pattern};
use proptest::prelude::*;

/// Strategy for realistic feed filenames.
fn filename() -> impl Strategy<Value = String> {
    let word = "[A-Za-z]{1,8}";
    let num = "[0-9]{1,6}";
    let sep = prop::sample::select(vec!["_", "-", "."]);
    (
        word,
        sep.clone(),
        num,
        sep,
        prop::sample::select(vec!["csv", "txt", "gz", "log"]),
    )
        .prop_map(|(w, s1, n, s2, ext)| format!("{w}{s1}{n}{s2}{ext}"))
}

proptest! {
    #[test]
    fn generalized_pattern_matches_origin(name in filename()) {
        let shape = generalize(&name);
        let pat = shape.to_pattern();
        prop_assert!(pat.is_match(&name), "pattern {} vs name {}", pat, name);
    }

    #[test]
    fn generalize_arbitrary_printable(name in "[ -~&&[^/]]{1,40}") {
        // any printable ASCII (no slash): generalization must parse and
        // match its origin
        let shape = generalize(&name);
        let pat = shape.to_pattern();
        prop_assert!(pat.is_match(&name), "pattern {} vs name {:?}", pat, name);
    }

    #[test]
    fn self_similarity_is_one(name in filename()) {
        let p = generalize(&name).to_pattern();
        let s = pattern_similarity(&p, &p);
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similarity_is_symmetric(a in filename(), b in filename()) {
        let pa = generalize(&a).to_pattern();
        let pb = generalize(&b).to_pattern();
        let ab = pattern_similarity(&pa, &pb);
        let ba = pattern_similarity(&pb, &pa);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn levenshtein_triangle_inequality(
        a in "[a-z]{0,12}",
        b in "[a-z]{0,12}",
        c in "[a-z]{0,12}",
    ) {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn merge_preserves_matching(
        base in "[A-Z]{2,6}",
        p1 in 1u32..9, p2 in 1u32..9,
        d1 in 1u32..28, d2 in 1u32..28,
    ) {
        let n1 = format!("{base}_poller{p1}_201009{d1:02}.gz");
        let n2 = format!("{base}_poller{p2}_201009{d2:02}.gz");
        let mut s = generalize(&n1);
        let s2 = generalize(&n2);
        prop_assert!(s.merge(&s2, false));
        let pat = s.to_pattern();
        prop_assert!(pat.is_match(&n1), "{} vs {}", pat, n1);
        prop_assert!(pat.is_match(&n2), "{} vs {}", pat, n2);
    }

    #[test]
    fn parse_never_panics(text in "[ -~]{0,30}") {
        let _ = Pattern::parse(&text);
    }

    #[test]
    fn match_never_panics(pat in "[A-Za-z_%.*0-9]{1,20}", name in "[ -~]{0,30}") {
        if let Ok(p) = Pattern::parse(&pat) {
            let _ = p.match_str(&name);
        }
    }
}
