//! # bistro-pattern
//!
//! The Bistro feed pattern language (paper §3.1) and the filename analysis
//! machinery built on it (paper §5).
//!
//! Bistro defines the files belonging to a feed with a *printf-inspired*
//! pattern rather than a raw regular expression, e.g.
//!
//! ```text
//! MEMORY_poller%i_%Y%m%d.gz
//! ```
//!
//! The pattern both *matches* filenames and *attaches semantics* to the
//! matched fields: `%i` is an integer (here the poller id) and
//! `%Y%m%d` is a timestamp, which downstream drives normalization into
//! daily directories, batching, and retention windows.
//!
//! Crate layout:
//!
//! * [`token`] — character-class tokenizer for raw filenames, the first
//!   stage of the feed analyzer.
//! * [`ast`] / parsing — the pattern language itself ([`Pattern`]).
//! * [`matcher`] — backtracking matcher producing typed [`Captures`].
//! * [`normalize`] — rendering captures into a subscriber's preferred
//!   directory layout ([`Template`]).
//! * [`generalize`](mod@generalize) — inferring a pattern from concrete filenames
//!   (new-feed discovery, §5.1).
//! * [`similarity`] — token-level pattern similarity (false-negative
//!   detection, §5.2) and the byte-edit-distance strawman the paper
//!   rejects.
//!
//! # Example
//!
//! ```
//! use bistro_pattern::Pattern;
//!
//! let p = Pattern::parse("MEMORY_poller%i_%Y%m%d.gz").unwrap();
//! let caps = p.match_str("MEMORY_poller7_20100925.gz").expect("match");
//! assert_eq!(caps.first_int(), Some(7));
//! let ts = caps.timestamp().unwrap();
//! assert_eq!(ts.to_calendar().year, 2010);
//! assert!(p.match_str("CPU_poller7_20100925.gz").is_none());
//! ```

pub mod ast;
pub mod generalize;
pub mod matcher;
pub mod normalize;
pub mod similarity;
pub mod token;

pub use ast::{Elem, Pattern, PatternError, TsPart};
pub use generalize::{generalize, Shape};
pub use matcher::{Capture, CaptureValue, Captures};
pub use normalize::{Template, TemplateError};
pub use similarity::{levenshtein, pattern_similarity};
